#include "net/jsonl.hpp"

#include <charconv>

namespace epajsrm::net {

std::string format_double(double value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

LineParser::LineParser(std::string_view line, std::size_t line_number)
    : line_(line), line_number_(line_number) {
  parse();
}

const std::string& LineParser::get_string(std::string_view key) const {
  return require(key, Field::Kind::kString).text;
}

std::uint64_t LineParser::get_u64(std::string_view key) const {
  return number<std::uint64_t>(require(key, Field::Kind::kNumber).text, key);
}

std::int64_t LineParser::get_i64(std::string_view key) const {
  return number<std::int64_t>(require(key, Field::Kind::kNumber).text, key);
}

std::uint32_t LineParser::get_u32(std::string_view key) const {
  return number<std::uint32_t>(require(key, Field::Kind::kNumber).text, key);
}

double LineParser::get_double(std::string_view key) const {
  return number<double>(require(key, Field::Kind::kNumber).text, key);
}

std::vector<std::uint64_t> LineParser::get_id_array(
    std::string_view key) const {
  const Field& f = require(key, Field::Kind::kArray);
  std::vector<std::uint64_t> ids;
  ids.reserve(f.items.size());
  for (const std::string& item : f.items) {
    ids.push_back(number<std::uint64_t>(item, key));
  }
  return ids;
}

std::string LineParser::get_string_or(std::string_view key,
                                      std::string_view fallback) const {
  const Field* f = find(key, Field::Kind::kString);
  return f != nullptr ? f->text : std::string(fallback);
}

std::uint64_t LineParser::get_u64_or(std::string_view key,
                                     std::uint64_t fallback) const {
  const Field* f = find(key, Field::Kind::kNumber);
  return f != nullptr ? number<std::uint64_t>(f->text, key) : fallback;
}

double LineParser::get_double_or(std::string_view key, double fallback) const {
  const Field* f = find(key, Field::Kind::kNumber);
  return f != nullptr ? number<double>(f->text, key) : fallback;
}

template <typename T>
T LineParser::number(const std::string& text, std::string_view key) const {
  T value{};
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    fail("field \"" + std::string(key) + "\": bad number '" + text + "'");
  }
  return value;
}

const LineParser::Field& LineParser::require(std::string_view key,
                                             Field::Kind kind) const {
  const auto it = fields_.find(std::string(key));
  if (it == fields_.end()) {
    fail("missing field \"" + std::string(key) + "\"");
  }
  if (it->second.kind != kind) {
    fail("field \"" + std::string(key) + "\" has the wrong type");
  }
  return it->second;
}

const LineParser::Field* LineParser::find(std::string_view key,
                                          Field::Kind kind) const {
  const auto it = fields_.find(std::string(key));
  if (it == fields_.end()) return nullptr;
  if (it->second.kind != kind) {
    fail("field \"" + std::string(key) + "\" has the wrong type");
  }
  return &it->second;
}

void LineParser::parse() {
  pos_ = 0;
  skip_ws();
  expect('{');
  skip_ws();
  if (peek() == '}') {
    ++pos_;
  } else {
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      fields_.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (pos_ != line_.size()) fail("trailing characters after object");
}

LineParser::Field LineParser::parse_value() {
  Field field;
  const char c = peek();
  if (c == '"') {
    field.kind = Field::Kind::kString;
    field.text = parse_string();
  } else if (c == '[') {
    field.kind = Field::Kind::kArray;
    ++pos_;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        field.items.push_back(parse_number_token());
        skip_ws();
        const char d = next();
        if (d == ']') break;
        if (d != ',') fail("expected ',' or ']'");
      }
    }
  } else {
    field.kind = Field::Kind::kNumber;
    field.text = parse_number_token();
  }
  return field;
}

std::string LineParser::parse_string() {
  expect('"');
  std::string out;
  while (true) {
    if (pos_ >= line_.size()) fail("unterminated string");
    const char c = line_[pos_++];
    if (c == '"') break;
    if (c == '\\') {
      if (pos_ >= line_.size()) fail("unterminated escape");
      const char e = line_[pos_++];
      if (e != '"' && e != '\\') fail("unsupported escape");
      out += e;
    } else {
      out += c;
    }
  }
  return out;
}

std::string LineParser::parse_number_token() {
  const std::size_t start = pos_;
  while (pos_ < line_.size()) {
    const char c = line_[pos_];
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
        c == 'e' || c == 'E') {
      ++pos_;
    } else {
      break;
    }
  }
  if (pos_ == start) fail("expected a value");
  return std::string(line_.substr(start, pos_ - start));
}

char LineParser::peek() const {
  if (pos_ >= line_.size()) fail_eof();
  return line_[pos_];
}

char LineParser::next() {
  if (pos_ >= line_.size()) fail_eof();
  return line_[pos_++];
}

void LineParser::expect(char c) {
  if (next() != c) fail(std::string("expected '") + c + "'");
}

void LineParser::skip_ws() {
  while (pos_ < line_.size() && (line_[pos_] == ' ' || line_[pos_] == '\t')) {
    ++pos_;
  }
}

}  // namespace epajsrm::net
