file(REMOVE_RECURSE
  "CMakeFiles/powerapi_agent.dir/powerapi_agent.cpp.o"
  "CMakeFiles/powerapi_agent.dir/powerapi_agent.cpp.o.d"
  "powerapi_agent"
  "powerapi_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerapi_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
