file(REMOVE_RECURSE
  "CMakeFiles/bench_powercap_sweep.dir/bench_powercap_sweep.cpp.o"
  "CMakeFiles/bench_powercap_sweep.dir/bench_powercap_sweep.cpp.o.d"
  "bench_powercap_sweep"
  "bench_powercap_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_powercap_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
