// ResourceManager + LayoutService + NodeLifecycle tests.
#include "rm/resource_manager.hpp"

#include <gtest/gtest.h>

namespace epajsrm::rm {
namespace {

class RmTest : public ::testing::Test {
 protected:
  RmTest()
      : cluster_(platform::ClusterBuilder()
                     .node_count(16)
                     .nodes_per_rack(4)
                     .racks_per_pdu(2)
                     .racks_per_cooling_loop(2)
                     .build()),
        model_(cluster_.pstates()),
        rm_(sim_, cluster_, model_, std::make_unique<FirstFitAllocator>()) {}

  workload::Job make_job(workload::JobId id, std::uint32_t nodes,
                         double intensity = 1.0) {
    workload::JobSpec spec;
    spec.id = id;
    spec.nodes = nodes;
    spec.profile.power_intensity = intensity;
    return workload::Job(spec);
  }

  sim::Simulation sim_;
  platform::Cluster cluster_;
  power::NodePowerModel model_;
  ResourceManager rm_;
};

TEST_F(RmTest, AllocateChargesWholeNodes) {
  workload::Job job = make_job(1, 4);
  const auto nodes = rm_.allocate(job, 4);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(job.allocated_nodes().size(), 4u);
  EXPECT_EQ(job.cores_per_node_allocated(), cluster_.node(0).cores_total());
  for (platform::NodeId id : nodes) {
    EXPECT_EQ(cluster_.node(id).state(), platform::NodeState::kBusy);
    EXPECT_GT(cluster_.node(id).current_watts(),
              cluster_.node(id).config().idle_watts);
  }
  EXPECT_EQ(rm_.allocatable_nodes(), 12u);
}

TEST_F(RmTest, AllocateSetsPlacementSpread) {
  workload::Job job = make_job(1, 4);
  rm_.allocate(job, 4);
  EXPECT_GE(job.placement_spread(), 0.0);
  EXPECT_LE(job.placement_spread(), 1.0);
}

TEST_F(RmTest, ReleaseRestoresIdleAndPower) {
  workload::Job job = make_job(1, 2);
  const auto nodes = rm_.allocate(job, 2);
  rm_.release(job);
  for (platform::NodeId id : nodes) {
    EXPECT_EQ(cluster_.node(id).state(), platform::NodeState::kIdle);
    EXPECT_DOUBLE_EQ(cluster_.node(id).current_watts(),
                     cluster_.node(id).config().idle_watts);
  }
  EXPECT_EQ(rm_.allocatable_nodes(), 16u);
}

TEST_F(RmTest, AllocationFailureLeavesStateUntouched) {
  workload::Job job = make_job(1, 17);
  EXPECT_TRUE(rm_.allocate(job, 17).empty());
  EXPECT_EQ(rm_.allocatable_nodes(), 16u);
}

TEST_F(RmTest, IntensityFlowsIntoNodeLoad) {
  workload::Job job = make_job(1, 1, 0.5);
  const auto nodes = rm_.allocate(job, 1);
  EXPECT_DOUBLE_EQ(cluster_.node(nodes[0]).utilization(), 0.5);
}

TEST_F(RmTest, LayoutMaintenanceBlocksDependentNodes) {
  rm_.layout().set_pdu_maintenance(0, true);
  // PDU 0 feeds racks 0-1 = nodes 0-7.
  EXPECT_EQ(rm_.allocatable_nodes(), 8u);
  workload::Job job = make_job(1, 8);
  const auto nodes = rm_.allocate(job, 8);
  ASSERT_EQ(nodes.size(), 8u);
  for (platform::NodeId id : nodes) EXPECT_GE(id, 8u);

  rm_.layout().set_pdu_maintenance(0, false);
  EXPECT_EQ(rm_.allocatable_nodes(), 8u);  // other 8 still busy
}

TEST_F(RmTest, LayoutCoolingMaintenanceAlsoBlocks) {
  rm_.layout().set_cooling_maintenance(0, true);
  EXPECT_LT(rm_.allocatable_nodes(), 16u);
  EXPECT_FALSE(rm_.layout().blocked_nodes().empty());
}

TEST_F(RmTest, DrainingJobCountTracksOccupiedMaintenance) {
  workload::Job job = make_job(1, 2);
  rm_.allocate(job, 2);  // lands on nodes 0,1 (PDU 0)
  rm_.layout().set_pdu_maintenance(0, true);
  EXPECT_EQ(rm_.layout().draining_job_count(), 1u);
  rm_.release(job);
  EXPECT_EQ(rm_.layout().draining_job_count(), 0u);
}

TEST_F(RmTest, ExtraEligibilityVeto) {
  rm_.set_extra_eligibility(
      [](const platform::Node& n) { return n.id() < 4; });
  EXPECT_EQ(rm_.allocatable_nodes(), 4u);
}

TEST_F(RmTest, LifecyclePowerOffOnRoundTrip) {
  NodeLifecycle& lc = rm_.lifecycle();
  EXPECT_TRUE(lc.power_off(0));
  EXPECT_EQ(cluster_.node(0).state(), platform::NodeState::kShuttingDown);
  EXPECT_EQ(lc.in_transition(), 1u);
  sim_.run();
  EXPECT_EQ(cluster_.node(0).state(), platform::NodeState::kOff);
  EXPECT_EQ(lc.in_transition(), 0u);

  EXPECT_TRUE(lc.power_on(0));
  EXPECT_EQ(cluster_.node(0).state(), platform::NodeState::kBooting);
  sim_.run();
  EXPECT_EQ(cluster_.node(0).state(), platform::NodeState::kIdle);
  EXPECT_EQ(lc.boots(), 1u);
  EXPECT_EQ(lc.shutdowns(), 1u);
}

TEST_F(RmTest, LifecycleRefusesWrongStates) {
  NodeLifecycle& lc = rm_.lifecycle();
  EXPECT_FALSE(lc.power_on(0));   // already idle
  workload::Job job = make_job(1, 1);
  rm_.allocate(job, 1);
  EXPECT_FALSE(lc.power_off(0));  // busy
  EXPECT_FALSE(lc.wake(0));
}

TEST_F(RmTest, LifecycleSleepWakeRoundTrip) {
  NodeLifecycle& lc = rm_.lifecycle();
  EXPECT_TRUE(lc.sleep(3));
  sim_.run();
  EXPECT_EQ(cluster_.node(3).state(), platform::NodeState::kSleeping);
  EXPECT_TRUE(lc.wake(3));
  sim_.run();
  EXPECT_EQ(cluster_.node(3).state(), platform::NodeState::kIdle);
  EXPECT_EQ(lc.sleeps(), 1u);
  EXPECT_EQ(lc.wakes(), 1u);
}

TEST_F(RmTest, LifecycleHooksFire) {
  int pre = 0;
  std::vector<platform::NodeId> post;
  rm_.lifecycle().set_pre_power_change([&] { ++pre; });
  rm_.lifecycle().set_post_power_change(
      [&](platform::NodeId id) { post.push_back(id); });
  rm_.lifecycle().power_off(5);
  sim_.run();
  EXPECT_EQ(pre, 2);  // transition start + completion
  EXPECT_EQ(post, (std::vector<platform::NodeId>{5, 5}));
}

TEST_F(RmTest, LifecycleTransitionDurationsHonoured) {
  const sim::SimTime shutdown = cluster_.node(0).config().shutdown_time;
  rm_.lifecycle().power_off(0);
  sim_.run_until(shutdown - 1);
  EXPECT_EQ(cluster_.node(0).state(), platform::NodeState::kShuttingDown);
  sim_.run_until(shutdown);
  EXPECT_EQ(cluster_.node(0).state(), platform::NodeState::kOff);
}

}  // namespace
}  // namespace epajsrm::rm
