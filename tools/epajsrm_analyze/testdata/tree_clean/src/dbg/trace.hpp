#pragma once

// Crosscut module: may include anything, includable from anywhere.
#include "top/util.hpp"

namespace fixture::dbg {
inline int trace() { return fixture::top::twice(); }
}  // namespace fixture::dbg
