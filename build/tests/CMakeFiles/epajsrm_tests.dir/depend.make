# Empty dependencies file for epajsrm_tests.
# This may be replaced when dependencies are built.
