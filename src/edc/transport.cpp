#include "edc/transport.hpp"

#include <stdexcept>

namespace epajsrm::edc {

LoopbackTransport::LoopbackTransport(std::shared_ptr<Agent> agent)
    : agent_(std::move(agent)) {
  if (!agent_) throw std::invalid_argument("loopback transport needs an agent");
}

std::vector<std::string> LoopbackTransport::exchange(
    const std::vector<std::string>& lines) {
  return agent_->on_messages(lines);
}

std::string LoopbackTransport::describe() const {
  return "loopback:" + agent_->name();
}

}  // namespace epajsrm::edc
