// Tag-history predictors: per-application running statistics.
//
// The simplest production-grade approach (and what LRZ's first-run
// characterisation amounts to): key on the application tag, keep a running
// mean (or EWMA) of observed behaviour, fall back to a conservative prior
// for unseen tags.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "predict/predictor.hpp"

namespace epajsrm::predict {

/// Running-mean per-tag power predictor.
class TagHistoryPowerPredictor final : public PowerPredictor {
 public:
  /// `prior_node_watts` is returned for tags never seen (choose the model
  /// peak for safety under caps).
  explicit TagHistoryPowerPredictor(double prior_node_watts)
      : prior_(prior_node_watts) {}

  double predict_node_watts(const workload::JobSpec& spec) override;
  void observe(const workload::JobSpec& spec,
               double actual_node_watts) override;
  std::string name() const override { return "tag-history"; }

  /// Observations recorded for a tag (0 when unseen).
  std::uint64_t samples(const std::string& tag) const;

 private:
  struct Stats {
    double mean = 0.0;
    std::uint64_t count = 0;
  };
  double prior_;
  std::unordered_map<std::string, Stats> stats_;
};

/// Exponentially weighted moving average per tag — adapts when application
/// behaviour drifts (dataset growth, code changes).
class EwmaPowerPredictor final : public PowerPredictor {
 public:
  EwmaPowerPredictor(double prior_node_watts, double alpha = 0.3)
      : prior_(prior_node_watts), alpha_(alpha) {}

  double predict_node_watts(const workload::JobSpec& spec) override;
  void observe(const workload::JobSpec& spec,
               double actual_node_watts) override;
  std::string name() const override { return "ewma"; }

 private:
  double prior_;
  double alpha_;
  std::unordered_map<std::string, double> ewma_;
};

/// Running-mean per-tag runtime predictor with the user estimate as prior
/// and an optional safety factor (never predict below `floor_fraction` of
/// the rolling mean).
class TagHistoryRuntimePredictor final : public RuntimePredictor {
 public:
  sim::SimTime predict_runtime(const workload::JobSpec& spec) override;
  void observe(const workload::JobSpec& spec,
               sim::SimTime actual_runtime) override;
  std::string name() const override { return "tag-history-runtime"; }

 private:
  struct Stats {
    double mean_s = 0.0;
    std::uint64_t count = 0;
  };
  std::unordered_map<std::string, Stats> stats_;
};

}  // namespace epajsrm::predict
