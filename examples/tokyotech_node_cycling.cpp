// Tokyo Tech scenario: summer facility cap held by booting/shutting nodes.
//
// Reproduces the Table I production rows: the resource manager
// "dynamically boots or shuts down nodes to stay under power cap (summer
// only, enforced over ~30 min window)", "interacts with job scheduler to
// avoid killing jobs", and "shuts down nodes that have been idle for a
// long time" — plus the end-of-job energy report users receive.
#include <cstdio>

#include "epajsrm.hpp"

int main() {
  using namespace epajsrm;

  const survey::CenterProfile& tokyo = survey::center("TokyoTech");
  core::Scenario scenario =
      core::ScenarioBuilder::from_center(tokyo, /*job_count=*/120,
                                         /*seed=*/11)
          .label("tsubame-summer")
          .horizon(30 * sim::kDay)
          .configure([](core::ScenarioConfig& c) {
            // A Tokyo summer: 29 C mean, hot afternoons.
            c.ambient = platform::AmbientModel(29.0, 5.0);
          })
          .build();

  // Summer-gated facility cap at 80 % of the replica's peak, enforced
  // over a 30-minute rolling window.
  const double peak = tokyo.sim_nodes * tokyo.node_peak_watts;
  epa::NodeCyclingCapPolicy::Config cycling;
  cycling.cap_watts = 0.8 * peak;
  cycling.window = 30 * sim::kMinute;
  cycling.enforce_above_ambient_c = 25.0;  // summer only
  auto cycling_policy = std::make_unique<epa::NodeCyclingCapPolicy>(cycling);
  const epa::NodeCyclingCapPolicy* cycling_p = cycling_policy.get();
  scenario.solution().add_policy(std::move(cycling_policy));

  epa::IdleShutdownPolicy::Config idle;
  idle.idle_timeout = 20 * sim::kMinute;
  idle.min_idle_online = 4;
  auto idle_policy = std::make_unique<epa::IdleShutdownPolicy>(idle);
  const epa::IdleShutdownPolicy* idle_p = idle_policy.get();
  scenario.solution().add_policy(std::move(idle_policy));

  const core::RunResult result = scenario.run();

  std::printf("%s\n", metrics::format_report(result.report).c_str());
  std::printf("cap: %.1f kW over a 30-min window (summer-gated)\n",
              cycling.cap_watts / 1e3);
  std::printf("node cycling: %llu powered off, %llu restored\n",
              static_cast<unsigned long long>(cycling_p->cycled_off()),
              static_cast<unsigned long long>(cycling_p->cycled_on()));
  std::printf("idle shutdown: %llu off, %llu booted back\n",
              static_cast<unsigned long long>(idle_p->shutdowns_requested()),
              static_cast<unsigned long long>(idle_p->boots_requested()));
  std::printf("jobs killed by power management: %llu (the mechanism never "
              "kills)\n\n",
              static_cast<unsigned long long>(result.report.jobs_killed));

  // The user-facing energy reports (production at Tokyo Tech).
  std::printf("First three end-of-job energy reports:\n");
  for (std::size_t i = 0; i < result.job_reports.size() && i < 3; ++i) {
    std::printf("%s\n",
                telemetry::format_energy_report(result.job_reports[i]).c_str());
  }
  return 0;
}
