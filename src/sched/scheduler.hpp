// Scheduling-policy interface.
//
// The scheduler sees the queue and the machine through a SchedulingContext
// provided by the JSRM core on every scheduling pass (job arrival, job
// completion, periodic tick, power-budget change). Policies decide *order
// and timing*; allocation, power admission and job launching are the
// resource manager's business and are reached through the context — the
// same split the survey's Figure 1 draws between job scheduler and
// resource manager.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace epajsrm::obs {
class Observability;
}

namespace epajsrm::sched {

/// One decision point of the scheduling loop, made explicit so the same
/// loop can be replayed, logged, or driven by an external decision
/// component (src/edc/). The core enumerates these instead of burying the
/// triggers in ad-hoc request_schedule() calls: every point is delivered
/// to the installed SchedulerPolicy before the (coalesced) pass it may
/// provoke, in deterministic simulation order.
struct DecisionPoint {
  enum class Kind : std::uint8_t {
    kSimulationBegins,     ///< once, when the control loops start
    kJobSubmitted,         ///< a job arrived in the queue
    kJobEnded,             ///< a job completed / was killed / cancelled
    kBudgetTick,           ///< periodic control tick (budget accrual point)
    kPowerBudgetChanged,   ///< the effective power budget moved
    kSimulationEnds,       ///< once, when the run finalizes
  };

  Kind kind = Kind::kBudgetTick;
  sim::SimTime time = 0;
  /// Monotone sequence number within the run (replay ordering).
  std::uint64_t seq = 0;
  /// The job concerned (kJobSubmitted / kJobEnded), else kNoJob.
  workload::JobId job = platform::kNoJob;
  /// New budget (kPowerBudgetChanged), else 0.
  double budget_watts = 0.0;
  /// Actual energy attributed to the job (kJobEnded) or its planning-time
  /// estimate (kJobSubmitted), else 0. Energy-budget schedulers refund
  /// charged estimates from this; the EDC messages carry it verbatim.
  double energy_joules = 0.0;
};

const char* to_string(DecisionPoint::Kind kind);

/// The core's services exposed to a scheduling policy during one pass.
class SchedulingContext {
 public:
  virtual ~SchedulingContext() = default;

  virtual sim::SimTime now() const = 0;

  /// Queued jobs in queue order (effective priority desc, submit asc).
  /// Pointers stay valid for the duration of the pass.
  virtual const std::vector<workload::Job*>& pending() const = 0;

  /// Currently running (or starting) jobs.
  virtual const std::vector<workload::Job*>& running() const = 0;

  virtual const platform::Cluster& cluster() const = 0;

  /// True while the context's partition-local phase is running on worker
  /// threads (lax-sync partitioned core, DESIGN.md §15). Scheduling
  /// passes are coupling-epoch decision points and require this to be
  /// false; contexts without a partition domain never enter the phase.
  virtual bool in_partition_local_phase() const { return false; }

  /// Nodes an allocation could use right now (idle or booting-toward-idle
  /// are not counted; whole-node allocations).
  virtual std::uint32_t allocatable_nodes() const = 0;

  /// True when starting `job` with `nodes` nodes now would keep the system
  /// inside the active power budget (per the installed EPA policy and
  /// power predictor). Does not start anything. Non-const because the
  /// probe consults the power predictor and the policy chain, which keep
  /// internal state; the job itself is only read (the plan runs dry).
  virtual bool power_feasible(workload::Job& job, std::uint32_t nodes) = 0;

  /// Attempts to start `job` now, optionally with a moldable shape
  /// (nullptr = base shape). Performs power admission, node allocation and
  /// launch. Returns false (and changes nothing) when it cannot.
  virtual bool try_start(workload::Job& job,
                         const workload::MoldableConfig* shape) = 0;

  /// Planning-time end estimate of a running job (start + walltime limit,
  /// or the runtime predictor's value when the solution uses one).
  virtual sim::SimTime planned_end(const workload::Job& job) const = 0;

  /// Earliest time any admission policy would let `job` start (>= now()).
  /// Backfilling schedulers anchor the job's reservation here.
  virtual sim::SimTime earliest_admission(const workload::Job& job) const = 0;

  /// The run's observability plane (trace + metrics), or null when
  /// observability is disabled — policies must treat null as "record
  /// nothing".
  virtual obs::Observability* observability() const { return nullptr; }

  // --- decision application (external-decision boundary) --------------------

  /// Applies a system power cap decided by the scheduler (internal
  /// energy-budget policies and EDC `set_power_cap` replies both land
  /// here). The core checkpoints energy, actuates the cap, and emits a
  /// kPowerBudgetChanged decision point when the value actually moved.
  /// Returns false when the context cannot actuate caps (mock contexts).
  virtual bool apply_power_cap(double watts) {
    (void)watts;
    return false;
  }

  /// Kills a *running* job and resubmits a fresh copy at the back of the
  /// queue (EDC `requeue` reply). Returns the requeued id, or kNoJob when
  /// the job was not running or the context cannot requeue.
  virtual workload::JobId requeue(workload::JobId job) {
    (void)job;
    return platform::kNoJob;
  }
};

/// A scheduling policy: orders and places the queue.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// One scheduling pass. Implementations call ctx.try_start for each job
  /// they decide to launch now.
  virtual void schedule(SchedulingContext& ctx) = 0;

  /// Delivered for every decision point, before the pass it may provoke
  /// (several points can coalesce into one pass; each is still delivered).
  /// Default is a no-op so classic queue-order schedulers stay oblivious.
  virtual void on_decision_point(const DecisionPoint& point,
                                 SchedulingContext& ctx) {
    (void)point;
    (void)ctx;
  }

  /// Whether `kind` should trigger a scheduling pass. The default
  /// reproduces the classic cadence (arrivals and completions reschedule;
  /// ticks do not). Budget-aware schedulers also want kBudgetTick and
  /// kPowerBudgetChanged passes so cap tightening is prompt.
  virtual bool wants_pass(DecisionPoint::Kind kind) const {
    return kind == DecisionPoint::Kind::kJobSubmitted ||
           kind == DecisionPoint::Kind::kJobEnded ||
           kind == DecisionPoint::Kind::kPowerBudgetChanged;
  }

  virtual std::string name() const = 0;
};

/// Future node-availability profile built from running jobs' planned ends;
/// the planning substrate for backfilling.
class AvailabilityTimeline {
 public:
  /// Builds from the context: `free_now` nodes available immediately plus
  /// each running job's nodes at its planned end.
  AvailabilityTimeline(std::uint32_t free_now,
                       const std::vector<workload::Job*>& running,
                       const SchedulingContext& ctx);

  /// Earliest time >= `from` at which at least `nodes` nodes are free for
  /// the contiguous duration `duration` given current reservations.
  sim::SimTime earliest_start(std::uint32_t nodes, sim::SimTime duration,
                              sim::SimTime from) const;

  /// Nodes free throughout [start, start+duration).
  std::uint32_t min_free(sim::SimTime start, sim::SimTime duration) const;

  /// Blocks `nodes` nodes during [start, start+duration) (a reservation).
  void reserve(std::uint32_t nodes, sim::SimTime start, sim::SimTime duration);

 private:
  // Piecewise-constant free-node count as breakpoints; last segment
  // extends to infinity.
  struct Point {
    sim::SimTime time;
    std::int64_t free;
  };
  std::vector<Point> points_;

  std::int64_t free_at(sim::SimTime t) const;
};

}  // namespace epajsrm::sched
