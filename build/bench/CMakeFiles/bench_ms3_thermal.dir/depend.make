# Empty dependencies file for bench_ms3_thermal.
# This may be replaced when dependencies are built.
