// Minimal SARIF 2.1.0 emitter so CI can annotate findings on PRs.
#pragma once

#include <string>

#include "epajsrm_analyze/finding.hpp"

namespace epajsrm::analyze {

/// Serializes `findings` as a single-run SARIF 2.1.0 log. `root_label`
/// becomes the uriBaseId description (finding paths stay root-relative).
std::string to_sarif(const Findings& findings, const std::string& root_label);

}  // namespace epajsrm::analyze
