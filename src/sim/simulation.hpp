// The discrete-event simulation driver: a monotone clock plus the event
// queue. Every model component holds a Simulation& and expresses behaviour
// as scheduled callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace epajsrm::sim {

/// Discrete-event simulation engine.
///
/// Usage:
///   Simulation sim;
///   sim.schedule_in(5 * kSecond, [&]{ ... });
///   sim.run();
///
/// The engine is single-threaded by design: determinism matters more than
/// intra-replication parallelism at this model scale, and replications
/// parallelise embarrassingly (see ThreadPool).
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to now() if in the past,
  /// which models "fire as soon as possible").
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at now() + dt (dt < 0 clamps to now()).
  EventId schedule_in(SimTime dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Schedules a periodic callback firing first at now() + period and then
  /// every `period` until it returns false. Returns the id of the *first*
  /// firing; cancelling it stops the chain only before the first firing —
  /// use the callback's return value for clean shutdown.
  EventId schedule_every(SimTime period, std::function<bool()> cb);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty or stop() is called.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Runs until the queue is empty, stop() is called, or the next event
  /// would fire strictly after `t`; the clock then advances to min(t, ...).
  void run_until(SimTime t);

  /// Requests termination; the current callback finishes, the loop exits.
  void stop() { stopped_ = true; }

  /// True once stop() has been called.
  bool stopped() const { return stopped_; }

  /// Total callbacks executed (for kernel benchmarks and tests).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Live events still pending.
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
};

}  // namespace epajsrm::sim
