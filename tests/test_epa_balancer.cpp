// Tests for the GEOPM-style job power balancer and the emergency requeue
// variant.
#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "epa/emergency_response.hpp"
#include "epa/job_power_balancer.hpp"

namespace epajsrm::epa {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 8) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, double beta,
                           sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 4;
  spec.submit_time = submit;
  spec.profile.freq_sensitive_fraction = beta;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

TEST(Balancer, LooseBudgetKeepsEveryoneFast) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  auto policy = std::make_unique<JobPowerBalancerPolicy>(5000.0);
  JobPowerBalancerPolicy* balancer = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 2, sim::kHour, 0.9));
  solution.submit(job_spec(2, 2, sim::kHour, 0.2));
  solution.start();
  sim.run_until(30 * sim::kMinute);
  EXPECT_GT(balancer->rebalances(), 0u);
  EXPECT_EQ(cluster.node(0).pstate(), 0u);
  EXPECT_EQ(cluster.node(2).pstate(), 0u);
}

TEST(Balancer, TightBudgetFavoursComputeBound) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  // Idle floor 400 W; full demand 800 W dynamic. Budget 400 + 450 = 850:
  // memory-bound job drops to the deepest state, freeing watts for the
  // compute-bound one.
  solution.add_policy(std::make_unique<JobPowerBalancerPolicy>(850.0));
  solution.submit(job_spec(1, 2, sim::kHour, 0.95));  // compute-bound
  solution.submit(job_spec(2, 2, sim::kHour, 0.10));  // memory-bound
  solution.start();
  sim.run_until(30 * sim::kMinute);
  workload::Job* compute = solution.find_job(1);
  workload::Job* memory = solution.find_job(2);
  ASSERT_EQ(compute->state(), workload::JobState::kRunning);
  ASSERT_EQ(memory->state(), workload::JobState::kRunning);
  const std::uint32_t compute_pstate =
      cluster.node(compute->allocated_nodes().front()).pstate();
  const std::uint32_t memory_pstate =
      cluster.node(memory->allocated_nodes().front()).pstate();
  EXPECT_EQ(memory_pstate, cluster.pstates().deepest());
  EXPECT_LT(compute_pstate, memory_pstate);
  // And the budget holds.
  EXPECT_LE(cluster.it_power_watts(), 850.0 + 1e-6);
}

TEST(Balancer, BeatsUniformSlowdownOnThroughput) {
  // Same tight budget: balancer (smart split) vs forcing every node to
  // the deepest state (dumb uniform slowdown). The compute-bound job
  // finishes sooner under the balancer.
  const auto compute_job_runtime = [](bool use_balancer) {
    sim::Simulation sim;
    platform::Cluster cluster = test_cluster(4);
    core::SolutionConfig config;
    config.enable_thermal = false;
    core::EpaJsrmSolution solution(sim, cluster, config);
    if (use_balancer) {
      solution.add_policy(std::make_unique<JobPowerBalancerPolicy>(850.0));
    } else {
      // Uniform deep P-state via a system cap matching the same budget.
      solution.start();
      solution.set_system_cap(850.0);
    }
    solution.submit(job_spec(1, 2, sim::kHour, 0.95));
    solution.submit(job_spec(2, 2, sim::kHour, 0.10));
    solution.run_until(12 * sim::kHour);
    const workload::Job* job = solution.find_job(1);
    return job->end_time() - job->start_time();
  };
  EXPECT_LT(compute_job_runtime(true), compute_job_runtime(false));
}

TEST(EmergencyRequeue, VictimsComeBackAndFinish) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  EmergencyResponsePolicy::Config cfg;
  cfg.limit_watts = 1800.0;  // full machine draws 2400
  cfg.mode = EmergencyResponsePolicy::Mode::kAutomatedKill;
  cfg.requeue_victims = true;
  auto policy = std::make_unique<EmergencyResponsePolicy>(cfg);
  EmergencyResponsePolicy* emergency = policy.get();
  solution.add_policy(std::move(policy));
  for (workload::JobId id = 1; id <= 8; ++id) {
    solution.submit(job_spec(id, 1, sim::kHour, 0.7, 0));
  }
  solution.run_until(3 * sim::kDay);
  const core::RunResult result = solution.finalize();
  EXPECT_GT(emergency->jobs_killed(), 0u);
  // Every original job either completed, or its requeued clone did:
  // submitted > 8 (clones were created) and nothing is left pending.
  EXPECT_GT(result.report.jobs_submitted, 8u);
  EXPECT_TRUE(solution.workload_drained());
}

TEST(RequeueHost, DirectRequeueClonesSpec) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  workload::JobSpec spec = job_spec(1, 2, sim::kHour, 0.5);
  spec.tag = "resubmit-me";
  solution.submit(spec);
  solution.start();
  sim.run_until(10 * sim::kMinute);
  ASSERT_EQ(solution.find_job(1)->state(), workload::JobState::kRunning);

  const workload::JobId clone = solution.requeue_job(1, "test");
  ASSERT_NE(clone, platform::kNoJob);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kKilled);
  sim.run_until(6 * sim::kHour);
  workload::Job* requeued = solution.find_job(clone);
  ASSERT_NE(requeued, nullptr);
  EXPECT_EQ(requeued->state(), workload::JobState::kCompleted);
  EXPECT_EQ(requeued->spec().tag, "resubmit-me");
  EXPECT_EQ(requeued->spec().nodes, 2u);

  // Requeueing a non-running job is a no-op.
  EXPECT_EQ(solution.requeue_job(1, "again"), platform::kNoJob);
  EXPECT_EQ(solution.requeue_job(9999, "ghost"), platform::kNoJob);
}

}  // namespace
}  // namespace epajsrm::epa
