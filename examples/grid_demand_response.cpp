// Grid-integration scenario: demand response with on-site generation.
//
// The ESP-SC interaction that motivated the EPA JSRM team (Bates et al.,
// Patki et al.) combined with RIKEN's grid-vs-gas-turbine research line:
// the provider announces a shed window; the site pre-sheds via capping and
// lets its turbine carry the remainder. The example traces facility power
// and the supply split through the event.
#include <cstdio>

#include "epajsrm.hpp"

int main() {
  using namespace epajsrm;

  core::Scenario scenario = core::Scenario::builder()
                                .label("grid-dr")
                                .nodes(48)
                                .job_count(100)
                                .horizon(20 * sim::kDay)
                                .seed(19)
                                .mix(core::WorkloadMix::kCapacity)
                                .target_utilization(0.85)
                                .build();

  const double peak = scenario.solution().power_model().peak_watts(
                          scenario.cluster().node(0).config()) *
                      scenario.config().nodes;
  const double facility_peak =
      peak * scenario.cluster().facility().config().base_pue;

  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::peak_offpeak(0.22, 0.09),
                     .startup_time = 0, .dispatchable = false});
  supply.add_source({.name = "gas-turbine",
                     .capacity_watts = 0.30 * facility_peak,
                     .tariff = power::Tariff::flat(0.27),
                     .startup_time = 10 * sim::kMinute,
                     .dispatchable = true});
  supply.add_event({.start = 8 * sim::kHour, .duration = 2 * sim::kHour,
                    .limit_watts = 0.5 * facility_peak,
                    .notice = 30 * sim::kMinute, .incentive_per_kwh = 0.08});
  scenario.solution().set_supply(std::move(supply));

  auto dr = std::make_unique<epa::DemandResponsePolicy>();
  auto source = std::make_unique<epa::SourceSelectionPolicy>();
  const epa::SourceSelectionPolicy* source_p = source.get();
  scenario.solution().add_policy(std::move(dr));
  scenario.solution().add_policy(std::move(source));

  // Sample the supply split every 30 minutes around the event.
  metrics::AsciiTable trace(
      {"time", "IT power", "facility", "grid", "turbine", "event?"});
  trace.set_title("Supply dispatch through the DR window (08:00-10:00)");
  auto* solution = &scenario.solution();
  auto* cluster = &scenario.cluster();
  scenario.simulation().schedule_every(30 * sim::kMinute, [&]() -> bool {
    const sim::SimTime now = scenario.simulation().now();
    if (now > 12 * sim::kHour) return false;
    const power::SupplyPortfolio* s = solution->supply();
    const double it = cluster->it_power_watts();
    const double facility = cluster->facility().facility_watts(it, now);
    const auto dispatch = s->dispatch(facility, now);
    trace.add_row({sim::format_hms(now), metrics::format_watts(it),
                   metrics::format_watts(facility),
                   metrics::format_watts(dispatch.watts[0]),
                   metrics::format_watts(dispatch.watts[1]),
                   s->active_event(now) != nullptr ? "DR ACTIVE" : ""});
    return true;
  });

  const core::RunResult result = scenario.run();

  std::printf("%s\n", trace.render().c_str());
  std::printf("%s\n", metrics::format_report(result.report).c_str());
  std::printf("turbine supplied %.1f kWh; total dispatch cost %.2f\n",
              source_p->dispatchable_kwh(), source_p->dispatch_cost());
  return 0;
}
