// Fluent construction of scenarios:
//
//   core::Scenario scenario = core::Scenario::builder()
//                                 .nodes(64)
//                                 .mix(core::WorkloadMix::kCapability)
//                                 .seed(7)
//                                 .build();
//
// The builder is a thin veneer over the ScenarioConfig POD (which remains
// the storage and the ensemble/point-factory currency): every setter
// assigns one field, take_config() hands the POD back for callers that
// need it (EnsembleEngine factories), and build() constructs the Scenario
// in place. Prefer it over aggregate-initialising ScenarioConfig by hand —
// the project linter flags raw `ScenarioConfig{...}` outside src/core/.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/scenario.hpp"

namespace epajsrm::core {

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  /// Starts from an existing config (e.g. Scenario::center_config).
  static ScenarioBuilder from(ScenarioConfig config) {
    ScenarioBuilder b;
    b.config_ = std::move(config);
    return b;
  }

  /// Starts from a surveyed center's replica profile.
  static ScenarioBuilder from_center(const survey::CenterProfile& profile,
                                     std::size_t job_count = 300,
                                     std::uint64_t seed = 1) {
    return from(Scenario::center_config(profile, job_count, seed));
  }

  ScenarioBuilder& label(std::string value) {
    config_.label = std::move(value);
    return *this;
  }
  ScenarioBuilder& nodes(std::uint32_t value) {
    config_.nodes = value;
    return *this;
  }
  ScenarioBuilder& mix(WorkloadMix value) {
    config_.mix = value;
    return *this;
  }
  ScenarioBuilder& seed(std::uint64_t value) {
    config_.seed = value;
    return *this;
  }
  /// Jobs to generate (0 = fill the horizon; see ScenarioConfig).
  ScenarioBuilder& job_count(std::size_t value) {
    config_.job_count = value;
    return *this;
  }
  ScenarioBuilder& horizon(sim::SimTime value) {
    config_.horizon = value;
    return *this;
  }
  /// Rack/PDU partitions the simulation fans out across (lax-sync core,
  /// DESIGN.md §15). Execution knob only: results are bit-identical for
  /// any value, so it never enters the canonical scenario hash.
  ScenarioBuilder& partitions(std::uint32_t value,
                              std::size_t workers = 0) {
    config_.partitions = value;
    config_.partition_workers = workers;
    return *this;
  }
  /// Bounded clock-skew window for the partition phase; 0 (default) =
  /// one control period.
  ScenarioBuilder& skew_window(sim::SimTime value) {
    config_.skew_window = value;
    return *this;
  }
  ScenarioBuilder& target_utilization(double value) {
    config_.target_utilization = value;
    return *this;
  }
  ScenarioBuilder& arrival_rate_per_hour(double value) {
    config_.arrival_rate_per_hour = value;
    return *this;
  }
  ScenarioBuilder& variability_sigma(double value) {
    config_.variability_sigma = value;
    return *this;
  }
  ScenarioBuilder& node_config(platform::NodeConfig value) {
    config_.node_config = value;
    return *this;
  }
  ScenarioBuilder& facility(platform::Facility::Config value) {
    config_.facility = value;
    return *this;
  }
  ScenarioBuilder& solution(SolutionConfig value) {
    config_.solution = std::move(value);
    return *this;
  }
  /// Enables (or disables) the observability plane for the run.
  ScenarioBuilder& observability(bool enabled = true) {
    config_.solution.obs.enabled = enabled;
    return *this;
  }
  /// DVFS ladder: `steps` p-states linear in [bottom_ghz, top_ghz].
  ScenarioBuilder& pstates(double top_ghz, double bottom_ghz,
                           std::uint32_t steps) {
    config_.top_ghz = top_ghz;
    config_.bottom_ghz = bottom_ghz;
    config_.pstate_steps = steps;
    return *this;
  }
  /// Sliding energy-budget scheduling: `window_joules` accrue over
  /// `window` (at `accrual_rate_watts` when > 0, else budget/window) and
  /// jobs start only when their estimated energy fits the accrued
  /// allowance. Installs epa::EnergyBudgetScheduler at build time.
  /// Non-positive budget or window throws std::invalid_argument here, at
  /// the fluent call, not at build().
  ScenarioBuilder& energy_budget(double window_joules,
                                 sim::SimTime window = sim::kHour,
                                 double accrual_rate_watts = 0.0) {
    if (window_joules <= 0.0) {
      throw std::invalid_argument(
          "energy_budget: window_joules must be > 0");
    }
    if (window <= 0) {
      throw std::invalid_argument("energy_budget: window must be > 0");
    }
    if (accrual_rate_watts < 0.0) {
      throw std::invalid_argument(
          "energy_budget: accrual_rate_watts must be >= 0");
    }
    epa::EnergyBudgetConfig eb;
    eb.window_budget_joules = window_joules;
    eb.window = window;
    eb.accrual_rate_watts = accrual_rate_watts;
    config_.energy_budget = eb;
    return *this;
  }
  /// Full-config variant (mode, emergency timeout, cap floor, ...);
  /// validated at build().
  ScenarioBuilder& energy_budget(epa::EnergyBudgetConfig value) {
    config_.energy_budget = value;
    return *this;
  }
  /// Hands the scheduling boundary to an external decision component
  /// reached over `transport` (edc::ExternalScheduler). A null transport
  /// throws std::invalid_argument.
  ScenarioBuilder& external_scheduler(
      std::shared_ptr<edc::Transport> transport) {
    if (!transport) {
      throw std::invalid_argument(
          "external_scheduler: transport must not be null");
    }
    config_.external_transport = std::move(transport);
    return *this;
  }
  /// Escape hatch for the rarely-set fields without leaving the chain.
  ScenarioBuilder& configure(
      const std::function<void(ScenarioConfig&)>& fn) {
    fn(config_);
    return *this;
  }

  const ScenarioConfig& config() const { return config_; }

  /// Yields the POD (for EnsembleEngine point factories and the like).
  ScenarioConfig take_config() && { return std::move(config_); }

  /// Builds the runnable Scenario. The returned prvalue is constructed in
  /// place at the call site (Scenario itself is neither copyable nor
  /// movable — it pins a Simulation).
  Scenario build() && { return Scenario(std::move(config_)); }
  Scenario build() const& { return Scenario(config_); }

 private:
  ScenarioConfig config_;
};

inline ScenarioBuilder Scenario::builder() { return ScenarioBuilder(); }

}  // namespace epajsrm::core
