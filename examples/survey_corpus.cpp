// Survey corpus + user scoreboard.
//
// Writes the complete survey document (selection, map, questionnaire,
// per-center activity breakdowns, cross-site analysis) to
// survey_report.md — the framework's analogue of the EE HPC WG whitepaper
// the paper's full analysis draws from — and demonstrates the Tokyo
// Tech-style user energy scoreboard on a live run.
#include <cstdio>
#include <fstream>

#include "epajsrm.hpp"
#include "survey/report.hpp"
#include "telemetry/user_scoreboard.hpp"

int main() {
  using namespace epajsrm;

  // 1. The survey document.
  const std::string report = survey::render_report();
  const char* path = "survey_report.md";
  std::ofstream out(path);
  out << report;
  out.close();
  std::printf("survey corpus written to %s (%zu bytes)\n\n", path,
              report.size());

  // 2. A run on the Tokyo Tech replica, aggregated into the user
  //    scoreboard ("gives users mark on how well they used power").
  core::Scenario scenario =
      core::ScenarioBuilder::from_center(survey::center("TokyoTech"),
                                         /*job_count=*/80, /*seed=*/5)
          .horizon(30 * sim::kDay)
          .build();
  const core::RunResult result = scenario.run();

  telemetry::UserScoreboard board;
  board.add_all(result.job_reports);
  std::printf("%s\n",
              telemetry::UserScoreboard::format_ranking(board.ranking(2))
                  .c_str());
  std::printf("(%zu users, %zu finished jobs aggregated)\n",
              board.user_count(), result.job_reports.size());
  return 0;
}
