// Fixture: floating-point accumulation in hash order. Must trip
// float-accum-unordered (and only that: the enclosing function has no
// order-sensitive output effect, so unordered-iter stays quiet).
#include <string>
#include <unordered_map>

namespace fixture {

double total_power(const std::unordered_map<std::string, double>& draw) {
  double total_watts = 0.0;
  for (const auto& [node, watts] : draw) {
    total_watts += watts;
  }
  return total_watts;
}

}  // namespace fixture
