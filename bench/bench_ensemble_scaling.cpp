// Kernel bench: EnsembleEngine shard scaling and determinism.
//
// Runs the same two-point seed×parameter grid with 1, 2, and 4 worker
// threads, times each sweep, and verifies the aggregated statistics are
// bit-identical across thread counts (the engine's core contract: shard
// interleaving must never leak into results). Exits non-zero on any
// mismatch, so the determinism check runs wherever the bench runs.
//
// Flags:
//   --reps=N           replications per point (default 8)
//   --jobs=N           jobs per replication (default 60)
//   --smoke            tiny sizes for CI smoke runs
//   --report-out=PATH  merge every shard's metrics registry and write the
//                      cross-shard run report (JSON, or HTML for .html
//                      paths) with per-shard merge provenance; also turns
//                      on the engine's live progress lines and extends the
//                      determinism check to the merged metrics frames
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_summary.hpp"
#include "epajsrm.hpp"

namespace {

using namespace epajsrm;

core::EnsembleResult run_grid(std::size_t threads, std::size_t reps,
                              std::size_t jobs, bool merge_metrics) {
  core::EnsembleConfig config;
  config.replications = reps;
  config.base_seed = 4242;
  config.threads = threads;
  config.merge_metrics = merge_metrics;
  if (merge_metrics) {
    config.on_progress = [threads](const core::EnsembleProgress& p) {
      std::fprintf(stderr,
                   "[%zu threads] shards %zu/%zu, %.0f events/sec, "
                   "eta %.1fs\n",
                   threads, p.shards_done, p.shards_total, p.events_per_sec,
                   p.eta_seconds);
    };
  }
  core::EnsembleEngine engine(config);
  engine.add_point("uncapped", [jobs](std::uint64_t) {
    auto b = core::Scenario::builder()
                 .label("ens-uncapped")
                 .nodes(16)
                 .job_count(jobs)
                 .mix(core::WorkloadMix::kCapacity)
                 .horizon(10 * sim::kDay);
    return std::move(b).take_config();
  });
  engine.add_point(
      "capped",
      [jobs](std::uint64_t) {
        auto b = core::Scenario::builder()
                     .label("ens-capped")
                     .nodes(16)
                     .job_count(jobs)
                     .mix(core::WorkloadMix::kCapacity)
                     .horizon(10 * sim::kDay);
        return std::move(b).take_config();
      },
      [](core::Scenario& scenario) {
        const double peak = scenario.solution().power_model().peak_watts(
                                scenario.cluster().node(0).config()) *
                            scenario.config().nodes;
        scenario.solution().add_policy(
            std::make_unique<epa::PowerBudgetDvfsPolicy>(0.7 * peak));
      });
  return engine.run();
}

bool same_summary(const metrics::DistributionSummary& a,
                  const metrics::DistributionSummary& b) {
  return a.count == b.count && a.min == b.min && a.p10 == b.p10 &&
         a.p25 == b.p25 && a.median == b.median && a.p75 == b.p75 &&
         a.p90 == b.p90 && a.max == b.max && a.mean == b.mean;
}

bool same_result(const core::EnsembleResult& a,
                 const core::EnsembleResult& b) {
  if (a.cells.size() != b.cells.size() ||
      a.observations.size() != b.observations.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const core::EnsembleObservation& x = a.observations[i];
    const core::EnsembleObservation& y = b.observations[i];
    if (x.seed != y.seed || x.sim_events != y.sim_events ||
        x.total_kwh != y.total_kwh ||
        x.mean_utilization != y.mean_utilization ||
        x.median_wait_minutes != y.median_wait_minutes ||
        x.violation_fraction != y.violation_fraction ||
        x.jobs_completed != y.jobs_completed ||
        x.makespan_hours != y.makespan_hours) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const core::ReplicatedResult& x = a.cells[i].stats;
    const core::ReplicatedResult& y = b.cells[i].stats;
    if (a.cells[i].seeds != b.cells[i].seeds ||
        !same_summary(x.total_kwh, y.total_kwh) ||
        !same_summary(x.mean_utilization, y.mean_utilization) ||
        !same_summary(x.median_wait_minutes, y.median_wait_minutes) ||
        !same_summary(x.violation_fraction, y.violation_fraction) ||
        !same_summary(x.jobs_completed, y.jobs_completed) ||
        !same_summary(x.makespan_hours, y.makespan_hours)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 8;
  std::size_t jobs = 60;
  std::string report_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      reps = 2;
      jobs = 12;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<std::size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--report-out=", 13) == 0) {
      report_out = argv[i] + 13;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  const bool merge_metrics = !report_out.empty();

  bench::BenchSummary summary("ensemble_scaling");
  const std::vector<std::size_t> thread_counts = {1, 2, 4};
  std::vector<core::EnsembleResult> results;
  std::vector<double> wall_ms;
  for (const std::size_t threads : thread_counts) {
    const auto t0 = std::chrono::steady_clock::now();
    results.push_back(run_grid(threads, reps, jobs, merge_metrics));
    const auto t1 = std::chrono::steady_clock::now();
    wall_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    for (const core::EnsembleObservation& o : results.back().observations) {
      summary.add_events(o.sim_events);
    }
  }

  std::printf("%-8s %10s %10s   (%zu points x %zu reps, %zu jobs each)\n",
              "threads", "wall ms", "speedup", results.front().cells.size(),
              reps, jobs);
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%-8zu %10.1f %9.2fx\n", thread_counts[i], wall_ms[i],
                wall_ms[i] > 0.0 ? wall_ms.front() / wall_ms[i] : 0.0);
  }

  for (std::size_t i = 1; i < results.size(); ++i) {
    if (!same_result(results.front(), results[i])) {
      std::fprintf(stderr,
                   "FAIL: ensemble statistics differ between %zu and %zu "
                   "threads\n",
                   thread_counts.front(), thread_counts[i]);
      return 1;
    }
    // The merged metrics frame is part of the determinism contract:
    // counters, gauges, and full histogram bucket vectors must agree bit
    // for bit regardless of worker count.
    if (merge_metrics &&
        !(results.front().merged_metrics == results[i].merged_metrics)) {
      std::fprintf(stderr,
                   "FAIL: merged metrics differ between %zu and %zu "
                   "threads\n",
                   thread_counts.front(), thread_counts[i]);
      return 1;
    }
  }
  std::printf("statistics bit-identical across %zu thread counts\n",
              thread_counts.size());

  if (merge_metrics) {
    std::ofstream out(report_out);
    if (!out) {
      std::fprintf(stderr, "cannot open report output: %s\n",
                   report_out.c_str());
      return 1;
    }
    const core::EnsembleResult& merged = results.front();
    obs::RunReportBuilder report("ensemble_scaling");
    report.add_scalar("points",
                      static_cast<double>(merged.cells.size()));
    report.add_scalar("replications", static_cast<double>(reps));
    report.add_scalar("speedup_4_threads",
                      wall_ms.back() > 0.0 ? wall_ms.front() / wall_ms.back()
                                           : 0.0);
    report.set_metrics(merged.merged_metrics);
    report.set_merged(true);
    for (const core::ShardMetricsProvenance& shard :
         merged.metrics_provenance) {
      char label[64];
      std::snprintf(label, sizeof label, "point%zu/rep%zu", shard.point,
                    shard.replication);
      report.add_shard({label, shard.seed, shard.sim_events,
                        shard.metric_count,
                        static_cast<std::uint32_t>(
                            shard.point * reps + shard.replication)});
    }
    const bool html =
        report_out.size() >= 5 &&
        report_out.compare(report_out.size() - 5, 5, ".html") == 0;
    if (html) {
      report.write_html(out);
    } else {
      report.write_json(out);
    }
    std::printf("merged run report (%zu shards) -> %s\n",
                merged.metrics_provenance.size(), report_out.c_str());
  }
  return 0;
}
