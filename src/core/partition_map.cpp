#include "core/partition_map.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "check/contract.hpp"

namespace epajsrm::core {

PartitionMap PartitionMap::build(const platform::Cluster& cluster,
                                 std::uint32_t partitions) {
  const std::uint32_t nodes = cluster.node_count();
  if (nodes == 0) {
    throw std::invalid_argument("partition map needs a non-empty cluster");
  }

  // Recover each PDU's node range and insist it is contiguous ascending —
  // the layout ClusterBuilder produces. Anything else would force
  // non-slice temperature shards and a merge order different from node
  // order, so it is rejected rather than silently supported.
  std::uint32_t pdu_count = 0;
  for (const platform::Node& node : cluster.nodes()) {
    pdu_count = std::max(pdu_count, node.pdu() + 1);
  }
  std::vector<platform::NodeId> pdu_first(pdu_count, nodes);
  std::vector<platform::NodeId> pdu_last(pdu_count, 0);
  for (const platform::Node& node : cluster.nodes()) {
    pdu_first[node.pdu()] = std::min(pdu_first[node.pdu()], node.id());
    pdu_last[node.pdu()] = std::max(pdu_last[node.pdu()], node.id());
  }
  platform::NodeId expect = 0;
  for (std::uint32_t pdu = 0; pdu < pdu_count; ++pdu) {
    if (pdu_first[pdu] != expect) {
      throw std::invalid_argument(
          "partition map: PDU " + std::to_string(pdu) +
          "'s nodes are not a contiguous ascending range");
    }
    expect = pdu_last[pdu] + 1;
  }
  if (expect != nodes) {
    throw std::invalid_argument(
        "partition map: PDU ranges do not tile the cluster");
  }

  const std::uint32_t want =
      std::clamp<std::uint32_t>(partitions, 1, pdu_count);

  PartitionMap map;
  map.total_nodes_ = nodes;
  map.pdu_partition_.resize(pdu_count);
  map.bounds_.push_back(0);
  std::uint32_t current = 0;
  for (std::uint32_t pdu = 0; pdu < pdu_count; ++pdu) {
    // Proportional by node position: monotone in pdu, so every
    // partition is one contiguous PDU run, balanced by node count.
    const std::uint32_t target = static_cast<std::uint32_t>(
        (std::uint64_t{pdu_first[pdu]} * want) / nodes);
    if (target > current) {
      map.bounds_.push_back(pdu_first[pdu]);
      ++current;
    }
    map.pdu_partition_[pdu] = current;
  }
  map.bounds_.push_back(nodes);

  EPAJSRM_ENSURE(map.count() >= 1 && map.count() <= want,
                 "partition count within the requested bound");
  return map;
}

platform::NodeId PartitionMap::node_begin(std::uint32_t p) const {
  EPAJSRM_REQUIRE(p < count(), "unknown partition");
  return bounds_[p];
}

platform::NodeId PartitionMap::node_end(std::uint32_t p) const {
  EPAJSRM_REQUIRE(p < count(), "unknown partition");
  return bounds_[p + 1];
}

std::uint32_t PartitionMap::node_count(std::uint32_t p) const {
  return node_end(p) - node_begin(p);
}

std::uint32_t PartitionMap::partition_of_node(platform::NodeId id) const {
  EPAJSRM_REQUIRE(id < total_nodes_, "unknown node");
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), id);
  return static_cast<std::uint32_t>(it - bounds_.begin()) - 1;
}

std::uint32_t PartitionMap::partition_of_pdu(platform::PduId pdu) const {
  EPAJSRM_REQUIRE(pdu < pdu_partition_.size(), "unknown PDU");
  return pdu_partition_[pdu];
}

}  // namespace epajsrm::core
