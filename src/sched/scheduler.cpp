#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "check/contract.hpp"

namespace epajsrm::sched {

const char* to_string(DecisionPoint::Kind kind) {
  switch (kind) {
    case DecisionPoint::Kind::kSimulationBegins: return "simulation_begins";
    case DecisionPoint::Kind::kJobSubmitted: return "job_submitted";
    case DecisionPoint::Kind::kJobEnded: return "job_ended";
    case DecisionPoint::Kind::kBudgetTick: return "budget_tick";
    case DecisionPoint::Kind::kPowerBudgetChanged:
      return "power_budget_changed";
    case DecisionPoint::Kind::kSimulationEnds: return "simulation_ends";
  }
  return "unknown";
}

AvailabilityTimeline::AvailabilityTimeline(
    std::uint32_t free_now, const std::vector<workload::Job*>& running,
    const SchedulingContext& ctx) {
  // Collect release events, then prefix-sum into a free-count staircase.
  std::vector<Point> deltas;
  deltas.push_back({ctx.now(), static_cast<std::int64_t>(free_now)});
  for (const workload::Job* job : running) {
    const sim::SimTime end = std::max(ctx.planned_end(*job), ctx.now());
    deltas.push_back(
        {end, static_cast<std::int64_t>(job->allocated_nodes().size())});
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const Point& a, const Point& b) { return a.time < b.time; });
  std::int64_t free = 0;
  for (const Point& d : deltas) {
    free += d.free;
    if (!points_.empty() && points_.back().time == d.time) {
      points_.back().free = free;
    } else {
      points_.push_back({d.time, free});
    }
  }
}

std::int64_t AvailabilityTimeline::free_at(sim::SimTime t) const {
  std::int64_t free = 0;
  for (const Point& p : points_) {
    if (p.time > t) break;
    free = p.free;
  }
  return free;
}

std::uint32_t AvailabilityTimeline::min_free(sim::SimTime start,
                                             sim::SimTime duration) const {
  std::int64_t min_free = free_at(start);
  const sim::SimTime end = start + duration;
  for (const Point& p : points_) {
    if (p.time > start && p.time < end) {
      min_free = std::min(min_free, p.free);
    }
  }
  return static_cast<std::uint32_t>(std::max<std::int64_t>(0, min_free));
}

sim::SimTime AvailabilityTimeline::earliest_start(std::uint32_t nodes,
                                                  sim::SimTime duration,
                                                  sim::SimTime from) const {
  // Candidate starts: `from` and every breakpoint after it.
  if (min_free(from, duration) >= nodes) return from;
  for (const Point& p : points_) {
    if (p.time <= from) continue;
    if (min_free(p.time, duration) >= nodes) return p.time;
  }
  return std::numeric_limits<sim::SimTime>::max();
}

void AvailabilityTimeline::reserve(std::uint32_t nodes, sim::SimTime start,
                                   sim::SimTime duration) {
  EPAJSRM_REQUIRE(nodes > 0, "reservations cover at least one node");
  EPAJSRM_REQUIRE(duration >= 0, "reservation duration cannot be negative");
  const sim::SimTime end = start + duration;
  // Ensure breakpoints exist at start and end, then subtract inside.
  const auto ensure_point = [this](sim::SimTime t) {
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].time == t) return;
      if (points_[i].time > t) {
        const std::int64_t prev = i > 0 ? points_[i - 1].free : 0;
        points_.insert(points_.begin() + static_cast<std::ptrdiff_t>(i),
                       {t, prev});
        return;
      }
    }
    points_.push_back({t, points_.empty() ? 0 : points_.back().free});
  };
  ensure_point(start);
  ensure_point(end);
  for (Point& p : points_) {
    if (p.time >= start && p.time < end) {
      p.free -= static_cast<std::int64_t>(nodes);
    }
  }
}

}  // namespace epajsrm::sched
