// Group power caps — JCAHPC's production capability ("ability to set power
// caps for groups of nodes via the resource manager", a Fujitsu
// proprietary product on Oakforest-PACS). Groups here follow the
// facility's PDU membership; each group's cap defaults to a fraction of
// its PDU breaker capacity.
#pragma once

#include <vector>

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Per-PDU (node-group) power capping set via the resource-manager path.
class GroupPowerCapPolicy final : public EpaPolicy {
 public:
  /// `group_cap_watts[p]` caps the nodes of PDU p; groups beyond the
  /// vector (or entries <= 0) stay uncapped. Per-node cap = group cap /
  /// group size.
  explicit GroupPowerCapPolicy(std::vector<double> group_cap_watts)
      : group_caps_(std::move(group_cap_watts)) {}

  /// Uniform variant: every PDU group capped at `fraction` of the sum of
  /// its nodes' model peaks.
  static GroupPowerCapPolicy uniform_fraction(double fraction) {
    GroupPowerCapPolicy p({});
    p.uniform_fraction_ = fraction;
    return p;
  }

  std::string name() const override { return "group-power-cap"; }

  void install(PolicyHost& host) override;

  double power_budget_watts(sim::SimTime) const override { return budget_; }

  /// Re-caps one group at runtime (the manual admin knob).
  void set_group_cap(PolicyHost& host, platform::PduId group, double watts);

 private:
  std::vector<double> group_caps_;
  double uniform_fraction_ = 0.0;
  double budget_ = 0.0;
};

}  // namespace epajsrm::epa
