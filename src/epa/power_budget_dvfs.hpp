// Power-budget admission with DVFS degradation — the Etinski [18][19]
// power-budget scheduler and the shape of SLURM's Dynamic Power Management
// that KAUST co-developed with SchedMD, and of CEA+BULL's power-adaptive
// SLURM scheduling.
//
// A system IT-power budget is enforced at admission: a job starts at the
// highest P-state whose predicted incremental draw fits the remaining
// headroom; if even the deepest P-state does not fit, the job waits.
#pragma once

#include "check/contract.hpp"
#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Budgeted admission with per-job DVFS selection.
class PowerBudgetDvfsPolicy final : public EpaPolicy {
 public:
  /// `budget_watts`: the IT power budget. `allow_dvfs`: when false the
  /// policy only admits at full frequency (pure power-aware admission, no
  /// frequency trading — the Bodas [8] variant).
  explicit PowerBudgetDvfsPolicy(double budget_watts, bool allow_dvfs = true)
      : budget_(budget_watts), allow_dvfs_(allow_dvfs) {}

  std::string name() const override { return "power-budget-dvfs"; }

  bool plan_start(StartPlan& plan) override;

  double power_budget_watts(sim::SimTime) const override { return budget_; }

  void set_budget_watts(double watts) {
    EPAJSRM_REQUIRE(watts >= 0.0, "power budget must be non-negative");
    budget_ = watts;
  }

  std::uint64_t dvfs_degraded_starts() const { return degraded_; }
  std::uint64_t vetoed_starts() const { return vetoed_; }

 private:
  double budget_;
  bool allow_dvfs_;
  std::uint64_t degraded_ = 0;
  std::uint64_t vetoed_ = 0;
};

}  // namespace epajsrm::epa
