// EDC transport: how serialized decision batches reach the external
// decision component and how its decisions come back.
//
// The unit of exchange is a batch: every event line accumulated since the
// previous exchange plus the closing scheduling_pass (or simulation_ends)
// line. Batching keeps the decision boundary synchronous-per-pass — the
// simulation blocks on exchange(), so external decisions land at exact,
// reproducible simulated instants regardless of how slow the component is
// in wall time.
//
// LoopbackTransport is the in-process implementation used today; a socket
// transport only has to ship the same lines and can slot in unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace epajsrm::edc {

/// An in-process external decision component: consumes one batch of
/// serialized messages, returns serialized reply lines.
class Agent {
 public:
  virtual ~Agent() = default;

  virtual std::vector<std::string> on_messages(
      const std::vector<std::string>& lines) = 0;

  /// Diagnostic name (shows up in the scheduler's name()).
  virtual std::string name() const = 0;
};

/// Carries serialized batches to the decision component and back.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `lines` and blocks for the component's reply lines.
  virtual std::vector<std::string> exchange(
      const std::vector<std::string>& lines) = 0;

  virtual std::string describe() const = 0;
};

/// In-process loopback: hands each batch straight to an Agent. The lines
/// still go through full serialize/parse, so the loopback path exercises
/// the identical wire contract a socket transport would.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(std::shared_ptr<Agent> agent);

  std::vector<std::string> exchange(
      const std::vector<std::string>& lines) override;

  std::string describe() const override;

 private:
  std::shared_ptr<Agent> agent_;
};

}  // namespace epajsrm::edc
