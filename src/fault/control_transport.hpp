// The control-RPC transport abstraction the CAPMC controller calls
// through when one is attached.
//
// Header-only and sim-only on purpose: power::CapmcController includes
// this without linking the fault library (which in turn links core), so no
// dependency cycle forms. The fault injector provides the lossy
// implementation; tests can script their own.
#pragma once

#include "sim/time.hpp"

namespace epajsrm::fault {

/// One out-of-band control channel (the CAPMC REST endpoint, an IPMI
/// bridge, ...). Implementations decide per attempt whether the RPC
/// succeeds and how long it takes; they must be deterministic functions of
/// simulation state and their own seeded streams.
class ControlTransport {
 public:
  virtual ~ControlTransport() = default;

  /// Outcome of one RPC attempt.
  struct Attempt {
    bool ok = true;
    double latency_us = 0.0;
  };

  /// Performs one attempt of the named operation ("node_cap", ...).
  virtual Attempt attempt(const char* op) = 0;

  /// Current simulation time, for breaker cooldown bookkeeping (the
  /// controller deliberately has no Simulation reference of its own).
  virtual sim::SimTime now() const = 0;
};

}  // namespace epajsrm::fault
