# Empty compiler generated dependencies file for bench_powercap_sweep.
# This may be replaced when dependencies are built.
