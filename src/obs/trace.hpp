// Structured event tracing: a bounded in-memory ring of timestamped trace
// events with JSONL and Chrome trace_event exporters.
//
// Every production EPA JSRM stack the survey covers couples its scheduler
// and power-control loop to a telemetry plane; this is the reproduction's
// equivalent. Components record *decisions* (dispatch, cap actuation,
// P-state change, allocation) as instants or scoped spans; the ring keeps
// the most recent `capacity` events so tracing is safe to leave on for
// long runs. All recording is single-threaded (the simulator is), lock
// free, and O(1) per event.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::obs {

/// One key/value attribute of a trace event. Values are numeric or string;
/// numeric is the fast path (no allocation beyond the key).
struct TraceAttr {
  TraceAttr(std::string k, double v)
      : key(std::move(k)), numeric(true), num(v) {}
  TraceAttr(std::string k, std::string v)
      : key(std::move(k)), numeric(false), str(std::move(v)) {}

  std::string key;
  bool numeric;
  double num = 0.0;
  std::string str;
};

/// Event flavours: a point-in-time decision, a completed span (with wall
/// duration), or a log line routed from sim::Logger.
enum class TraceKind { kInstant, kSpan, kLog };

/// Name of a kind ("instant" / "span" / "log").
const char* to_string(TraceKind kind);

/// A recorded event. `wall_ns` is monotonic wall time relative to the
/// recorder's epoch; `dur_ns` is the span's wall duration (0 for instants).
struct TraceEvent {
  sim::SimTime sim_time = 0;
  std::int64_t wall_ns = 0;
  std::int64_t dur_ns = 0;
  std::int32_t depth = 0;  ///< span nesting depth at record time
  TraceKind kind = TraceKind::kInstant;
  std::string component;
  std::string name;
  std::int64_t job_id = -1;   ///< -1 = not job-related
  std::int64_t node_id = -1;  ///< -1 = not node-related
  std::vector<TraceAttr> attrs;
};

class TraceRecorder;

/// RAII span: created open, records one kSpan event (with wall duration)
/// into its recorder when it finishes or goes out of scope. A
/// default-constructed span is a no-op — the disabled-observability path.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ~ScopedSpan() { finish(); }

  /// True when destruction will record an event.
  bool active() const { return recorder_ != nullptr; }

  /// Attaches an attribute (no-op when inactive).
  void attr(std::string key, double value);
  void attr(std::string key, std::string value);
  void set_job(std::int64_t id);
  void set_node(std::int64_t id);

  /// Records the span now (idempotent).
  void finish();

 private:
  friend class TraceRecorder;
  ScopedSpan(TraceRecorder* recorder, std::string component,
             std::string name);

  TraceRecorder* recorder_ = nullptr;
  TraceEvent event_;
};

/// Bounded ring of trace events with on-demand exporters.
class TraceRecorder {
 public:
  /// `wall_clock` returns monotonic nanoseconds; the default reads
  /// std::chrono::steady_clock. Injectable for deterministic tests.
  using WallClock = std::function<std::int64_t()>;

  explicit TraceRecorder(std::size_t capacity = 1 << 16,
                         WallClock wall_clock = {});

  /// Installs the simulation clock; events recorded before this read
  /// sim_time 0.
  void set_sim_clock(std::function<sim::SimTime()> clock) {
    sim_clock_ = std::move(clock);
  }

  /// Monotonic wall nanoseconds since the recorder's epoch.
  std::int64_t wall_now_ns() const;

  /// Records an instant event.
  void instant(std::string component, std::string name,
               std::int64_t job_id = -1, std::int64_t node_id = -1,
               std::vector<TraceAttr> attrs = {});

  /// Records a log line (sim::Logger routes here when attached).
  void log_line(std::string component, std::string message,
                std::string level);

  /// Opens a scoped span; the returned object records on destruction.
  ScopedSpan span(std::string component, std::string name);

  /// Low-level append (used by ScopedSpan; sim_time/wall must be filled).
  void record(TraceEvent event);

  // --- ring inspection ------------------------------------------------------

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  /// Total events ever recorded (including evicted ones).
  std::uint64_t recorded() const { return recorded_; }
  /// Events evicted because the ring was full.
  std::uint64_t dropped() const { return recorded_ - size_; }
  /// Copies the retained events, oldest first.
  std::vector<TraceEvent> events() const;
  void clear();

  // --- exporters ------------------------------------------------------------

  /// One JSON object per line, oldest first.
  void export_jsonl(std::ostream& out) const;

  /// Chrome trace_event JSON ("traceEvents" array of "X"/"i" phases;
  /// loadable in Perfetto / chrome://tracing). Timestamps are wall
  /// microseconds; sim time rides along in args.
  void export_chrome_trace(std::ostream& out) const;

 private:
  friend class ScopedSpan;
  sim::SimTime sim_now() const { return sim_clock_ ? sim_clock_() : 0; }

  std::size_t capacity_;
  WallClock wall_clock_;
  std::function<sim::SimTime()> sim_clock_;
  std::int64_t epoch_ns_ = 0;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  ///< ring slot the next event lands in
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::int32_t open_spans_ = 0;
};

}  // namespace epajsrm::obs
