// Fixture: the const-cast rule must fire here.
void mutate(const int* cp) {
  int* p = const_cast<int*>(cp);
  *p = 1;
}
