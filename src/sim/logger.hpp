// Lightweight leveled logger prefixed with simulation time.
//
// The logger is deliberately minimal: synchronous, stdio-backed, filterable
// by level, and silenceable for benchmarks. Components log through a
// Logger& so tests can capture output via a custom sink. An optional
// structured event sink taps every emitted message *before* text
// formatting — the observability layer attaches the trace recorder there,
// so log lines and trace events share a single emission point.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace epajsrm::sim {

/// Log severity, ordered; messages below the threshold are dropped.
enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Human-readable name of a level ("TRACE".."ERROR").
const char* to_string(LogLevel level);

/// Parses a level name ("trace", "DEBUG", "warn"/"warning", "off", ...),
/// case-insensitively. Returns nullopt for unknown names — CLI flag
/// parsing wants the error, not a silent default.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Sim-time-stamped leveled logger.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;
  /// Structured tap: (level, sim time or -1 when clockless, component,
  /// message), called for every emitted message before text formatting.
  using EventSink = std::function<void(LogLevel, SimTime, const std::string&,
                                       const std::string&)>;

  /// Creates a logger reading timestamps from `clock` (the Simulation's
  /// now(), injected as a callable to avoid a dependency cycle). A null
  /// clock renders timestamps as "--:--:--"; filtering and sinks behave
  /// identically either way.
  explicit Logger(std::function<SimTime()> clock,
                  LogLevel threshold = LogLevel::kWarn)
      : clock_(std::move(clock)), threshold_(threshold) {}

  /// Creates a clockless logger (timestamps rendered as "--:--:--").
  Logger() : Logger(nullptr) {}

  /// Installs or replaces the clock after construction.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  bool has_clock() const { return static_cast<bool>(clock_); }

  /// Sets the minimum severity that is emitted.
  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }

  /// Replaces the output sink (default: stderr). The sink receives the
  /// fully formatted line.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Attaches (or clears, with {}) the structured tap. The observability
  /// layer routes messages into the trace recorder through this.
  void set_event_sink(EventSink sink) { event_sink_ = std::move(sink); }

  /// Emits a message at `level` tagged with `component`. Messages below
  /// the threshold, and any message at level kOff, are dropped.
  void log(LogLevel level, const std::string& component,
           const std::string& message);

  void trace(const std::string& c, const std::string& m) { log(LogLevel::kTrace, c, m); }
  void debug(const std::string& c, const std::string& m) { log(LogLevel::kDebug, c, m); }
  void info(const std::string& c, const std::string& m) { log(LogLevel::kInfo, c, m); }
  void warn(const std::string& c, const std::string& m) { log(LogLevel::kWarn, c, m); }
  void error(const std::string& c, const std::string& m) { log(LogLevel::kError, c, m); }

 private:
  std::function<SimTime()> clock_;
  LogLevel threshold_;
  Sink sink_;
  EventSink event_sink_;
};

}  // namespace epajsrm::sim
