#include "svc/templates.hpp"

#include <stdexcept>
#include <utility>

#include "epa/energy_budget.hpp"

namespace epajsrm::svc {

TemplateStore TemplateStore::with_builtins() {
  TemplateStore store;

  core::ScenarioConfig smoke;
  smoke.label = "smoke";
  smoke.nodes = 8;
  smoke.nodes_per_rack = 8;
  smoke.job_count = 12;
  smoke.seed = 1;
  smoke.horizon = 12 * sim::kHour;
  smoke.solution.enable_thermal = false;
  store.put("smoke", smoke);

  core::ScenarioConfig study;
  study.label = "study";
  study.nodes = 16;
  study.job_count = 32;
  study.seed = 1;
  study.horizon = sim::kDay;
  store.put("study", study);

  core::ScenarioConfig budget;
  budget.label = "energy-budget";
  budget.nodes = 16;
  budget.job_count = 16;
  budget.seed = 1;
  budget.horizon = sim::kDay;
  budget.solution.enable_thermal = false;
  epa::EnergyBudgetConfig eb;
  eb.mode = epa::EnergyBudgetMode::kReducePowerCap;
  eb.window_budget_joules = 5.0e6;
  eb.window = sim::kHour;
  eb.initial_fraction = 0.0;
  eb.emergency_timeout = 20 * sim::kMinute;
  eb.cap_floor_fraction = 0.85;
  budget.energy_budget = eb;
  store.put("energy-budget", budget);

  return store;
}

void TemplateStore::put(const std::string& name, core::ScenarioConfig config) {
  if (config.external_transport) {
    throw std::invalid_argument(
        "template \"" + name + "\" carries an external_transport; the "
        "service only runs pure-value configs");
  }
  core::validate(config);
  templates_.insert_or_assign(name, std::move(config));
}

const core::ScenarioConfig* TemplateStore::find(const std::string& name) const {
  const auto it = templates_.find(name);
  return it == templates_.end() ? nullptr : &it->second;
}

core::ScenarioConfig TemplateStore::instantiate(
    const std::string& name, const TemplateOverrides& overrides) const {
  const core::ScenarioConfig* base = find(name);
  if (base == nullptr) {
    throw std::invalid_argument("unknown template \"" + name + "\"");
  }
  core::ScenarioConfig config = *base;
  if (overrides.seed) config.seed = *overrides.seed;
  if (overrides.nodes) config.nodes = *overrides.nodes;
  if (overrides.job_count) config.job_count = *overrides.job_count;
  if (overrides.partitions) config.partitions = *overrides.partitions;
  if (!overrides.label.empty()) config.label = overrides.label;
  core::validate(config);
  return config;
}

std::vector<std::string> TemplateStore::names() const {
  std::vector<std::string> out;
  out.reserve(templates_.size());
  for (const auto& [name, config] : templates_) out.push_back(name);
  return out;
}

}  // namespace epajsrm::svc
