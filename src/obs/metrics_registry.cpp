#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "obs/wall.hpp"

namespace epajsrm::obs {

namespace {

/// Quantizes a value to 2^-16 fixed-point, saturating far outside the
/// bucket grid so one absurd observation cannot wrap the sum by itself
/// (wrapping across *many* adds is fine — it stays associative).
std::uint64_t quantize(double v) {
  if (!std::isfinite(v)) return 0;
  constexpr double kSaturation = 9.0e18;  // < 2^63, conservative
  double q = v * 65536.0;
  if (q > kSaturation) q = kSaturation;
  if (q < -kSaturation) q = -kSaturation;
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(std::llround(q)));
}

/// Shared quantile walk over dense or sparse bucket counts. `cum_at` must
/// yield (bucket_index, count) pairs in index order.
template <typename BucketRange>
QuantileBounds quantile_from_buckets(const BucketRange& buckets,
                                     std::uint64_t total, double q,
                                     double exact_min, double exact_max,
                                     std::uint64_t minmax_count) {
  QuantileBounds out;
  if (total == 0) return out;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (const auto& [index, count] : buckets) {
    cum += count;
    if (cum >= rank) {
      out.lower = Histogram::bucket_lower_bound(index);
      out.upper = Histogram::bucket_upper_bound(index);
      if (minmax_count > 0) {
        out.lower = std::max(out.lower, exact_min);
        out.upper = std::min(out.upper, exact_max);
        if (out.upper < out.lower) out.upper = out.lower;
      }
      return out;
    }
  }
  return out;  // unreachable when counts sum to total
}

}  // namespace

// --- Histogram ----------------------------------------------------------------

Histogram::Histogram() : counts_(kBucketCount, 0) {}

std::size_t Histogram::bucket_index(double v) {
  if (std::isnan(v) || v <= 0.0) return 0;  // underflow: zero/negative/NaN
  if (std::isinf(v)) return kBucketCount - 1;
  int exp2 = 0;
  const double mantissa = std::frexp(v, &exp2);  // v = mantissa * 2^exp2
  const int octave = exp2 - 1;                   // v in [2^octave, 2^(octave+1))
  if (octave < kMinOctave) return 0;
  if (octave > kMaxOctave) return kBucketCount - 1;
  // mantissa in [0.5, 1): 2*mantissa - 1 in [0, 1) picks the sub-bucket.
  auto sub = static_cast<std::size_t>(
      (2.0 * mantissa - 1.0) * static_cast<double>(kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + static_cast<std::size_t>(octave - kMinOctave) * kSubBuckets + sub;
}

double Histogram::bucket_lower_bound(std::size_t i) {
  if (i == 0) return 0.0;
  if (i >= kBucketCount - 1) return std::ldexp(1.0, kMaxOctave + 1);
  const std::size_t grid = i - 1;
  const int octave = kMinOctave + static_cast<int>(grid / kSubBuckets);
  const std::size_t sub = grid % kSubBuckets;
  return std::ldexp(
      1.0 + static_cast<double>(sub) / static_cast<double>(kSubBuckets),
      octave);
}

double Histogram::bucket_upper_bound(std::size_t i) {
  if (i == 0) return std::ldexp(1.0, kMinOctave);
  if (i >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  const std::size_t grid = i - 1;
  const int octave = kMinOctave + static_cast<int>(grid / kSubBuckets);
  const std::size_t sub = grid % kSubBuckets;
  return std::ldexp(
      1.0 + static_cast<double>(sub + 1) / static_cast<double>(kSubBuckets),
      octave);
}

void Histogram::observe(double v) {
  ++counts_[bucket_index(v)];
  ++count_;
  sum_quanta_bits_ += quantize(v);
  if (!std::isnan(v)) {
    if (minmax_count_ == 0) {
      min_ = v;
      max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    ++minmax_count_;
  }
}

void Histogram::merge_from(const Histogram& other) {
  if (other.minmax_count_ > 0) {
    if (minmax_count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  minmax_count_ += other.minmax_count_;
  count_ += other.count_;
  sum_quanta_bits_ += other.sum_quanta_bits_;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts_[i] += other.counts_[i];
  }
}

namespace {
/// Adapts the dense count vector to (index, count) pairs for the shared
/// quantile walk without materialising them.
struct DenseBuckets {
  const std::vector<std::uint64_t>* counts;
  struct Iter {
    const std::vector<std::uint64_t>* counts;
    std::size_t i;
    bool operator!=(const Iter& o) const { return i != o.i; }
    void operator++() { ++i; }
    std::pair<std::size_t, std::uint64_t> operator*() const {
      return {i, (*counts)[i]};
    }
  };
  Iter begin() const { return {counts, 0}; }
  Iter end() const { return {counts, counts->size()}; }
};
}  // namespace

QuantileBounds Histogram::quantile_bounds(double q) const {
  return quantile_from_buckets(DenseBuckets{&counts_}, count_, q, min_, max_,
                               minmax_count_);
}

QuantileBounds FrameHistogram::quantile_bounds(double q) const {
  return quantile_from_buckets(buckets, count, q, min, max, minmax_count);
}

// --- MetricsRegistry ----------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  if (!enabled_) return scratch_counter_;
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (!enabled_) return scratch_gauge_;
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  if (!enabled_) return scratch_histogram_;
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  if (!enabled_) return out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 7);
  for (const auto& [name, c] : counters_) {
    out.push_back({name, MetricKind::kCounter,
                   static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, MetricKind::kGauge, g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name + ".count", MetricKind::kHistogram,
                   static_cast<double>(h->count())});
    out.push_back({name + ".sum", MetricKind::kHistogram, h->sum()});
    out.push_back({name + ".mean", MetricKind::kHistogram, h->mean()});
    out.push_back({name + ".max", MetricKind::kHistogram, h->max()});
    out.push_back({name + ".p50", MetricKind::kHistogram, h->quantile(0.5)});
    out.push_back({name + ".p90", MetricKind::kHistogram, h->quantile(0.9)});
    out.push_back({name + ".p99", MetricKind::kHistogram, h->quantile(0.99)});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

MetricsFrame MetricsRegistry::export_frame() const {
  MetricsFrame frame;
  if (!enabled_) return frame;
  frame.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    frame.counters.emplace_back(name, c->value());
  }
  frame.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    frame.gauges.emplace_back(name, g->value());
  }
  frame.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    FrameHistogram fh;
    fh.count = h->count();
    fh.sum_quanta_bits = h->sum_quanta_bits();
    fh.minmax_count = h->minmax_count();
    fh.min = h->min();
    fh.max = h->max();
    const auto& counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) {
        fh.buckets.emplace_back(static_cast<std::uint32_t>(i), counts[i]);
      }
    }
    frame.histograms.emplace_back(name, std::move(fh));
  }
  return frame;
}

namespace {

void merge_histogram(FrameHistogram& dst, const FrameHistogram& src) {
  if (src.minmax_count > 0) {
    if (dst.minmax_count == 0) {
      dst.min = src.min;
      dst.max = src.max;
    } else {
      dst.min = std::min(dst.min, src.min);
      dst.max = std::max(dst.max, src.max);
    }
  }
  dst.minmax_count += src.minmax_count;
  dst.count += src.count;
  dst.sum_quanta_bits += src.sum_quanta_bits;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(dst.buckets.size() + src.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < dst.buckets.size() || b < src.buckets.size()) {
    if (b >= src.buckets.size() ||
        (a < dst.buckets.size() &&
         dst.buckets[a].first < src.buckets[b].first)) {
      merged.push_back(dst.buckets[a++]);
    } else if (a >= dst.buckets.size() ||
               src.buckets[b].first < dst.buckets[a].first) {
      merged.push_back(src.buckets[b++]);
    } else {
      merged.emplace_back(dst.buckets[a].first,
                          dst.buckets[a].second + src.buckets[b].second);
      ++a;
      ++b;
    }
  }
  dst.buckets = std::move(merged);
}

/// Sorted-vector merge with a per-match combiner; names absent on one side
/// are copied through.
template <typename V, typename Combine>
void merge_named(std::vector<std::pair<std::string, V>>& dst,
                 const std::vector<std::pair<std::string, V>>& src,
                 Combine combine) {
  std::vector<std::pair<std::string, V>> merged;
  merged.reserve(dst.size() + src.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < dst.size() || b < src.size()) {
    if (b >= src.size() ||
        (a < dst.size() && dst[a].first < src[b].first)) {
      merged.push_back(std::move(dst[a++]));
    } else if (a >= dst.size() || src[b].first < dst[a].first) {
      merged.push_back(src[b++]);
    } else {
      combine(dst[a].second, src[b].second);
      merged.push_back(std::move(dst[a]));
      ++a;
      ++b;
    }
  }
  dst = std::move(merged);
}

}  // namespace

void merge_frame(MetricsFrame& dst, const MetricsFrame& src) {
  merge_named(dst.counters, src.counters,
              [](std::uint64_t& d, const std::uint64_t& s) { d += s; });
  merge_named(dst.gauges, src.gauges,
              [](double& d, const double& s) { d = s; });
  merge_named(dst.histograms, src.histograms, merge_histogram);
}

// --- MetricsSampler -----------------------------------------------------------

void MetricsSampler::sample(sim::SimTime now) {
  if (!registry_->enabled()) return;
  const std::int64_t t0 = overhead_ns_ != nullptr ? wall_now_ns() : 0;
  for (const MetricSample& s : registry_->snapshot()) {
    auto [it, inserted] = series_.try_emplace(s.name, budget_, width_);
    it->second.record(now, s.value);
  }
  ++samples_taken_;
  // Keep every column at the same bucket width so rows stay aligned: a
  // column that just hit its budget and coarsened drags the others along.
  sim::SimTime widest = width_;
  for (const auto& [name, series] : series_) {
    widest = std::max(widest, series.bucket_width());
  }
  if (widest != width_) {
    width_ = widest;
    for (auto& [name, series] : series_) series.coarsen_to(width_);
  }
  if (overhead_ns_ != nullptr) {
    overhead_ns_->add(static_cast<std::uint64_t>(wall_now_ns() - t0));
  }
}

const DownsamplingSeries* MetricsSampler::series(
    const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

namespace {

/// RFC 4180: quote fields containing separators/quotes/newlines, doubling
/// embedded quotes.
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void MetricsSampler::write_csv(std::ostream& out) const {
  out << "time_s";
  for (const auto& [name, series] : series_) out << ',' << csv_escape(name);
  out << '\n';

  // One CSV row per distinct bucket end-time. All columns share bucket
  // boundaries (lockstep coarsening above), so a bucket's last-sample time
  // identifies the row; columns registered later simply lack early rows.
  std::map<sim::SimTime, std::vector<std::pair<std::size_t, double>>> rows;
  std::size_t column = 0;
  for (const auto& [name, series] : series_) {
    for (const SeriesBucket& b : series.buckets()) {
      rows[b.last_time].emplace_back(column, b.last);
    }
    ++column;
  }

  char buf[64];
  for (const auto& [time, cells] : rows) {
    std::snprintf(buf, sizeof(buf), "%.3f", sim::to_seconds(time));
    out << buf;
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < column; ++c) {
      out << ',';
      while (cursor < cells.size() && cells[cursor].first < c) ++cursor;
      if (cursor < cells.size() && cells[cursor].first == c) {
        std::snprintf(buf, sizeof(buf), "%g", cells[cursor].second);
        out << buf;
      }
    }
    out << '\n';
  }
}

}  // namespace epajsrm::obs
