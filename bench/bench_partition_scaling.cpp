// Kernel bench: lax-sync partitioned scenario core scaling and
// determinism (DESIGN.md §15).
//
// Runs one power-dense 16k-node scenario — thermal stepping on, a small
// set of long capability jobs keeping the floor hot — at 1, 2, 4 and 8
// rack/PDU partitions, times each run, and verifies the RunResult digest
// (every double compared by bit pattern) and the power ledger's exact
// aggregate parity are identical across partition counts. Exits non-zero
// on any divergence, so the bit-identity contract is enforced wherever
// the bench runs.
//
// Events/s uses the coordinator's sim_events, which is partition-count
// invariant by construction — so the events/s ratio across rows is
// exactly the wall-time speedup of the partition fan-out.
//
// Flags:
//   --smoke            tiny sizes for CI smoke runs (1k nodes, 2h)
//   --nodes=N          cluster size (default 16384)
//   --hours=H          horizon in hours (default 6)
//   --partitions=a,b   comma-separated partition counts (default 1,2,4,8)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_summary.hpp"
#include "core/run_result_digest.hpp"
#include "core/scenario_builder.hpp"

namespace {

using namespace epajsrm;

struct RunRow {
  std::uint32_t partitions = 0;
  double wall_ms = 0.0;
  std::uint64_t sim_events = 0;
  std::uint64_t local_events = 0;
  std::string digest;
  std::string ledger_parity;
};

core::ScenarioConfig dense_config(std::uint32_t nodes, sim::SimTime horizon,
                                  std::uint32_t partitions) {
  auto b = core::Scenario::builder()
               .label("partition-scaling")
               .nodes(nodes)
               .job_count(64)
               .mix(core::WorkloadMix::kCapability)
               .target_utilization(0.9)
               .seed(20180521)  // the survey's IPPS year+month+day
               .horizon(horizon)
               .partitions(partitions)
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = true;
               });
  return std::move(b).take_config();
}

RunRow run_once(std::uint32_t nodes, sim::SimTime horizon,
                std::uint32_t partitions) {
  core::Scenario scenario(dense_config(nodes, horizon, partitions));
  const auto t0 = std::chrono::steady_clock::now();
  const core::RunResult result = scenario.run();
  const auto t1 = std::chrono::steady_clock::now();
  RunRow row;
  row.partitions = partitions;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.sim_events = result.sim_events;
  row.local_events = scenario.partition_domain() != nullptr
                         ? scenario.partition_domain()->local_events()
                         : 0;
  row.digest = core::run_result_digest(result);
  row.ledger_parity = scenario.solution().ledger().audit_parity();
  return row;
}

std::vector<std::uint32_t> parse_partitions(const char* text) {
  std::vector<std::uint32_t> out;
  for (const char* p = text; *p != '\0';) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0) {
      std::fprintf(stderr, "bad --partitions list: %s\n", text);
      std::exit(2);
    }
    out.push_back(static_cast<std::uint32_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "empty --partitions list\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t nodes = 16384;
  sim::SimTime horizon = 6 * sim::kHour;
  std::vector<std::uint32_t> partition_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      nodes = 1024;
      horizon = 2 * sim::kHour;
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes = static_cast<std::uint32_t>(
          std::strtoul(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--hours=", 8) == 0) {
      horizon = static_cast<sim::SimTime>(
                    std::strtoul(argv[i] + 8, nullptr, 10)) *
                sim::kHour;
    } else if (std::strncmp(argv[i], "--partitions=", 13) == 0) {
      partition_counts = parse_partitions(argv[i] + 13);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  bench::BenchSummary summary("partition_scaling");
  std::vector<RunRow> rows;
  for (const std::uint32_t partitions : partition_counts) {
    rows.push_back(run_once(nodes, horizon, partitions));
    summary.add_events(rows.back().sim_events);
  }

  std::printf("%u nodes, %.0fh horizon, 64 capability jobs\n", nodes,
              sim::to_hours(horizon));
  std::printf("%-12s %10s %12s %12s %10s\n", "partitions", "wall ms",
              "events/s", "local evts", "speedup");
  for (const RunRow& row : rows) {
    const double events_per_sec =
        row.wall_ms > 0.0
            ? static_cast<double>(row.sim_events) / (row.wall_ms / 1000.0)
            : 0.0;
    std::printf("%-12u %10.1f %12.0f %12llu %9.2fx\n", row.partitions,
                row.wall_ms, events_per_sec,
                static_cast<unsigned long long>(row.local_events),
                row.wall_ms > 0.0 ? rows.front().wall_ms / row.wall_ms : 0.0);
  }

  int failures = 0;
  for (const RunRow& row : rows) {
    if (row.digest != rows.front().digest) {
      std::fprintf(stderr,
                   "FAIL: RunResult digest at %u partitions diverged from "
                   "%u partitions\n",
                   row.partitions, rows.front().partitions);
      ++failures;
    }
    if (!row.ledger_parity.empty()) {
      std::fprintf(stderr, "FAIL: ledger parity at %u partitions: %s\n",
                   row.partitions, row.ledger_parity.c_str());
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::printf("RunResult bit-identical across %zu partition counts\n",
              rows.size());
  return 0;
}
