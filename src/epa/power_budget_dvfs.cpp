#include "epa/power_budget_dvfs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epajsrm::epa {

void PowerBudgetDvfsPolicy::set_budget_watts(double watts) {
  auto* mutable_source = dynamic_cast<MutableBudgetSource*>(&budget_.source());
  if (mutable_source == nullptr) {
    throw std::logic_error(
        "power-budget-dvfs: budget is source-driven; mutate the "
        "BudgetSource instead of calling the deprecated setter");
  }
  mutable_source->set_watts(watts);
  if (host_ != nullptr) host_->notify_power_budget_changed(watts);
}

void PowerBudgetDvfsPolicy::on_tick(sim::SimTime now) {
  budget_.refresh(now, host_);
}

bool PowerBudgetDvfsPolicy::plan_start(StartPlan& plan) {
  if (host_ == nullptr) return true;
  const double budget_watts =
      budget_.watts_at(host_->simulation().now());
  if (budget_watts <= 0.0) return true;

  const platform::Cluster& cluster = host_->cluster();
  const power::NodePowerModel& model = host_->power_model();
  const platform::PstateTable& pstates = cluster.pstates();
  const double idle = cluster.node(0).config().idle_watts;

  // Incremental admission: the job's nodes are already drawing idle power
  // (they are on and idle), so only the dynamic part is new draw.
  const double current = host_->ledger().it_power_watts();
  const double headroom = budget_watts - current;
  const double dynamic_ref =
      std::max(0.0, plan.predicted_node_watts - idle) * plan.nodes;

  const std::uint32_t deepest = allow_dvfs_ ? pstates.deepest() : 0;
  for (std::uint32_t p = plan.pstate; p <= deepest; ++p) {
    const double delta =
        dynamic_ref * std::pow(pstates.ratio(p), model.alpha());
    if (delta <= headroom) {
      if (p != plan.pstate && !plan.dry_run) ++degraded_;
      plan.pstate = p;
      return true;
    }
  }
  if (!plan.dry_run) ++vetoed_;
  return false;
}

}  // namespace epajsrm::epa
