#include "svc/admission.hpp"

namespace epajsrm::svc {

const char* to_string(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kQueueFull:
      return "queue_full";
    case AdmissionOutcome::kTenantQuota:
      return "tenant_quota";
  }
  return "?";
}

AdmissionOutcome AdmissionController::try_admit(const std::string& tenant) {
  if (inflight_total_ >= config_.max_queue) {
    return AdmissionOutcome::kQueueFull;
  }
  const auto [it, inserted] = inflight_.try_emplace(tenant, 0);
  if (it->second >= config_.max_inflight_per_tenant) {
    // Don't let a rejected first request leave a zero entry behind: the
    // map doubles as the active-tenant inventory in stats.
    if (inserted) inflight_.erase(it);
    return AdmissionOutcome::kTenantQuota;
  }
  ++it->second;
  ++inflight_total_;
  return AdmissionOutcome::kAdmitted;
}

void AdmissionController::release(const std::string& tenant) {
  const auto it = inflight_.find(tenant);
  if (it == inflight_.end() || it->second == 0) return;
  --it->second;
  --inflight_total_;
  if (it->second == 0) inflight_.erase(it);
}

std::size_t AdmissionController::inflight(const std::string& tenant) const {
  const auto it = inflight_.find(tenant);
  return it == inflight_.end() ? 0 : it->second;
}

}  // namespace epajsrm::svc
