// Include-graph builder over a source tree.
//
// Scans every C++ file under the root for `#include` directives and
// resolves the ones that name project files. Resolution tries, in
// order: root-relative (the project's canonical spelling), then
// relative to the including file's directory; `<...>` includes resolve
// root-relative only (anything else is an external header and is
// ignored). The graph feeds the layer-conformance check, file-level
// cycle detection, and the cross-TU member-type resolution used by the
// determinism pass.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "epajsrm_analyze/finding.hpp"
#include "support/source_text.hpp"

namespace epajsrm::analyze {

struct IncludeEdge {
  std::string to;        // resolved root-relative path
  std::string spelled;   // text between the quotes/brackets
  int line = 0;          // 1-based line of the directive
  bool angled = false;   // `<...>` form
};

struct IncludeGraph {
  // Root-relative paths of every scanned file, sorted.
  std::vector<std::string> files;
  // file -> project includes, in directive order.
  std::map<std::string, std::vector<IncludeEdge>> edges;

  /// Transitive project includes of `file` (not including itself).
  std::set<std::string> reachable_from(const std::string& file) const;
};

/// True for the extensions the analyzer scans.
bool analyzable_file(const std::filesystem::path& p);

/// Collects analyzable files under `root`, sorted by relative path.
std::vector<std::string> collect_tree(const std::filesystem::path& root);

/// Loads and strips every file in `rel_paths`; keyed by relative path.
std::map<std::string, toolsupport::SourceFile> load_tree(
    const std::filesystem::path& root, const std::vector<std::string>& rel_paths);

/// Builds the include graph from already-stripped sources.
IncludeGraph build_include_graph(
    const std::map<std::string, toolsupport::SourceFile>& sources);

/// Appends one `include-cycle` finding per distinct cycle, with the full
/// chain in the message. Deterministic: files are visited in sorted
/// order and each cycle is reported once, rotated to start at its
/// lexicographically smallest member.
void find_include_cycles(const IncludeGraph& graph, Findings* findings);

/// Module (layer) of a root-relative path: the first directory
/// component, or `root_module` for files directly at the root.
std::string module_of(const std::string& rel_path,
                      const std::string& root_module);

}  // namespace epajsrm::analyze
