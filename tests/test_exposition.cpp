#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/series.hpp"
#include "sim/time.hpp"

namespace epajsrm::obs {
namespace {

// --- a minimal JSON well-formedness checker ----------------------------------
// Recursive descent over the grammar (objects, arrays, strings, numbers,
// true/false/null). Good enough to prove the report is machine-parseable
// without dragging a JSON library into the test image.

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : text_(std::move(text)) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- a Prometheus text-format (v0.0.4) grammar checker -----------------------

bool prom_name_ok(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool prom_value_ok(const std::string& v) {
  if (v == "+Inf" || v == "-Inf" || v == "NaN") return true;
  if (v.empty()) return false;
  char* end = nullptr;
  std::strtod(v.c_str(), &end);
  return end == v.c_str() + v.size();
}

/// Validates every line as `# TYPE name kind`, `name value`, or
/// `name{le="..."} value`.
::testing::AssertionResult prom_grammar_ok(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, kind, extra;
      fields >> name >> kind;
      if (!prom_name_ok(name) ||
          (kind != "counter" && kind != "gauge" && kind != "histogram") ||
          (fields >> extra)) {
        return ::testing::AssertionFailure()
               << "bad TYPE line " << line_no << ": " << line;
      }
      continue;
    }
    std::string name = line;
    std::string rest;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.find("\"} ", brace);
      if (close == std::string::npos ||
          line.compare(brace, 5, "{le=\"") != 0 ||
          !prom_value_ok(line.substr(brace + 5, close - brace - 5))) {
        return ::testing::AssertionFailure()
               << "bad label set at line " << line_no << ": " << line;
      }
      name = line.substr(0, brace);
      rest = line.substr(close + 3);
    } else {
      if (space == std::string::npos) {
        return ::testing::AssertionFailure()
               << "no sample value at line " << line_no << ": " << line;
      }
      name = line.substr(0, space);
      rest = line.substr(space + 1);
    }
    if (!prom_name_ok(name)) {
      return ::testing::AssertionFailure()
             << "bad metric name at line " << line_no << ": " << line;
    }
    if (!prom_value_ok(rest)) {
      return ::testing::AssertionFailure()
             << "bad sample value at line " << line_no << ": " << line;
    }
  }
  return ::testing::AssertionSuccess();
}

// --- Prometheus exposition ---------------------------------------------------

TEST(Exposition, PrometheusOutputParsesUnderGrammar) {
  MetricsRegistry reg;
  reg.counter("sched.jobs_started").add(42);
  reg.gauge("power.it_watts").set(123456.5);
  reg.gauge("weird name!metric").set(1.0);  // must sanitise
  Histogram& h = reg.histogram("power.capmc_call_us");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));

  std::ostringstream out;
  write_prometheus(reg, out);
  const std::string text = out.str();

  EXPECT_TRUE(prom_grammar_ok(text));
  EXPECT_NE(text.find("# TYPE sched_jobs_started counter"),
            std::string::npos);
  EXPECT_NE(text.find("sched_jobs_started 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE weird_name_metric gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE power_capmc_call_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("power_capmc_call_us_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("power_capmc_call_us_count 100"), std::string::npos);
  EXPECT_NE(text.find("power_capmc_call_us_sum 5050"), std::string::npos);
}

TEST(Exposition, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);

  std::ostringstream out;
  write_prometheus(reg, out);

  // Walk the bucket lines: cumulative counts must be non-decreasing and
  // end at the +Inf bucket equal to the total count.
  std::istringstream in(out.str());
  std::string line;
  std::uint64_t prev = 0;
  std::uint64_t inf_count = 0;
  while (std::getline(in, line)) {
    const std::size_t brace = line.find("_bucket{le=\"");
    if (brace == std::string::npos) continue;
    const std::uint64_t cum =
        std::strtoull(line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    EXPECT_GE(cum, prev) << line;
    prev = cum;
    if (line.find("+Inf") != std::string::npos) inf_count = cum;
  }
  EXPECT_EQ(inf_count, 3u);
}

// --- run report --------------------------------------------------------------

RunReportBuilder sample_report() {
  RunReportBuilder report("baseline-2rack");
  report.add_scalar("total_kwh", 1234.5);
  report.add_scalar("mean_utilization", 0.87);

  DownsamplingSeries power(16, sim::kMinute);
  for (int i = 0; i < 500; ++i) {
    power.record(i * sim::kMinute, 1000.0 + 5.0 * (i % 13));
  }
  report.add_series("power.it_watts", power);

  MetricsRegistry reg;
  reg.counter("sched.jobs_started").add(12);
  reg.gauge("sched.pending_jobs").set(3.0);
  Histogram& h = reg.histogram("sched.wait_minutes");
  for (int i = 1; i <= 50; ++i) h.observe(static_cast<double>(i));
  report.set_metrics(reg.export_frame());

  report.set_merged(true);
  report.add_shard({"point0/rep0", 101, 5000, 3, 0});
  report.add_shard({"point0/rep1 \"quoted\"", 102, 5100, 3, 1});
  return report;
}

TEST(Exposition, RunReportJsonIsWellFormed) {
  std::ostringstream out;
  sample_report().write_json(out);
  const std::string json = out.str();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;

  EXPECT_NE(json.find("\"schema\":\"epajsrm.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"label\":\"baseline-2rack\""), std::string::npos);
  EXPECT_NE(json.find("\"total_kwh\":1234.5"), std::string::npos);
  EXPECT_NE(json.find("\"sched.jobs_started\":12"), std::string::npos);
  // Histograms carry count and exact-bound quantiles.
  EXPECT_NE(json.find("\"count\":50"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":{\"lower\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":{\"lower\":"), std::string::npos);
  // Series survive with their downsampling provenance.
  EXPECT_NE(json.find("\"power.it_watts\":{\"budget\":16"),
            std::string::npos);
  EXPECT_NE(json.find("\"total_samples\":500"), std::string::npos);
  // Merge provenance: fixed order, escaped labels.
  EXPECT_NE(json.find("\"order\":\"fixed-shard-index\""), std::string::npos);
  EXPECT_NE(json.find("\"merged\":true"), std::string::npos);
  EXPECT_NE(json.find("point0/rep1 \\\"quoted\\\""), std::string::npos);
}

TEST(Exposition, RunReportJsonEscapesControlCharacters) {
  RunReportBuilder report("tab\there\nnewline");
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\\u0009"), std::string::npos);
  EXPECT_NE(json.find("\\u000a"), std::string::npos);
}

TEST(Exposition, RunReportHtmlIsSelfContainedAndEscaped) {
  RunReportBuilder report("a<b & \"c\"");
  report.add_scalar("total_kwh", 10.0);
  DownsamplingSeries s(8, sim::kSecond);
  s.record(0, 5.0);
  report.add_series("power", s);
  report.add_shard({"shard<0>", 1, 2, 3, 0});

  std::ostringstream out;
  report.write_html(out);
  const std::string html = out.str();
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_NE(html.find("shard&lt;0&gt;"), std::string::npos);
  EXPECT_EQ(html.find("shard<0>"), std::string::npos);
  // Self-contained: no external scripts, stylesheets or images.
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find("href="), std::string::npos);
}

TEST(Exposition, EmptyReportStillValidates) {
  RunReportBuilder report("empty");
  std::ostringstream json_out, html_out;
  report.write_json(json_out);
  report.write_html(html_out);
  JsonChecker checker(json_out.str());
  EXPECT_TRUE(checker.valid()) << json_out.str();
  EXPECT_NE(html_out.str().find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm::obs
