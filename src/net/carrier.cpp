#include "net/carrier.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace epajsrm::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw CarrierError(what + ": " + std::strerror(errno));
}

/// Full write with EINTR retry.
void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

// --- LineChannel ------------------------------------------------------------

LineChannel::LineChannel(int fd) : fd_(fd) {}

LineChannel::~LineChannel() { close(); }

LineChannel::LineChannel(LineChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      inbox_(std::move(other.inbox_)),
      consumed_(std::exchange(other.consumed_, 0)),
      eof_(std::exchange(other.eof_, false)) {}

LineChannel& LineChannel::operator=(LineChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    inbox_ = std::move(other.inbox_);
    consumed_ = std::exchange(other.consumed_, 0);
    eof_ = std::exchange(other.eof_, false);
  }
  return *this;
}

void LineChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void LineChannel::fill_buffer() {
  if (consumed_ > 0) {
    inbox_.erase(0, consumed_);
    consumed_ = 0;
  }
  char chunk[4096];
  const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
  if (n < 0) {
    if (errno == EINTR) return;
    fail_errno("read");
  }
  if (n == 0) {
    eof_ = true;
    return;
  }
  inbox_.append(chunk, static_cast<std::size_t>(n));
}

bool LineChannel::read_line(std::string& line) {
  if (fd_ < 0) throw CarrierError("read on a closed channel");
  while (true) {
    const std::size_t nl = inbox_.find('\n', consumed_);
    if (nl != std::string::npos) {
      line.assign(inbox_, consumed_, nl - consumed_);
      consumed_ = nl + 1;
      return true;
    }
    if (eof_) {
      if (consumed_ < inbox_.size()) {
        throw CarrierError("stream ended mid-line");
      }
      return false;
    }
    fill_buffer();
  }
}

void LineChannel::write_line(std::string_view line) {
  if (fd_ < 0) throw CarrierError("write on a closed channel");
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed += '\n';
  write_all(fd_, framed.data(), framed.size());
}

void LineChannel::write_batch(const std::vector<std::string>& lines) {
  if (fd_ < 0) throw CarrierError("write on a closed channel");
  std::size_t total = 1;
  for (const std::string& line : lines) total += line.size() + 1;
  std::string framed;
  framed.reserve(total);
  for (const std::string& line : lines) {
    framed.append(line);
    framed += '\n';
  }
  framed += '\n';  // the empty terminator line
  write_all(fd_, framed.data(), framed.size());
}

std::optional<std::vector<std::string>> LineChannel::read_batch() {
  std::vector<std::string> lines;
  std::string line;
  while (true) {
    if (!read_line(line)) {
      if (lines.empty()) return std::nullopt;  // orderly EOF between batches
      throw CarrierError("stream ended mid-batch");
    }
    if (line.empty()) return lines;  // terminator
    lines.push_back(line);
  }
}

// --- Listener ---------------------------------------------------------------

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1)),
      port_(std::exchange(other.port_, 0)),
      describe_(std::move(other.describe_)),
      unlink_path_(std::move(other.unlink_path_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
    port_ = std::exchange(other.port_, 0);
    describe_ = std::move(other.describe_);
    unlink_path_ = std::move(other.unlink_path_);
  }
  return *this;
}

void Listener::close() {
  // exchange() elects exactly one closer when stop() is reached from two
  // threads at once (e.g. a shutdown op racing the owner's destructor).
  const int fd = fd_.exchange(-1);
  if (fd < 0) return;
  // shutdown() unblocks a concurrent accept() before the close.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

Listener Listener::tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    fail_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    fail_errno("getsockname");
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  listener.describe_ = "tcp:127.0.0.1:" + std::to_string(listener.port_);
  return listener;
}

Listener Listener::unix_path(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw CarrierError("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  ::unlink(path.c_str());  // stale socket file from a crashed daemon
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    fail_errno("bind " + path);
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    fail_errno("listen");
  }
  Listener listener;
  listener.fd_ = fd;
  listener.describe_ = "unix:" + path;
  listener.unlink_path_ = path;
  return listener;
}

std::optional<LineChannel> Listener::accept() {
  while (true) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return std::nullopt;  // already closed
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      // Multi-line responses go out as several small writes; without
      // NODELAY, Nagle holds the tail until the peer's delayed ACK
      // (~40ms per response). Fails harmlessly on unix-domain sockets.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return LineChannel(fd);
    }
    if (errno == EINTR) continue;
    // EBADF / EINVAL: close() raced us — the orderly shutdown path.
    return std::nullopt;
  }
}

// --- connect ----------------------------------------------------------------

LineChannel connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    fail_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  return LineChannel(fd);
}

LineChannel connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw CarrierError("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    fail_errno("connect " + path);
  }
  return LineChannel(fd);
}

LineChannel connect_endpoint(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5));
  }
  std::string port_text = endpoint;
  if (endpoint.rfind("tcp:", 0) == 0) port_text = endpoint.substr(4);
  const std::size_t colon = port_text.rfind(':');
  if (colon != std::string::npos) port_text = port_text.substr(colon + 1);
  int port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      throw CarrierError("bad endpoint '" + endpoint +
                         "' (want PORT, tcp:PORT or unix:PATH)");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) throw CarrierError("port out of range: " + endpoint);
  }
  if (port_text.empty() || port == 0) {
    throw CarrierError("bad endpoint '" + endpoint +
                       "' (want PORT, tcp:PORT or unix:PATH)");
  }
  return connect_tcp(static_cast<std::uint16_t>(port));
}

Listener listen_endpoint(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return Listener::unix_path(endpoint.substr(5));
  }
  std::string port_text = endpoint;
  if (endpoint.rfind("tcp:", 0) == 0) port_text = endpoint.substr(4);
  if (port_text.empty()) {
    throw CarrierError("bad listen endpoint '" + endpoint +
                       "' (want PORT, tcp:PORT or unix:PATH)");
  }
  int port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      throw CarrierError("bad listen endpoint '" + endpoint +
                         "' (want PORT, tcp:PORT or unix:PATH)");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      throw CarrierError("port out of range: " + endpoint);
    }
  }
  return Listener::tcp(static_cast<std::uint16_t>(port));
}

}  // namespace epajsrm::net
