// EpaJsrmSolution: the integrated EPA JSRM stack of Figure 1.
//
// One object wires together the cluster, the power and thermal models, the
// telemetry substrate, the scheduler, the resource manager and the EPA
// policy chain, and drives jobs through their lifecycle on the simulator.
// It implements both:
//   * sched::SchedulingContext — what the scheduling policy sees, and
//   * epa::PolicyHost          — what EPA policies act through.
//
// Every power-relevant mutation funnels through this class so the energy
// integrals stay exact and running jobs' progress is re-planned whenever
// their nodes' effective frequency changes.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/partition_domain.hpp"
#include "epa/policy.hpp"
#include "metrics/collector.hpp"
#include "obs/observability.hpp"
#include "platform/cluster.hpp"
#include "power/capmc.hpp"
#include "power/energy_source.hpp"
#include "power/ledger.hpp"
#include "power/node_power_model.hpp"
#include "power/thermal.hpp"
#include "predict/predictor.hpp"
#include "rm/resource_manager.hpp"
#include "sched/backfill.hpp"
#include "sched/fairshare.hpp"
#include "sched/scheduler.hpp"
#include "sim/logger.hpp"
#include "sim/simulation.hpp"
#include "telemetry/energy_accounting.hpp"
#include "telemetry/monitor.hpp"
#include "workload/job.hpp"

namespace epajsrm::core {

/// Graceful-degradation tunables (resilience plane, DESIGN.md §9).
struct ResilienceConfig {
  /// Requeue jobs whose nodes crash (false = the jobs are simply lost).
  bool requeue_on_crash = true;
  /// Application checkpoint interval; work since the last checkpoint is
  /// lost on a crash. 0 = no checkpointing (requeues restart from zero).
  sim::SimTime checkpoint_interval = 0;
  /// Extra runtime a restarted job pays to reload its checkpoint.
  sim::SimTime restart_overhead = 2 * sim::kMinute;
  /// Flap detection: `flap_threshold` crashes within `flap_window`
  /// quarantine the node for `quarantine_duration` (threshold 0 disables).
  std::uint32_t flap_threshold = 3;
  sim::SimTime flap_window = 1 * sim::kHour;
  sim::SimTime quarantine_duration = 8 * sim::kHour;
  /// Stale-telemetry safety margin applied to last-known-good power (see
  /// telemetry::MonitoringService::measured_it_watts).
  double telemetry_safety_margin = 1.05;
};

/// Tunables of the integrated stack.
struct SolutionConfig {
  /// Monitoring/control-loop period (telemetry sampling, policy ticks,
  /// thermal stepping).
  sim::SimTime control_period = 10 * sim::kSecond;
  /// Periodic scheduling pass (jobs also trigger passes on arrival and
  /// completion).
  sim::SimTime reschedule_period = 30 * sim::kSecond;
  /// Kill jobs at their walltime limit (production behaviour).
  bool enforce_walltime = true;
  /// Frequency exponent of the power model.
  double power_alpha = 2.4;
  /// Cap translation mode (RAPL continuous vs CAPMC discrete).
  power::CapMode cap_mode = power::CapMode::kContinuous;
  /// Fair-share priority weight (0 disables fair-share ordering).
  double fairshare_weight = 2.0;
  /// Step thermal state on control ticks.
  bool enable_thermal = true;
  /// Electricity tariff for cost accounting (facility energy).
  std::optional<power::Tariff> tariff;
  /// Observability plane (trace ring, metrics registry, loop profiler).
  /// Disabled by default: with obs.enabled false the stack allocates
  /// nothing and instrumented code paths reduce to one null check.
  obs::ObsConfig obs;
  /// Behaviour under injected faults (node crashes, PDU trips, degraded
  /// telemetry). Defaults are production-flavoured: requeue on crash, no
  /// checkpointing, quarantine flappers.
  ResilienceConfig resilience;
  /// Record every sched::DecisionPoint the run emits (decision_log()).
  /// The log is the replay/audit artifact of the explicit decision-point
  /// enumeration; off by default to keep long runs lean.
  bool record_decision_log = false;
};

/// Result of a completed run.
struct RunResult {
  metrics::RunReport report;
  double total_it_kwh_exact = 0.0;  ///< from the event-exact accountant
  double overhead_kwh = 0.0;        ///< idle/boot/untracked energy
  std::uint64_t node_boots = 0;
  std::uint64_t node_shutdowns = 0;
  std::uint64_t scheduling_passes = 0;
  /// Simulator callbacks dispatched over the run (events/sec numerator).
  std::uint64_t sim_events = 0;
  std::vector<telemetry::JobEnergyReport> job_reports;
  /// kill reason -> count (emergency responses, walltime, ...).
  std::unordered_map<std::string, std::uint64_t> kills_by_reason;
  // --- resilience metrics (zero in fault-free runs) -----------------------
  std::uint64_t node_crashes = 0;
  std::uint64_t pdu_trips = 0;
  std::uint64_t jobs_requeued_on_fault = 0;
  std::uint64_t jobs_lost_on_fault = 0;
  std::uint64_t node_quarantines = 0;
  std::uint64_t capmc_retries = 0;
  std::uint64_t capmc_failed_calls = 0;
  std::uint64_t telemetry_dropped_samples = 0;
};

/// The integrated EPA JSRM solution.
class EpaJsrmSolution final : public sched::SchedulingContext,
                              public epa::PolicyHost {
 public:
  EpaJsrmSolution(sim::Simulation& sim, platform::Cluster& cluster,
                  SolutionConfig config = {});
  ~EpaJsrmSolution() override;

  EpaJsrmSolution(const EpaJsrmSolution&) = delete;
  EpaJsrmSolution& operator=(const EpaJsrmSolution&) = delete;

  // --- configuration (before start()) --------------------------------------

  /// Replaces the scheduling policy (default: EASY backfilling).
  void set_scheduler(std::unique_ptr<sched::SchedulerPolicy> scheduler);

  /// Replaces the allocator (default: first-fit).
  void set_allocator(std::unique_ptr<rm::Allocator> allocator);

  /// Installs an EPA policy at the end of the chain.
  void add_policy(std::unique_ptr<epa::EpaPolicy> policy);

  /// Replaces the power predictor (default: tag history with the model
  /// peak as prior).
  void set_power_predictor(std::unique_ptr<predict::PowerPredictor> p);

  /// Installs a runtime predictor used for planning (default: the user
  /// walltime estimate).
  void set_runtime_predictor(std::unique_ptr<predict::RuntimePredictor> p);

  /// Installs an electricity supply portfolio (sources + DR calendar).
  void set_supply(power::SupplyPortfolio portfolio) {
    supply_ = std::move(portfolio);
  }

  // --- workload -------------------------------------------------------------

  /// Schedules the job's arrival at spec.submit_time.
  void submit(workload::JobSpec spec);
  void submit_all(std::vector<workload::JobSpec> specs);

  // --- execution -------------------------------------------------------------

  /// Starts the control/monitoring loops. Must be called once before
  /// Simulation::run*.
  void start();

  /// Convenience: start() if needed, then run the simulation until `until`
  /// or until the workload drains, whichever comes first.
  void run_until(sim::SimTime until);

  /// Stops the periodic loops and produces the final result.
  RunResult finalize();

  // --- inspection -------------------------------------------------------------

  workload::Job* find_job(workload::JobId id);
  const std::vector<workload::Job*>& finished_jobs() const {
    return finished_;
  }
  const telemetry::EnergyAccountant& accountant() const {
    return *accountant_;
  }
  metrics::MetricsCollector& metrics_collector() { return *metrics_; }
  sim::Logger& logger() { return logger_; }
  /// The observability plane, or null when SolutionConfig.obs is disabled.
  obs::Observability* observability() override { return obs_.get(); }
  obs::Observability* observability() const override { return obs_.get(); }
  const power::CapmcController& capmc() const { return capmc_; }
  /// Mutable access for resilience wiring (retry policy, transport).
  power::CapmcController& capmc() { return capmc_; }
  /// Mutable ledger access for producers outside the power-model funnel
  /// (the fault injector posts injected thermal excursions here).
  power::PowerLedger& ledger() { return ledger_; }
  /// The thermal model the control loop steps (the partition domain runs
  /// the identical model over per-partition node ranges).
  const power::ThermalModel& thermal() const { return thermal_; }

  // --- partitioned execution (DESIGN.md §15) --------------------------------

  /// Attaches the lax-sync partition domain. Must be called before
  /// start(); the domain must outlive the solution's run. With a domain
  /// attached, control ticks delegate the partition-local phase (thermal
  /// stepping + core census) to it instead of sweeping the cluster
  /// inline, and read the folded census for utilization — bit-identical
  /// results, O(N/P) wall time per tick. Null detaches.
  void attach_partition_domain(PartitionDomain* domain);
  PartitionDomain* partition_domain() { return domain_; }

  /// True while the attached domain's partition-local phase is running on
  /// worker threads. Every cross-partition actuation funnel (caps, trips,
  /// scheduling passes, decision points) requires this to be false:
  /// cross-partition events are pinned to coupling-epoch boundaries.
  /// Overrides both sched::SchedulingContext and epa::PolicyHost.
  bool in_partition_local_phase() const override {
    return domain_ != nullptr && domain_->in_local_phase();
  }
  /// Installed EPA policies, in consultation order (read-only inspection;
  /// the invariant auditor cross-checks their reported budgets).
  const std::vector<std::unique_ptr<epa::EpaPolicy>>& policies() const {
    return policies_;
  }
  const sched::FairShareTracker& fairshare() const { return fairshare_; }
  predict::PowerPredictor& power_predictor() { return *power_predictor_; }
  /// Every decision point emitted so far, in emission (= seq) order.
  /// Empty unless SolutionConfig::record_decision_log is set.
  const std::vector<sched::DecisionPoint>& decision_log() const {
    return decision_log_;
  }

  bool workload_drained() const {
    return pending_.empty() && running_.empty() && arrivals_outstanding_ == 0;
  }

  // --- fault handling (resilience plane, DESIGN.md §9) ----------------------

  /// Crashes a node: its jobs are requeued (with the checkpoint/restart
  /// model) or lost per ResilienceConfig, the node goes hard Off, and the
  /// flap detector may quarantine it. Only nodes in a cap-governed state
  /// (Idle/Busy/Draining) can crash; mid-transition or already-down nodes
  /// return false and nothing changes.
  bool fail_node(platform::NodeId node, const std::string& reason);

  /// Boots a crashed (Off) node back up through the ordinary lifecycle
  /// (boot latency applies). Returns false unless the node is Off.
  bool restore_node(platform::NodeId node);

  /// Trips a PDU breaker: every live node on it crashes (jobs drain per
  /// fail_node). Returns the number of nodes taken down.
  std::uint32_t trip_pdu(platform::PduId pdu, const std::string& reason);

  /// Restores every Off node on a PDU; returns the number booting.
  std::uint32_t restore_pdu(platform::PduId pdu);

  /// Consumes the crash mark for `node`: true exactly once after each
  /// injected crash. The invariant auditor uses this to excuse the
  /// fault-induced lifecycle edge without masking genuine bugs.
  bool take_crash_mark(platform::NodeId node);

  std::uint64_t node_crashes() const { return node_crashes_; }
  std::uint64_t pdu_trips() const { return pdu_trips_; }
  std::uint64_t jobs_requeued_on_fault() const {
    return jobs_requeued_on_fault_;
  }
  std::uint64_t jobs_lost_on_fault() const { return jobs_lost_on_fault_; }

  // --- sched::SchedulingContext ---------------------------------------------

  sim::SimTime now() const override;
  const std::vector<workload::Job*>& pending() const override {
    return pending_;
  }
  const std::vector<workload::Job*>& running() const override {
    return running_;
  }
  const platform::Cluster& cluster() const override { return *cluster_; }
  std::uint32_t allocatable_nodes() const override;
  bool power_feasible(workload::Job& job, std::uint32_t nodes) override;
  bool try_start(workload::Job& job,
                 const workload::MoldableConfig* shape) override;
  sim::SimTime planned_end(const workload::Job& job) const override;
  sim::SimTime earliest_admission(const workload::Job& job) const override;
  bool apply_power_cap(double watts) override;
  workload::JobId requeue(workload::JobId job) override;

  // --- epa::PolicyHost --------------------------------------------------------

  sim::Simulation& simulation() override { return *sim_; }
  platform::Cluster& cluster() override { return *cluster_; }
  rm::ResourceManager& resource_manager() override { return *rm_; }
  const power::NodePowerModel& power_model() const override { return model_; }
  const power::PowerLedger& ledger() const override { return ledger_; }
  telemetry::MonitoringService& monitor() override { return *monitor_; }
  power::SupplyPortfolio* supply() override {
    return supply_ ? &*supply_ : nullptr;
  }
  const std::vector<workload::Job*>& running_jobs() const override {
    return running_;
  }
  const std::vector<workload::Job*>& pending_jobs() const override {
    return pending_;
  }
  double predict_node_watts(const workload::JobSpec& spec) override;
  double worst_case_it_watts() const override {
    return capmc_.worst_case_watts();
  }
  void set_node_cap(platform::NodeId node, double watts) override;
  void set_group_cap(std::span<const platform::NodeId> nodes,
                     double watts) override;
  void set_system_cap(double watts) override;
  void set_node_pstate(platform::NodeId node, std::uint32_t pstate) override;
  void set_job_pstate(workload::JobId job, std::uint32_t pstate) override;
  bool power_off_node(platform::NodeId node) override;
  bool power_on_node(platform::NodeId node) override;
  void kill_job(workload::JobId job, const std::string& reason) override;
  workload::JobId requeue_job(workload::JobId job,
                              const std::string& reason) override;
  void request_schedule() override;
  void notify_power_budget_changed(double watts) override;

 private:
  /// Ids for internally created jobs (requeues) live in a high range that
  /// cannot collide with workload-assigned ids.
  workload::JobId next_synthetic_id() { return next_synthetic_++; }

  void on_arrival(workload::JobId id);
  /// The single funnel every decision point flows through: stamps time and
  /// sequence, records to the decision log, delivers to the scheduler, and
  /// requests a (coalesced) pass when the scheduler wants one for `kind`.
  void emit_decision_point(sched::DecisionPoint::Kind kind,
                           workload::JobId job = platform::kNoJob,
                           double budget_watts = 0.0,
                           double energy_joules = 0.0);
  void schedule_pass();
  void sort_pending();
  void schedule_completion(workload::Job& job);
  void finish_job(workload::Job& job, workload::JobState final_state,
                  const std::string& kill_reason = "");
  /// Re-plans progress of every running job touching `nodes` (empty span =
  /// all running jobs).
  void refresh_jobs_on_nodes(std::span<const platform::NodeId> nodes);
  void refresh_job(workload::Job& job);
  double min_freq_ratio(const workload::Job& job) const;
  void control_tick();
  double tightest_budget(sim::SimTime t) const;
  void checkpoint_energy();
  bool run_plan(epa::StartPlan& plan);
  /// Requeues a job killed by a crash, crediting checkpointed progress and
  /// charging the restart overhead on the clone's hidden runtime.
  void requeue_after_crash(workload::Job& job, const std::string& reason);

  sim::Simulation* sim_;
  platform::Cluster* cluster_;
  SolutionConfig config_;
  sim::Logger logger_;
  // Declared before the instrumented components so it outlives their
  // cached instrument pointers.
  std::unique_ptr<obs::Observability> obs_;

  power::NodePowerModel model_;
  power::CapmcController capmc_;
  power::ThermalModel thermal_;
  power::PowerLedger ledger_;
  /// Lax-sync partition domain; null (the default) = classic inline
  /// control ticks. Not owned — the scenario wires it (DESIGN.md §15).
  PartitionDomain* domain_ = nullptr;
  std::unique_ptr<rm::ResourceManager> rm_;
  std::unique_ptr<telemetry::MonitoringService> monitor_;
  std::unique_ptr<telemetry::EnergyAccountant> accountant_;
  std::unique_ptr<metrics::MetricsCollector> metrics_;
  sched::FairShareTracker fairshare_;

  std::unique_ptr<sched::SchedulerPolicy> scheduler_;
  std::vector<std::unique_ptr<epa::EpaPolicy>> policies_;
  std::unique_ptr<predict::PowerPredictor> power_predictor_;
  std::unique_ptr<predict::RuntimePredictor> runtime_predictor_;
  std::optional<power::SupplyPortfolio> supply_;

  std::unordered_map<workload::JobId, std::unique_ptr<workload::Job>> jobs_;
  std::vector<workload::Job*> pending_;
  std::vector<workload::Job*> running_;
  std::vector<workload::Job*> finished_;
  std::uint64_t arrivals_outstanding_ = 0;

  bool started_ = false;
  bool stopping_ = false;
  bool pass_requested_ = false;
  bool in_pass_ = false;
  std::uint64_t passes_ = 0;
  std::uint64_t decision_seq_ = 0;
  /// Last budget a kPowerBudgetChanged was emitted for (-1 = none yet);
  /// the dedup that keeps cap-change -> pass -> same-cap loops finite.
  double last_emitted_budget_watts_ = -1.0;
  std::vector<sched::DecisionPoint> decision_log_;
  workload::JobId next_synthetic_ = workload::JobId{1} << 62;
  std::unordered_map<std::string, std::uint64_t> kills_by_reason_;
  std::vector<telemetry::JobEnergyReport> job_reports_;

  // --- resilience state ----------------------------------------------------
  std::uint64_t node_crashes_ = 0;
  std::uint64_t pdu_trips_ = 0;
  std::uint64_t jobs_requeued_on_fault_ = 0;
  std::uint64_t jobs_lost_on_fault_ = 0;
  /// Nodes with an unconsumed injected-crash mark (see take_crash_mark).
  std::unordered_map<platform::NodeId, std::uint32_t> crash_marks_;

  // Registry handles (null when observability is off; resolved once in the
  // constructor so hot paths never do name lookups).
  obs::Counter* jobs_started_counter_ = nullptr;
  obs::Counter* cap_actuations_counter_ = nullptr;
  obs::Counter* pstate_changes_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  // Wall-clock latency instruments; only resolved when wall_instruments is
  // on, so metric frames stay pure functions of the simulated run without
  // them (the ensemble's bit-identical merge relies on that).
  obs::Histogram* dispatch_ns_hist_ = nullptr;
  obs::Histogram* pass_us_hist_ = nullptr;
};

}  // namespace epajsrm::core
