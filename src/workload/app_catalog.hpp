// Catalog of application archetypes.
//
// The survey repeatedly distinguishes applications by how they use the
// machine: power-hungry vs. light (KAUST Q-analysis), compute- vs.
// memory-bound (DVFS sensitivity, Freeh [21]), communication-heavy
// (topology-aware placement, Q6). The catalog gives the workload generator
// a realistic palette of such archetypes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace epajsrm::workload {

/// One application archetype: a tag plus behaviour ranges.
struct AppArchetype {
  std::string tag;
  AppProfile profile;
  /// Relative popularity in the generated mix.
  double weight = 1.0;
  /// Runtime distribution (lognormal over the archetype's scale).
  sim::SimTime median_runtime = 30 * sim::kMinute;
  double runtime_sigma = 0.8;  ///< lognormal sigma of runtime spread
  /// Typical node-count range (log-uniform between min and max).
  std::uint32_t min_nodes = 1;
  std::uint32_t max_nodes = 64;
};

/// A named set of archetypes.
class AppCatalog {
 public:
  /// The default mix: eight archetypes spanning the compute/memory/comm and
  /// power-intensity space (see .cpp for the table).
  static AppCatalog standard();

  /// A catalog dominated by full-machine capability runs (Q3d: capability
  /// centers such as Trinity or RIKEN).
  static AppCatalog capability(std::uint32_t machine_nodes);

  /// A catalog of many small/medium jobs (capacity centers).
  static AppCatalog capacity(std::uint32_t machine_nodes);

  void add(AppArchetype a) { archetypes_.push_back(std::move(a)); }
  const std::vector<AppArchetype>& archetypes() const { return archetypes_; }
  bool empty() const { return archetypes_.empty(); }

  /// Weighted random pick.
  const AppArchetype& sample(sim::Rng& rng) const;

  /// Lookup by tag; nullopt when absent.
  std::optional<AppArchetype> find(const std::string& tag) const;

 private:
  std::vector<AppArchetype> archetypes_;
};

}  // namespace epajsrm::workload
