#include "power/node_power_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "power/ledger.hpp"

namespace epajsrm::power {

NodePowerModel::NodePowerModel(const platform::PstateTable& pstates,
                               double alpha, CapMode cap_mode)
    : pstates_(pstates), alpha_(alpha), cap_mode_(cap_mode) {
  if (alpha <= 0.0) throw std::invalid_argument("alpha must be positive");
}

double NodePowerModel::watts_at(const platform::NodeConfig& cfg,
                                double freq_ratio, double utilization) const {
  utilization = std::clamp(utilization, 0.0, 1.0);
  freq_ratio = std::clamp(freq_ratio, 0.0, 1.0);
  return cfg.idle_watts + utilization * cfg.dynamic_watts * cfg.variability *
                              std::pow(freq_ratio, alpha_);
}

double NodePowerModel::freq_ratio_for_cap(const platform::NodeConfig& cfg,
                                          double cap_watts,
                                          double utilization) const {
  utilization = std::clamp(utilization, 0.0, 1.0);
  // Infeasibility must be judged before the no-dynamic-draw shortcut: a
  // cap below the idle floor cannot be met at ANY frequency, idle or not.
  const double budget = cap_watts - cfg.idle_watts;
  if (budget <= 0.0) return 0.0;  // cap below idle floor: infeasible
  const double dyn = utilization * cfg.dynamic_watts * cfg.variability;
  if (dyn <= 0.0) return 1.0;  // no dynamic draw: any frequency fits
  return std::min(1.0, std::pow(budget / dyn, 1.0 / alpha_));
}

OperatingPoint NodePowerModel::resolve(const platform::Node& node) const {
  using platform::NodeState;
  const platform::NodeConfig& cfg = node.config();
  OperatingPoint op;

  switch (node.state()) {
    case NodeState::kOff:
      op.watts = cfg.off_watts;
      op.uncapped_watts = cfg.off_watts;
      op.freq_ratio = 0.0;
      return op;
    case NodeState::kBooting:
    case NodeState::kShuttingDown:
      op.watts = cfg.boot_watts;
      op.uncapped_watts = cfg.boot_watts;
      op.freq_ratio = 0.0;
      return op;
    case NodeState::kSleeping:
      op.watts = cfg.sleep_watts;
      op.uncapped_watts = cfg.sleep_watts;
      op.freq_ratio = 0.0;
      return op;
    case NodeState::kIdle:
    case NodeState::kBusy:
    case NodeState::kDraining:
      break;
  }

  const double pstate_ratio = pstates_.ratio(
      std::min<std::uint32_t>(node.pstate(), pstates_.deepest()));
  const double util = node.utilization();
  double freq = pstate_ratio;
  const double uncapped = watts_at(cfg, pstate_ratio, util);
  op.uncapped_watts = uncapped;

  const double cap = node.power_cap_watts();
  if (cap > 0.0 && uncapped > cap) {
    op.cap_binding = true;
    double clamped = freq_ratio_for_cap(cfg, cap, util);
    if (clamped <= 0.0) {
      // Cap below the idle floor: run at the deepest state, flag violation.
      op.cap_infeasible = true;
      clamped = pstates_.ratio(pstates_.deepest());
    } else if (cap_mode_ == CapMode::kDiscrete) {
      clamped = pstates_.ratio(pstates_.state_at_or_below(clamped));
    }
    freq = std::min(freq, clamped);
    op.watts = watts_at(cfg, freq, util);
  } else {
    op.watts = uncapped;
  }

  // A node that is on but has no work still burns idle power; frequency
  // ratio stays meaningful for when work lands.
  op.freq_ratio = freq;
  return op;
}

OperatingPoint NodePowerModel::apply(platform::Node& node) const {
  const OperatingPoint op = resolve(node);
  EPAJSRM_ENSURE(op.watts >= 0.0, "modelled draw cannot be negative");
  EPAJSRM_ENSURE(op.freq_ratio >= 0.0 && op.freq_ratio <= 1.0,
                 "effective frequency ratio must lie in [0, 1]");
  // A feasible binding cap must actually be honoured by the resolved
  // draw. Caps govern only the DVFS-controllable states; transition
  // states draw fixed boot/sleep power by design.
  const bool cap_governed = node.state() == platform::NodeState::kIdle ||
                            node.state() == platform::NodeState::kBusy ||
                            node.state() == platform::NodeState::kDraining;
  EPAJSRM_ENSURE(!cap_governed || node.power_cap_watts() <= 0.0 ||
                     op.cap_infeasible ||
                     op.watts <= node.power_cap_watts() + 1e-9,
                 "resolved draw exceeds a feasible node power cap");
  node.set_current_watts(op.watts);
  node.set_effective_freq_ratio(op.freq_ratio);
  if (ledger_ != nullptr) {
    PowerLedger::NodeSample sample;
    sample.watts = op.watts;
    sample.demand_watts = op.uncapped_watts;
    sample.cap_watts = node.power_cap_watts();
    sample.state = node.state();
    sample.allocated = !node.allocations().empty();
    ledger_->post(node.id(), sample);
  }
  return op;
}

}  // namespace epajsrm::power
