// DVFS P-state table: the discrete frequency ladder every node shares.
// Part of the hardware description, hence in platform (the power model in
// src/power turns a state index into watts).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace epajsrm::platform {

/// An ordered list of processor frequencies, index 0 = fastest. The power
/// and runtime models work in frequency *ratios* relative to the nominal
/// (index 0) frequency.
class PstateTable {
 public:
  /// Builds from absolute frequencies in GHz, which must be strictly
  /// decreasing and positive.
  explicit PstateTable(std::vector<double> freqs_ghz);

  /// Evenly spaced ladder from `top_ghz` down to `bottom_ghz` in `steps`
  /// states (steps >= 1; steps == 1 gives a single fixed frequency).
  static PstateTable linear(double top_ghz, double bottom_ghz,
                            std::uint32_t steps);

  std::size_t size() const { return freqs_ghz_.size(); }

  /// Absolute frequency of state i.
  double freq_ghz(std::uint32_t i) const {
    if (i >= freqs_ghz_.size()) throw std::out_of_range("bad pstate");
    return freqs_ghz_[i];
  }

  /// f_i / f_0 in (0, 1].
  double ratio(std::uint32_t i) const {
    return freq_ghz(i) / freqs_ghz_.front();
  }

  /// Lowest-index (fastest) state whose ratio is <= `ratio`; returns the
  /// deepest state if even that is above the request. Used by capping
  /// controllers to translate a continuous clamp into a discrete state.
  std::uint32_t state_at_or_below(double ratio) const;

  /// Index of the slowest (deepest) state.
  std::uint32_t deepest() const {
    return static_cast<std::uint32_t>(freqs_ghz_.size() - 1);
  }

 private:
  std::vector<double> freqs_ghz_;
};

}  // namespace epajsrm::platform
