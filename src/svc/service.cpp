#include "svc/service.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/ensemble.hpp"
#include "core/scenario_hash.hpp"
#include "net/jsonl.hpp"
#include "obs/exposition.hpp"
#include "svc/protocol.hpp"

namespace epajsrm::svc {

const char* to_string(RequestState state) {
  switch (state) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kRunning:
      return "running";
    case RequestState::kDone:
      return "done";
    case RequestState::kCancelled:
      return "cancelled";
    case RequestState::kFailed:
      return "failed";
  }
  return "?";
}

std::string serialize_stats(const ServiceStats& stats) {
  net::LineWriter w;
  w.field("kind", "stats");
  w.field("queue_depth", static_cast<std::uint64_t>(stats.queue_depth));
  w.field("inflight", static_cast<std::uint64_t>(stats.inflight));
  w.field("tenants", static_cast<std::uint64_t>(stats.tenants));
  w.field("submitted", stats.submitted);
  w.field("completed", stats.completed);
  w.field("failed", stats.failed);
  w.field("cancelled", stats.cancelled);
  w.field("rejected_queue_full", stats.rejected_queue_full);
  w.field("rejected_tenant_quota", stats.rejected_tenant_quota);
  w.field("batches", stats.batches);
  w.field("cache_hits", stats.cache_hits);
  w.field("cache_misses", stats.cache_misses);
  w.field("cache_evictions", stats.cache_evictions);
  w.field("cache_size", static_cast<std::uint64_t>(stats.cache_size));
  w.field("cache_capacity", static_cast<std::uint64_t>(stats.cache_capacity));
  return w.finish();
}

ScenarioService::ScenarioService(ServiceConfig config, TemplateStore templates)
    : config_(config),
      templates_(std::move(templates)),
      cache_(config.cache_capacity),
      admission_(config.admission),
      obs_(obs::Observability::create_if(config.obs)) {
  batcher_ = std::thread([this] { batcher_main(); });
}

ScenarioService::~ScenarioService() { stop(); }

core::ScenarioConfig ScenarioService::normalize(core::ScenarioConfig config) {
  // Fields that cannot reach the result payload: the per-run obs plane
  // only instruments (RunResult is computed from simulation state), and
  // the decision log is an audit artifact the payload never renders.
  // Normalizing them widens cache hits without weakening soundness —
  // every field that *can* reach the payload stays in the hash.
  config.solution.obs = obs::ObsConfig{};
  config.solution.record_decision_log = false;
  return config;
}

ScenarioService::SubmitOutcome ScenarioService::submit(
    const std::string& tenant, const core::ScenarioConfig& config,
    bool want_report) {
  core::ScenarioConfig normalized = normalize(config);
  // Throws on external_transport — the one config field that is live
  // state rather than value. Validation throws on unrunnable configs.
  const std::string hash = core::scenario_hash(normalized);
  core::validate(normalized);

  std::unique_lock<std::mutex> lk(mutex_);
  ++submitted_;
  SubmitOutcome outcome;

  // want_report changes the payload shape, so reported and unreported
  // requests must not share a cache entry.
  const std::string key = want_report ? hash + ":report" : hash;
  if (const std::vector<std::string>* payload = cache_.find(key)) {
    auto entry = std::make_unique<Entry>();
    entry->id = next_id_++;
    entry->tenant = tenant;
    entry->hash = hash;
    entry->want_report = want_report;
    entry->state = RequestState::kDone;
    entry->cached = true;
    entry->payload = *payload;
    outcome.id = entry->id;
    outcome.served_from_cache = true;
    if (obs_) {
      obs_->metrics().counter("svc.requests").add(1);
      obs_->metrics().counter("svc.cache_hits").add(1);
      obs_->trace().instant("svc", "cache_hit",
                            static_cast<std::int64_t>(entry->id));
    }
    entries_.emplace(entry->id, std::move(entry));
    ++completed_;
    return outcome;
  }

  const AdmissionOutcome admitted = admission_.try_admit(tenant);
  outcome.admission = admitted;
  if (admitted != AdmissionOutcome::kAdmitted) {
    outcome.retry_after_ms = admission_.config().retry_after_ms;
    if (admitted == AdmissionOutcome::kQueueFull) {
      ++rejected_queue_full_;
    } else {
      ++rejected_tenant_quota_;
    }
    if (obs_) {
      obs_->metrics().counter("svc.requests").add(1);
      obs_->metrics()
          .counter(admitted == AdmissionOutcome::kQueueFull
                       ? "svc.rejected_queue_full"
                       : "svc.rejected_tenant_quota")
          .add(1);
    }
    return outcome;
  }

  auto entry = std::make_unique<Entry>();
  entry->id = next_id_++;
  entry->tenant = tenant;
  entry->config = std::move(normalized);
  entry->hash = hash;
  entry->want_report = want_report;
  outcome.id = entry->id;
  if (obs_) {
    obs_->metrics().counter("svc.requests").add(1);
    obs_->metrics().counter("svc.cache_misses").add(1);
    entry->span = obs_->trace().span("svc", "request");
    entry->span.attr("tenant", tenant);
    entry->span.attr("hash", hash);
    entry->span.set_job(static_cast<std::int64_t>(entry->id));
  }
  pending_.push_back(entry->id);
  if (obs_) {
    obs_->metrics().gauge("svc.queue_depth").set(
        static_cast<double>(pending_.size()));
  }
  entries_.emplace(entry->id, std::move(entry));
  batch_cv_.notify_one();
  return outcome;
}

ScenarioService::SubmitOutcome ScenarioService::submit_template(
    const std::string& tenant, const std::string& template_name,
    const TemplateOverrides& overrides, bool want_report) {
  return submit(tenant, templates_.instantiate(template_name, overrides),
                want_report);
}

RequestStatus ScenarioService::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lk(mutex_);
  RequestStatus out;
  out.id = id;
  const auto it = entries_.find(id);
  if (it == entries_.end()) return out;
  const Entry& entry = *it->second;
  out.known = true;
  out.state = entry.state;
  out.cached = entry.cached;
  out.scenario_hash = entry.hash;
  out.error = entry.error;
  if (entry.state == RequestState::kDone) out.payload = entry.payload;
  return out;
}

RequestStatus ScenarioService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lk(mutex_);
  cv_.wait(lk, [&] {
    const auto it = entries_.find(id);
    if (it == entries_.end()) return true;  // unknown id: nothing to await
    const RequestState s = it->second->state;
    return s != RequestState::kQueued && s != RequestState::kRunning;
  });
  lk.unlock();
  return status(id);
}

bool ScenarioService::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end() || it->second->state != RequestState::kQueued) {
    return false;
  }
  for (auto qit = pending_.begin(); qit != pending_.end(); ++qit) {
    if (*qit == id) {
      pending_.erase(qit);
      break;
    }
  }
  finish_entry(*it->second, RequestState::kCancelled);
  cv_.notify_all();
  return true;
}

ServiceStats ScenarioService::stats_locked() const {
  ServiceStats s;
  s.queue_depth = pending_.size();
  s.inflight = admission_.inflight_total();
  s.tenants = admission_.tenant_count();
  s.submitted = submitted_;
  s.completed = completed_;
  s.failed = failed_;
  s.cancelled = cancelled_;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_tenant_quota = rejected_tenant_quota_;
  s.batches = batches_;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_size = cache_.size();
  s.cache_capacity = cache_.capacity();
  return s;
}

ServiceStats ScenarioService::stats() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return stats_locked();
}

std::string ScenarioService::prometheus_text() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  if (!obs_) return {};
  std::ostringstream out;
  obs::write_prometheus(obs_->metrics(), out);
  return out.str();
}

void ScenarioService::finish_entry(Entry& entry, RequestState state) {
  entry.state = state;
  admission_.release(entry.tenant);
  switch (state) {
    case RequestState::kDone:
      ++completed_;
      break;
    case RequestState::kFailed:
      ++failed_;
      break;
    case RequestState::kCancelled:
      ++cancelled_;
      break;
    case RequestState::kQueued:
    case RequestState::kRunning:
      break;
  }
  if (obs_) {
    obs_->metrics()
        .counter(std::string("svc.finished_") + to_string(state))
        .add(1);
    if (entry.span.active()) {
      entry.span.attr("state", std::string(to_string(state)));
      entry.span.finish();
    }
  }
}

std::vector<std::string> ScenarioService::render_payload(
    const Entry& entry, const core::RunResult& result) const {
  std::vector<std::string> payload;
  payload.push_back(
      serialize_result(entry.hash, entry.config.seed, result));
  if (entry.want_report) {
    std::vector<std::string> report = serialize_report(
        entry.config.label, entry.hash, entry.config.seed, result);
    payload.insert(payload.end(), std::make_move_iterator(report.begin()),
                   std::make_move_iterator(report.end()));
  }
  return payload;
}

void ScenarioService::run_batch(std::vector<Entry*> batch,
                                std::unique_lock<std::mutex>& lk) {
  ++batches_;
  obs::ScopedSpan span;
  if (obs_) {
    obs_->metrics().counter("svc.batches").add(1);
    obs_->metrics().histogram("svc.batch_size").observe(
        static_cast<double>(batch.size()));
    span = obs_->trace().span("svc", "batch");
    span.attr("requests", static_cast<double>(batch.size()));
  }
  for (Entry* entry : batch) entry->state = RequestState::kRunning;

  core::EnsembleConfig engine_config;
  engine_config.replications = 1;
  engine_config.base_seed = 0;
  engine_config.threads = config_.ensemble_threads;
  engine_config.seed_stream = core::SeedStream::kConfig;
  engine_config.keep_run_results = true;
  core::EnsembleEngine engine(engine_config);
  for (const Entry* entry : batch) {
    // The captured copy is the engine's whole input: under kConfig the
    // engine never stamps a seed over it, so the run is exactly the
    // hashed config.
    engine.add_point(entry->config.label,
                     [config = entry->config](std::uint64_t) {
                       return config;
                     });
  }

  lk.unlock();
  core::EnsembleResult result;
  std::string batch_error;
  try {
    result = engine.run();
  } catch (const std::exception& e) {
    batch_error = e.what();
  }
  lk.lock();

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Entry& entry = *batch[i];
    if (batch_error.empty() && i < result.run_results.size()) {
      entry.payload = render_payload(entry, result.run_results[i]);
      const std::string key =
          entry.want_report ? entry.hash + ":report" : entry.hash;
      cache_.insert(key, entry.payload);
      finish_entry(entry, RequestState::kDone);
    } else {
      entry.error = batch_error.empty() ? "missing batch result"
                                        : batch_error;
      finish_entry(entry, RequestState::kFailed);
    }
  }
  if (obs_) {
    obs_->metrics().counter("svc.scenarios_run").add(batch.size());
    span.finish();
  }
  cv_.notify_all();
}

void ScenarioService::batcher_main() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    batch_cv_.wait(lk, [&] { return stopping_ || !pending_.empty(); });
    if (stopping_) break;
    std::vector<Entry*> batch;
    while (!pending_.empty() && batch.size() < config_.max_batch) {
      const std::uint64_t id = pending_.front();
      pending_.pop_front();
      const auto it = entries_.find(id);
      if (it != entries_.end() &&
          it->second->state == RequestState::kQueued) {
        batch.push_back(it->second.get());
      }
    }
    if (obs_) {
      obs_->metrics().gauge("svc.queue_depth").set(
          static_cast<double>(pending_.size()));
    }
    if (batch.empty()) continue;
    run_batch(std::move(batch), lk);
  }
  // Drain: everything still queued fails deterministically on stop.
  for (const std::uint64_t id : pending_) {
    const auto it = entries_.find(id);
    if (it != entries_.end() && it->second->state == RequestState::kQueued) {
      it->second->error = "service stopped";
      finish_entry(*it->second, RequestState::kFailed);
    }
  }
  pending_.clear();
  cv_.notify_all();
}

void ScenarioService::stop() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) {
      // Already stopping; fall through to join below (idempotent).
    }
    stopping_ = true;
  }
  batch_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

}  // namespace epajsrm::svc
