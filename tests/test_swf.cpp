#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace epajsrm::workload {
namespace {

constexpr const char* kSample =
    "; Comment header\n"
    ";  MaxProcs: 128\n"
    "\n"
    "1 0 10 3600 64 -1 -1 64 7200 -1 1 5 1 2 1 1 -1 -1\n"
    "2 100 0 1800 32 -1 -1 32 3600 -1 1 6 1 3 1 1 -1 -1\n"
    "3 200 5 -1 16 -1 -1 16 900 -1 0 7 1 2 1 1 -1 -1\n";

TEST(Swf, ParsesDataLinesSkipsComments) {
  std::istringstream in(kSample);
  const auto records = parse_swf(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].job_number, 1);
  EXPECT_EQ(records[0].run_time, 3600);
  EXPECT_EQ(records[0].allocated_processors, 64);
  EXPECT_EQ(records[1].submit_time, 100);
  EXPECT_EQ(records[2].status, 0);
}

TEST(Swf, MalformedLineSkippedAndCounted) {
  std::istringstream in("1 2 3\n");
  SwfParseStats stats;
  const auto records = parse_swf(in, &stats);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(stats.data_lines, 1u);
  EXPECT_EQ(stats.skipped_lines, 1u);
  EXPECT_EQ(stats.first_skipped_line, 1u);
}

TEST(Swf, CorruptTraceKeepsGoodLines) {
  // A realistic corrupt fixture: truncated tail, a non-numeric edit, and a
  // blank-ish short line interleaved with two good records.
  std::istringstream in(
      "; corrupt fixture\n"
      "1 0 10 3600 64 -1 -1 64 7200 -1 1 5 1 2 1 1 -1 -1\n"
      "2 100 0 1800 32 -1 -1 32 3600\n"                       // truncated
      "3 oops 5 900 16 -1 -1 16 900 -1 0 7 1 2 1 1 -1 -1\n"   // non-numeric
      "   \t\n"
      "4 200 5 900 16 -1 -1 16 900 -1 1 7 1 2 1 1 -1 -1\n");
  SwfParseStats stats;
  const auto records = parse_swf(in, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].job_number, 1);
  EXPECT_EQ(records[1].job_number, 4);
  EXPECT_EQ(stats.data_lines, 4u);
  EXPECT_EQ(stats.skipped_lines, 2u);
  EXPECT_EQ(stats.first_skipped_line, 3u);
}

TEST(Swf, StatsPointerIsOptional) {
  std::istringstream in("garbage line\n");
  EXPECT_TRUE(parse_swf(in).empty());  // no throw, no stats needed
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(parse_swf_file("/nonexistent/trace.swf"), std::runtime_error);
}

TEST(Swf, ToJobsRoundsProcessorsToNodes) {
  std::istringstream in(kSample);
  const auto jobs = to_jobs(parse_swf(in), /*cores_per_node=*/32,
                            /*machine_nodes=*/64);
  // Record 3 has run_time -1 and is dropped.
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].nodes, 2u);  // 64 procs / 32
  EXPECT_EQ(jobs[1].nodes, 1u);
  EXPECT_EQ(jobs[0].runtime_ref, 3600 * sim::kSecond);
  EXPECT_EQ(jobs[0].walltime_estimate, 7200 * sim::kSecond);
  EXPECT_EQ(jobs[0].tag, "swf-app-2");
}

TEST(Swf, ToJobsSortsBySubmitTime) {
  std::istringstream in(
      "5 500 0 100 8 -1 -1 8 200 -1 1 1 1 1 1 1 -1 -1\n"
      "6 100 0 100 8 -1 -1 8 200 -1 1 1 1 1 1 1 -1 -1\n");
  const auto jobs = to_jobs(parse_swf(in), 8, 16);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_LE(jobs[0].submit_time, jobs[1].submit_time);
  EXPECT_EQ(jobs[0].id, 6u);
}

TEST(Swf, ToJobsRejectsZeroCoresPerNode) {
  EXPECT_THROW(to_jobs({}, 0, 16), std::invalid_argument);
}

TEST(Swf, WalltimeNeverBelowRuntime) {
  // requested_time (100 s) below run_time (200 s) must be raised.
  std::istringstream in("1 0 0 200 8 -1 -1 8 100 -1 1 1 1 1 1 1 -1 -1\n");
  const auto jobs = to_jobs(parse_swf(in), 8, 16);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_GE(jobs[0].walltime_estimate, jobs[0].runtime_ref);
}

TEST(Swf, WriterRoundTripsThroughParser) {
  JobSpec spec;
  spec.id = 7;
  spec.nodes = 2;
  spec.submit_time = 50 * sim::kSecond;
  spec.runtime_ref = 600 * sim::kSecond;
  spec.walltime_estimate = 900 * sim::kSecond;
  Job job(spec);
  job.set_allocated_nodes({0, 1});
  job.set_cores_per_node_allocated(16);
  job.begin_execution(100 * sim::kSecond, 1.0);
  job.set_end_time(700 * sim::kSecond);
  job.set_state(JobState::kCompleted);

  std::ostringstream out;
  write_swf(out, {&job}, 16);

  std::istringstream in(out.str());
  const auto records = parse_swf(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].job_number, 7);
  EXPECT_EQ(records[0].submit_time, 50);
  EXPECT_EQ(records[0].wait_time, 50);
  EXPECT_EQ(records[0].run_time, 600);
  EXPECT_EQ(records[0].allocated_processors, 32);
  EXPECT_EQ(records[0].status, 1);
}

TEST(Swf, WriterMarksUnfinishedJobs) {
  JobSpec spec;
  spec.id = 9;
  spec.nodes = 1;
  Job job(spec);
  std::ostringstream out;
  write_swf(out, {&job}, 8);
  std::istringstream in(out.str());
  const auto records = parse_swf(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].run_time, -1);
  EXPECT_EQ(records[0].status, 0);
}

}  // namespace
}  // namespace epajsrm::workload
