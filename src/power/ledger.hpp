// PowerLedger: the single incremental power/energy view of the machine —
// the "monitoring plane" box of the survey's Figure 1 as a data structure.
//
// Every component that *changes* node power (NodePowerModel::apply on
// lifecycle/P-state/cap/load changes, ThermalModel on temperature steps)
// posts a per-node delta; every component that *reads* power (telemetry,
// the Power API facade, EPA policies, the facility coordinator, the
// invariant auditor) queries O(1) cached aggregates instead of re-walking
// `cluster.nodes()`. The struct-of-arrays layout keeps per-node reads
// cache-friendly and the hierarchy (node -> rack -> PDU / cooling loop ->
// cluster) is maintained on every post.
//
// Determinism & exactness (DESIGN.md §10):
//   * Aggregates are summed in *fixed point* (integer 2^-24 W quanta), so
//     incremental maintenance is exactly associative — the ledger total is
//     bit-identical to a brute-force recompute of the same quantized
//     per-node values no matter how many posts happened in between, and
//     independent of thread count (each ensemble shard owns its ledger).
//   * Per-node values are additionally stored verbatim as doubles; the
//     ledger never rounds what a consumer reads for a single node.
//   * Epoch versioning: every accepted post bumps the ledger epoch and
//     stamps the node, so consumers can cheaply detect staleness; the
//     dirty set records which nodes changed since the last harvest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/cluster.hpp"

namespace epajsrm::obs {
class Histogram;
}  // namespace epajsrm::obs

namespace epajsrm::power {

class NodePowerModel;

/// Incremental, hierarchically aggregated power state store.
class PowerLedger {
 public:
  /// One node's power facts, posted as a unit by the power model. The
  /// per-node worst case (cap if capped, model peak otherwise) is derived
  /// by the ledger from cap_watts and the primed peak table.
  struct NodeSample {
    double watts = 0.0;        ///< modelled draw (what telemetry reads)
    double demand_watts = 0.0; ///< uncapped draw at the selected P-state
                               ///< for cap-governed states; == watts else
    double cap_watts = 0.0;    ///< active node cap; 0 = uncapped
    platform::NodeState state = platform::NodeState::kIdle;
    bool allocated = false;    ///< node has resident job allocations
  };

  /// Builds the membership tables (rack/PDU/cooling of every node) and
  /// zero aggregates. Call prime() once producers are attached.
  explicit PowerLedger(const platform::Cluster& cluster);

  /// Records the static per-node model peaks, then resolves and applies
  /// the model to every node (the model must already be attached so the
  /// applies post back here). After prime the ledger, the node sensor
  /// caches and the model agree exactly. Brute force by design — this is
  /// the one full sweep the ledger ever does on the happy path.
  void prime(platform::Cluster& cluster, const NodePowerModel& model);

  // --- delta protocol (producers) -----------------------------------------

  /// Posts one node's power facts. No-ops (no epoch bump, no dirty mark)
  /// when nothing changed; otherwise applies exact fixed-point deltas to
  /// every aggregate the node participates in.
  void post(platform::NodeId id, const NodeSample& sample);

  /// Posts one node's temperature (thermal model step or injected
  /// excursion). Maintains the cached cluster maximum.
  void post_temperature(platform::NodeId id, double celsius);

  // --- partitioned temperature epochs (DESIGN.md §15) ---------------------

  /// A per-partition window into the temperature plane. During a
  /// partition-local phase each worker writes its own contiguous node
  /// range directly (disjoint slices of the same array — race-free by
  /// construction) while folding the summary the epoch merge needs to
  /// reproduce the classic sequential sweep exactly. Writes must arrive
  /// in ascending node order within a shard (the thermal step iterates
  /// nodes in order): that makes the shard argmax "last node at the
  /// running max", the same tie-break post_temperature's `>=` update
  /// rule produces.
  class TemperatureShard {
   public:
    /// Posts `celsius` for `id` (must lie in [begin, end)) with
    /// post_temperature's exact accept/no-op semantics.
    void write(platform::NodeId id, double celsius);

    platform::NodeId begin() const { return begin_; }
    platform::NodeId end() const { return end_; }
    /// Writes accepted (non-no-op) since the last arm.
    std::uint64_t accepted() const { return accepted_; }

   private:
    friend class PowerLedger;
    TemperatureShard(PowerLedger* ledger, platform::NodeId begin,
                     platform::NodeId end)
        : ledger_(ledger), begin_(begin), end_(end) {}

    PowerLedger* ledger_;
    platform::NodeId begin_;
    platform::NodeId end_;
    // fold state, armed by begin_temperature_epoch
    std::uint64_t accepted_ = 0;
    double max_c_ = 0.0;
    platform::NodeId max_node_ = 0;
    bool has_max_ = false;
    platform::NodeId watch_node_ = 0;  ///< pre-epoch argmax, for staleness
    bool watch_changed_ = false;
  };

  /// Shard over nodes [begin, end). One epoch's shards must tile disjoint
  /// ranges in ascending order (PartitionMap guarantees this).
  TemperatureShard temperature_shard(platform::NodeId begin,
                                     platform::NodeId end);

  /// Arms `shards` for one partition-local phase: clears the fold state
  /// and points every stale-watch at the current argmax node. Call after
  /// any out-of-band post_temperature (fault excursions between epochs
  /// move the argmax) and before workers write.
  void begin_temperature_epoch(std::vector<TemperatureShard>& shards);

  /// Folds the shard summaries back in fixed partition-index order. The
  /// resulting epoch count and max-temperature cache (value, argmax,
  /// staleness) are exactly what the classic node-order sweep of the
  /// same writes would have left — the bit-determinism anchor of the
  /// partitioned core.
  void merge_temperature_shards(const std::vector<TemperatureShard>& shards);

  // --- O(1) hierarchical power aggregates ---------------------------------

  /// Sum of node draws (IT power only, watts).
  double it_power_watts() const { return from_fixed(it_q_); }
  double rack_power_watts(platform::RackId rack) const;
  double pdu_power_watts(platform::PduId pdu) const;
  double cooling_load_watts(platform::CoolingId loop) const;

  /// Guaranteed worst-case system draw: sum of caps over capped nodes
  /// plus model peaks over uncapped ones (CAPMC semantics).
  double worst_case_it_watts() const { return from_fixed(worst_q_); }

  /// Sum of per-node demand: uncapped draw for cap-governed nodes
  /// (Idle/Busy/Draining), actual fixed draw for transition states.
  double total_demand_watts() const { return from_fixed(demand_q_); }

  /// Draw of nodes outside the cap-governed states (boot/shutdown/sleep/
  /// off transients that DVFS cannot shape).
  double fixed_power_watts() const { return from_fixed(fixed_q_); }

  /// Draw of nodes with no resident job allocations (the balancer's
  /// "system overhead" floor).
  double unallocated_power_watts() const { return from_fixed(unalloc_q_); }

  /// Sum of active node caps, cluster-wide and per rack (0-capped nodes
  /// contribute nothing; pair with the capped counts for "is everything
  /// capped" questions).
  double cap_sum_watts() const { return from_fixed(cap_sum_q_); }
  double rack_cap_sum_watts(platform::RackId rack) const;

  /// Static per-PDU sum of model peak draws (admission planning).
  double pdu_peak_watts(platform::PduId pdu) const;

  std::uint32_t capped_node_count() const { return capped_count_; }
  std::uint32_t rack_capped_count(platform::RackId rack) const;
  std::uint32_t rack_node_count(platform::RackId rack) const;
  std::uint32_t count_in_state(platform::NodeState state) const {
    return state_counts_[static_cast<std::size_t>(state)];
  }

  /// Hottest node temperature (lazily recomputed only when the previous
  /// argmax node cooled down).
  double max_temperature_c() const;

  // --- per-node reads (verbatim doubles, never quantized) -----------------

  double node_watts(platform::NodeId id) const { return watts_[id]; }
  double node_demand_watts(platform::NodeId id) const { return demand_[id]; }
  double node_cap_watts(platform::NodeId id) const { return cap_[id]; }
  double node_peak_watts(platform::NodeId id) const { return peak_[id]; }
  double node_temperature_c(platform::NodeId id) const { return temp_[id]; }
  platform::NodeState node_state(platform::NodeId id) const {
    return state_[id];
  }
  bool node_allocated(platform::NodeId id) const {
    return allocated_[id] != 0;
  }
  /// True for the DVFS-controllable states (Idle/Busy/Draining).
  bool node_cap_governed(platform::NodeId id) const {
    return cap_governed(state_[id]);
  }

  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(watts_.size());
  }
  std::uint32_t rack_count() const {
    return static_cast<std::uint32_t>(rack_q_.size());
  }
  std::uint32_t pdu_count() const {
    return static_cast<std::uint32_t>(pdu_q_.size());
  }
  std::uint32_t cooling_count() const {
    return static_cast<std::uint32_t>(cooling_q_.size());
  }

  // --- epochs & dirty set -------------------------------------------------

  /// Bumped on every accepted post (power or temperature).
  std::uint64_t epoch() const { return epoch_; }

  /// Epoch of the last accepted power post for `id` (0 = never posted).
  std::uint64_t node_version(platform::NodeId id) const {
    return version_[id];
  }

  /// Nodes whose power facts changed since the last clear_dirty(), in
  /// post order (deduplicated).
  const std::vector<platform::NodeId>& dirty_nodes() const { return dirty_; }
  void clear_dirty();

  /// Total posts accepted / ignored as no-ops (instrumentation).
  std::uint64_t posts_applied() const { return posts_applied_; }
  std::uint64_t posts_ignored() const { return posts_ignored_; }

  /// Attaches a wall-clock latency histogram for post(): every `stride`-th
  /// call is timed end to end and recorded in nanoseconds. Sampling keeps
  /// the hot path hot — post() is the single most frequent mutation in the
  /// model. Null detaches; stride 0 is clamped to 1.
  void set_post_latency_histogram(obs::Histogram* hist,
                                  std::uint32_t stride = 64) {
    post_hist_ = hist;
    post_hist_stride_ = stride == 0 ? 1 : stride;
    posts_since_timed_ = 0;
  }

  // --- debug parity -------------------------------------------------------

  /// Recomputes every aggregate brute-force from the per-node arrays and
  /// compares *exactly* (integer equality — incremental fixed-point
  /// maintenance must not drift by even one quantum). Returns an empty
  /// string when consistent, else a description of the first mismatch.
  std::string audit_parity() const;

  /// Fixed-point quantum (watts) — the resolution aggregates carry.
  static double quantum_watts() { return 1.0 / kScale; }

  static bool cap_governed(platform::NodeState s) {
    return s == platform::NodeState::kIdle ||
           s == platform::NodeState::kBusy ||
           s == platform::NodeState::kDraining;
  }

 private:
  // 2^-24 W quanta: fine enough that a 4096-node sum differs from the
  // double-precision reference by < 1e-4 W, coarse enough that exawatt-
  // scale sums stay far from int64 overflow.
  static constexpr double kScale = 16777216.0;  // 2^24
  static std::int64_t to_fixed(double watts);
  static double from_fixed(std::int64_t q) {
    return static_cast<double>(q) / kScale;
  }

  void mark_dirty(platform::NodeId id);
  void recompute_max_temp() const;

  // membership (immutable after construction)
  std::vector<platform::RackId> rack_of_;
  std::vector<platform::PduId> pdu_of_;
  std::vector<platform::CoolingId> cooling_of_;

  // per-node state (struct of arrays)
  std::vector<double> watts_;
  std::vector<double> demand_;
  std::vector<double> cap_;
  std::vector<double> worst_;
  std::vector<double> peak_;
  std::vector<double> temp_;
  std::vector<platform::NodeState> state_;
  std::vector<std::uint8_t> allocated_;
  std::vector<std::uint64_t> version_;

  // fixed-point aggregates
  std::int64_t it_q_ = 0;
  std::int64_t worst_q_ = 0;
  std::int64_t demand_q_ = 0;
  std::int64_t fixed_q_ = 0;
  std::int64_t unalloc_q_ = 0;
  std::int64_t cap_sum_q_ = 0;
  std::vector<std::int64_t> rack_q_;
  std::vector<std::int64_t> pdu_q_;
  std::vector<std::int64_t> cooling_q_;
  std::vector<std::int64_t> rack_cap_q_;
  std::vector<std::int64_t> pdu_peak_q_;
  std::vector<std::uint32_t> rack_capped_;
  std::vector<std::uint32_t> rack_nodes_;
  std::uint32_t capped_count_ = 0;
  std::uint32_t state_counts_[7] = {};

  // temperature max cache (argmax-tracked, lazily recomputed)
  mutable double max_temp_ = -1e9;
  mutable platform::NodeId max_temp_node_ = 0;
  mutable bool max_temp_stale_ = false;

  // epoch / dirty tracking
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> dirty_flag_;  // epoch stamps, not bools
  std::uint64_t dirty_generation_ = 1;
  std::vector<platform::NodeId> dirty_;
  std::uint64_t posts_applied_ = 0;
  std::uint64_t posts_ignored_ = 0;
  obs::Histogram* post_hist_ = nullptr;
  std::uint32_t post_hist_stride_ = 64;
  std::uint32_t posts_since_timed_ = 0;
};

}  // namespace epajsrm::power
