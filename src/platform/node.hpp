// Compute-node model: state machine, core allocation, DVFS/P-state and
// power-cap bookkeeping. Power *computation* lives in power::NodePowerModel;
// the node carries the state that model reads plus a cache of the last
// computed draw for telemetry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "platform/ids.hpp"
#include "sim/time.hpp"

namespace epajsrm::platform {

/// Lifecycle states of a compute node.
///
/// Transitions (driven by rm::NodeLifecycle):
///   Off -> Booting -> Idle <-> Busy
///   Idle -> ShuttingDown -> Off
///   Idle -> Sleeping -> Idle        (fast low-power suspend)
///   Idle|Busy -> Draining -> Idle   (layout maintenance; no new work)
enum class NodeState {
  kOff,
  kBooting,
  kIdle,
  kBusy,
  kDraining,
  kShuttingDown,
  kSleeping,
};

/// Human-readable state name.
const char* to_string(NodeState s);

/// Static, per-node hardware description.
struct NodeConfig {
  std::uint32_t cores = 32;          ///< schedulable cores
  std::uint32_t memory_gib = 128;    ///< DRAM capacity
  double idle_watts = 90.0;          ///< draw when powered on and idle
  double dynamic_watts = 180.0;      ///< extra draw at 100 % load, f_ref
  double sleep_watts = 12.0;         ///< draw in Sleeping state
  double off_watts = 4.0;            ///< BMC draw when Off
  double boot_watts = 140.0;         ///< draw while Booting/ShuttingDown
  sim::SimTime boot_time = 3 * sim::kMinute;      ///< Off -> Idle latency
  sim::SimTime shutdown_time = 1 * sim::kMinute;  ///< Idle -> Off latency
  sim::SimTime sleep_time = 5 * sim::kSecond;     ///< Idle -> Sleeping
  sim::SimTime wake_time = 20 * sim::kSecond;     ///< Sleeping -> Idle
  /// Manufacturing variability multiplier on dynamic power (Inadomi et al.
  /// SC'15 report ~±10 % within a homogeneous system). 1.0 = nominal part.
  double variability = 1.0;
  /// Lumped thermal resistance (K/W) and capacitance (J/K) for the RC
  /// model. The default puts a fully loaded default node (270 W) at
  /// ~62 °C with a 22 °C inlet — a healthy air-cooled operating point.
  double thermal_resistance = 0.15;
  double thermal_capacitance = 8000.0;
};

/// A compute node. Owned by Cluster; referenced everywhere by NodeId.
class Node {
 public:
  Node(NodeId id, NodeConfig config, RackId rack, PduId pdu, CoolingId loop)
      : id_(id), config_(config), rack_(rack), pdu_(pdu), cooling_(loop) {}

  NodeId id() const { return id_; }
  const NodeConfig& config() const { return config_; }
  RackId rack() const { return rack_; }
  PduId pdu() const { return pdu_; }
  CoolingId cooling_loop() const { return cooling_; }

  NodeState state() const { return state_; }
  /// Sets the lifecycle state. Callers (rm::NodeLifecycle) are responsible
  /// for legal transition sequencing; the node only forbids leaving
  /// Busy/Draining with jobs still allocated to Off-like states.
  void set_state(NodeState s);

  /// True when the node could accept work *now* (Idle, or Busy with spare
  /// cores when core-level sharing / VM splitting is enabled).
  bool schedulable() const {
    return state_ == NodeState::kIdle || state_ == NodeState::kBusy;
  }

  // --- core allocation --------------------------------------------------

  std::uint32_t cores_total() const { return config_.cores; }
  std::uint32_t cores_in_use() const { return cores_in_use_; }
  std::uint32_t cores_free() const { return config_.cores - cores_in_use_; }

  /// One job's share of this node.
  struct Allocation {
    std::uint32_t cores = 0;
    /// How hard the job drives its cores, in (0, 1]: 1.0 = power-virus
    /// compute kernel, ~0.4 = memory/IO-bound. Scales dynamic power.
    double intensity = 1.0;
  };

  /// Allocates `cores` cores to `job` at the given power intensity.
  /// Requires schedulable() and enough free cores. Moves Idle -> Busy.
  void allocate(JobId job, std::uint32_t cores, double intensity = 1.0);

  /// Releases the allocation of `job` (all its cores). Moves Busy -> Idle
  /// when the node empties. Returns the number of cores freed.
  std::uint32_t release(JobId job);

  /// Jobs currently allocated on this node.
  const std::map<JobId, Allocation>& allocations() const {
    return allocations_;
  }

  /// Effective node load in [0,1]: intensity-weighted allocated core
  /// fraction — what the dynamic-power term scales with.
  double utilization() const {
    return config_.cores == 0 ? 0.0 : load_ / config_.cores;
  }

  // --- DVFS / capping knobs (read by power::NodePowerModel) -------------

  /// Index into the platform's P-state table (0 = highest frequency).
  std::uint32_t pstate() const { return pstate_; }
  void set_pstate(std::uint32_t p) { pstate_ = p; }

  /// Node-level power cap in watts; 0 means uncapped. Set by CAPMC-style
  /// out-of-band control or the RAPL controller.
  double power_cap_watts() const { return power_cap_watts_; }
  void set_power_cap_watts(double w) { power_cap_watts_ = w < 0 ? 0 : w; }

  // --- cached sensor values (written by power/thermal models) -----------

  double current_watts() const { return current_watts_; }
  void set_current_watts(double w) { current_watts_ = w; }

  double temperature_c() const { return temperature_c_; }
  void set_temperature_c(double t) { temperature_c_ = t; }

  /// The effective frequency ratio (f/f_ref in (0,1]) the node is running
  /// at after DVFS and cap clamping; written by the power model, read by
  /// job-progress accounting.
  double effective_freq_ratio() const { return effective_freq_ratio_; }
  void set_effective_freq_ratio(double r) { effective_freq_ratio_ = r; }

 private:
  NodeId id_;
  NodeConfig config_;
  RackId rack_;
  PduId pdu_;
  CoolingId cooling_;

  NodeState state_ = NodeState::kIdle;
  std::map<JobId, Allocation> allocations_;
  std::uint32_t cores_in_use_ = 0;
  double load_ = 0.0;  ///< sum of cores * intensity over allocations

  std::uint32_t pstate_ = 0;
  double power_cap_watts_ = 0.0;

  double current_watts_ = 0.0;
  double temperature_c_ = 25.0;
  double effective_freq_ratio_ = 1.0;
};

}  // namespace epajsrm::platform
