// Tests for the user energy scoreboard and the survey report generator.
#include <gtest/gtest.h>

#include "survey/centers.hpp"
#include "survey/report.hpp"
#include "telemetry/user_scoreboard.hpp"

namespace epajsrm {
namespace {

telemetry::JobEnergyReport report(const std::string& user, double kwh,
                                  double node_hours, char grade,
                                  workload::JobId id = 1) {
  telemetry::JobEnergyReport r;
  r.job = id;
  r.user = user;
  r.tag = "app";
  r.energy_kwh = kwh;
  r.node_hours = node_hours;
  r.kwh_per_node_hour = node_hours > 0 ? kwh / node_hours : 0.0;
  r.grade = grade;
  return r;
}

TEST(Scoreboard, AggregatesPerUser) {
  telemetry::UserScoreboard board;
  board.add(report("alice", 2.0, 10.0, 'B'));
  board.add(report("alice", 4.0, 10.0, 'D'));
  board.add(report("bob", 1.0, 10.0, 'A'));
  EXPECT_EQ(board.user_count(), 2u);

  const telemetry::UserScore alice = board.score_of("alice");
  EXPECT_EQ(alice.jobs, 2u);
  EXPECT_DOUBLE_EQ(alice.total_kwh, 6.0);
  EXPECT_DOUBLE_EQ(alice.node_hours, 20.0);
  EXPECT_DOUBLE_EQ(alice.kwh_per_node_hour, 0.3);
  EXPECT_EQ(alice.mark, 'C');  // mean of B(2) and D(4) = 3 = C
}

TEST(Scoreboard, RankingThriftiestFirst) {
  telemetry::UserScoreboard board;
  board.add(report("hungry", 10.0, 10.0, 'E'));
  board.add(report("frugal", 1.0, 10.0, 'A'));
  board.add(report("middle", 3.0, 10.0, 'C'));
  const auto ranking = board.ranking();
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].user, "frugal");
  EXPECT_EQ(ranking[1].user, "middle");
  EXPECT_EQ(ranking[2].user, "hungry");
}

TEST(Scoreboard, MinJobsFilter) {
  telemetry::UserScoreboard board;
  board.add(report("newbie", 1.0, 1.0, 'C'));
  board.add(report("regular", 1.0, 1.0, 'C'));
  board.add(report("regular", 1.0, 1.0, 'C', 2));
  EXPECT_EQ(board.ranking(2).size(), 1u);
  EXPECT_EQ(board.ranking(1).size(), 2u);
}

TEST(Scoreboard, UnknownUserScoresZero) {
  telemetry::UserScoreboard board;
  const telemetry::UserScore s = board.score_of("ghost");
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.total_kwh, 0.0);
}

TEST(Scoreboard, FormatRendersRanksAndMarks) {
  telemetry::UserScoreboard board;
  board.add(report("frugal", 1.0, 10.0, 'A'));
  board.add(report("hungry", 10.0, 10.0, 'E'));
  const std::string text =
      telemetry::UserScoreboard::format_ranking(board.ranking());
  EXPECT_NE(text.find("frugal"), std::string::npos);
  EXPECT_LT(text.find("frugal"), text.find("hungry"));
  EXPECT_NE(text.find("| A"), std::string::npos);
}

TEST(SurveyReport, FullReportContainsEveryCenter) {
  const std::string report = survey::render_report();
  for (const auto& c : survey::all_centers()) {
    EXPECT_NE(report.find(c.full_name), std::string::npos) << c.short_name;
  }
  EXPECT_NE(report.find("## Questionnaire"), std::string::npos);
  EXPECT_NE(report.find("Cross-site analysis"), std::string::npos);
  EXPECT_NE(report.find("Figure 2"), std::string::npos);
}

TEST(SurveyReport, OptionsPruneSections) {
  survey::ReportOptions options;
  options.include_map = false;
  options.include_questionnaire = false;
  options.include_center_sections = false;
  options.include_cross_site_analysis = false;
  const std::string report = survey::render_report(options);
  EXPECT_EQ(report.find("## Questionnaire"), std::string::npos);
  EXPECT_EQ(report.find("## Geography"), std::string::npos);
  // The selection list always renders.
  EXPECT_NE(report.find("Center selection"), std::string::npos);
}

TEST(SurveyReport, CenterSectionHasAllThreeMaturityBlocks) {
  const std::string section = survey::render_center_section("KAUST");
  EXPECT_NE(section.find("### Research activities"), std::string::npos);
  EXPECT_NE(section.find("### Technology development"), std::string::npos);
  EXPECT_NE(section.find("### Production deployment"), std::string::npos);
  EXPECT_NE(section.find("270 W"), std::string::npos);
  EXPECT_NE(section.find("epa/static_power_cap"), std::string::npos);
}

TEST(SurveyReport, UnknownCenterThrows) {
  EXPECT_THROW(survey::render_center_section("Narnia"), std::out_of_range);
}

TEST(SurveyReport, JcahpcHasNoTechDevRow) {
  // Table II shows a dash for JCAHPC tech development.
  const std::string section = survey::render_center_section("JCAHPC");
  EXPECT_NE(section.find("*(none reported)*"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm
