#include "epa/ramp_limiter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace epajsrm::epa {

void RampLimiterPolicy::install(PolicyHost& host) {
  EpaPolicy::install(host);
  // Seed the ramp base so admissions before the first tick are bounded
  // against the pre-existing draw.
  samples_.emplace_back(host.simulation().now(),
                        host.ledger().it_power_watts());
}

double RampLimiterPolicy::window_min() const {
  double lo = std::numeric_limits<double>::max();
  for (const auto& [t, w] : samples_) lo = std::min(lo, w);
  return samples_.empty() ? 0.0 : lo;
}

double RampLimiterPolicy::headroom() const {
  const double current = host_->ledger().it_power_watts();
  return config_.max_ramp_watts - (current - window_min());
}

double RampLimiterPolicy::job_delta(const StartPlan& plan,
                                    std::uint32_t p) const {
  const platform::Cluster& cluster = host_->cluster();
  const double idle = cluster.node(0).config().idle_watts;
  const double dyn =
      std::max(0.0, plan.predicted_node_watts - idle) * plan.nodes;
  const double ratio = cluster.pstates().ratio(
      std::min(p, cluster.pstates().deepest()));
  return dyn * std::pow(ratio, host_->power_model().alpha());
}

bool RampLimiterPolicy::plan_start(StartPlan& plan) {
  if (host_ == nullptr || config_.max_ramp_watts <= 0.0 ||
      plan.job == nullptr || samples_.empty()) {
    return true;
  }
  const double room = headroom();
  if (job_delta(plan, plan.pstate) <= room) return true;

  // Soft start: deepest-first search for a P-state whose step fits the
  // remaining headroom; the tick loop raises the frequency later.
  const platform::PstateTable& pstates = host_->cluster().pstates();
  for (std::uint32_t p = pstates.deepest(); p > plan.pstate; --p) {
    if (job_delta(plan, p) <= room) {
      plan.pstate = p;
      if (!plan.dry_run) {
        ++soft_starts_;
        ramping_jobs_.insert(plan.job->id());
      }
      return true;
    }
  }
  if (!plan.dry_run) ++deferred_;
  return false;  // not even the deepest state fits: wait for headroom
}

void RampLimiterPolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr) return;
  const double watts = host_->ledger().it_power_watts();
  samples_.emplace_back(now, watts);
  while (!samples_.empty() &&
         samples_.front().first < now - config_.window) {
    samples_.pop_front();
  }
  worst_ramp_ = std::max(worst_ramp_, watts - window_min());

  // Ramp soft-started jobs back up, one P-state per tick, inside the
  // remaining headroom.
  if (ramping_jobs_.empty()) return;
  const platform::Cluster& cluster = host_->cluster();
  const power::NodePowerModel& model = host_->power_model();
  const platform::PstateTable& pstates = cluster.pstates();
  double room = headroom();

  for (auto it = ramping_jobs_.begin(); it != ramping_jobs_.end();) {
    const workload::JobId id = *it;
    // Resolve the job's current state through its first node.
    const workload::Job* job = nullptr;
    for (const workload::Job* candidate : host_->running_jobs()) {
      if (candidate->id() == id) {
        job = candidate;
        break;
      }
    }
    if (job == nullptr || job->allocated_nodes().empty()) {
      it = ramping_jobs_.erase(it);
      continue;
    }
    const std::uint32_t p =
        cluster.node(job->allocated_nodes().front()).pstate();
    if (p == 0) {
      it = ramping_jobs_.erase(it);  // fully ramped
      continue;
    }
    // Step cost: dynamic draw difference between p and p-1 on its nodes.
    double dyn = 0.0;
    for (platform::NodeId node_id : job->allocated_nodes()) {
      const platform::Node& node = cluster.node(node_id);
      dyn += node.config().dynamic_watts * node.config().variability *
             node.utilization();
    }
    const double step =
        dyn * (std::pow(pstates.ratio(p - 1), model.alpha()) -
               std::pow(pstates.ratio(p), model.alpha()));
    if (step <= room) {
      host_->set_job_pstate(id, p - 1);
      room -= step;
    }
    ++it;
  }
}

void RampLimiterPolicy::on_job_end(const workload::Job& job) {
  ramping_jobs_.erase(job.id());
}

}  // namespace epajsrm::epa
