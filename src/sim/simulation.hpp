// The discrete-event simulation driver: a monotone clock plus the event
// queue. Every model component holds a Simulation& and expresses behaviour
// as scheduled callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace epajsrm::sim {

/// Discrete-event simulation engine.
///
/// Usage:
///   Simulation sim;
///   sim.schedule_in(5 * kSecond, [&]{ ... });
///   sim.run();
///
/// The engine is single-threaded by design: determinism matters more than
/// intra-replication parallelism at this model scale, and replications
/// parallelise embarrassingly (see ThreadPool and core::EnsembleEngine).
///
/// Periodic work is batched: repeaters created by schedule_every() that
/// share a period and a phase coalesce into one queue entry per tick (a
/// "tick batch") instead of one entry per repeater. Members of a batch
/// dispatch consecutively in scheduling order; relative order against
/// other events at the same instant follows the batch entry's queue
/// position (the position its first member would have held).
class Simulation {
 public:
  Simulation() = default;
  // Pending batch entries capture `this`; the engine is pinned in place.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  using Callback = EventQueue::Callback;

  /// Periodic callback; returns true to keep firing.
  using RepeaterFn = SmallFn<bool()>;

  /// Observer invoked after each dispatched callback with the event's
  /// category tag and its wall-clock cost. Attaching one enables per-event
  /// timing (the event-loop profiler); detached, dispatch is not timed.
  using DispatchHook =
      std::function<void(EventCategory category, std::int64_t wall_ns)>;

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// next_event_time() when nothing is pending.
  static constexpr SimTime kNoPendingEvent =
      std::numeric_limits<SimTime>::max();

  /// Absolute time of the earliest pending event (batch envelopes
  /// included), or kNoPendingEvent on an empty queue. This is the
  /// conservative lookahead horizon the partitioned engine's skew
  /// barrier coordinates on (see sim/skew_barrier.hpp).
  SimTime next_event_time() const {
    return queue_.empty() ? kNoPendingEvent : queue_.next_time();
  }

  /// Schedules `cb` at absolute time `t` (clamped to now() if in the past,
  /// which models "fire as soon as possible"). `category` tags the event
  /// for profiling.
  EventId schedule_at(SimTime t, Callback cb,
                      EventCategory category = kDefaultEventCategory);

  /// Schedules `cb` at now() + dt (dt < 0 clamps to now()).
  EventId schedule_in(SimTime dt, Callback cb,
                      EventCategory category = kDefaultEventCategory) {
    return schedule_at(now_ + dt, std::move(cb), category);
  }

  /// Schedules a periodic callback firing first at now() + period and then
  /// every `period` until it returns false. Returns a handle covering the
  /// *first* firing; cancelling it stops the chain only before the first
  /// firing — use the callback's return value for clean shutdown.
  /// `period` must be positive (throws std::invalid_argument otherwise): a
  /// non-positive period has no meaningful cadence and would drive the
  /// monotone clock backwards on re-enqueue.
  EventId schedule_every(SimTime period, RepeaterFn cb,
                         EventCategory category = kDefaultEventCategory);

  /// Replaces every attached dispatch observer with `hook` (or clears all,
  /// with {}).
  void set_dispatch_hook(DispatchHook hook) {
    hooks_.clear();
    if (hook) hooks_.push_back(std::move(hook));
  }

  /// Appends a dispatch observer without disturbing existing ones; the
  /// event-loop profiler and the invariant auditor can both watch the same
  /// run. Hooks run in attachment order after every dispatched callback.
  void add_dispatch_hook(DispatchHook hook) {
    if (hook) hooks_.push_back(std::move(hook));
  }

  bool has_dispatch_hook() const { return !hooks_.empty(); }

  /// With observers attached, times (and notifies) only every `stride`-th
  /// dispatched event — sampled profiling, so instrumented runs keep
  /// event-loop throughput within a few percent of bare runs. 1 (the
  /// default) times every event; 0 is clamped to 1. Untimed events are
  /// dispatched without clock reads or hook calls.
  void set_dispatch_sample_stride(std::uint32_t stride) {
    dispatch_stride_ = stride == 0 ? 1 : stride;
  }
  std::uint32_t dispatch_sample_stride() const { return dispatch_stride_; }

  /// Cancels a pending event or a not-yet-fired repeater; see
  /// EventQueue::cancel.
  bool cancel(EventId id);

  /// Runs until the queue is empty or stop() is called.
  void run() { run_until(std::numeric_limits<SimTime>::max()); }

  /// Runs until the queue is empty, stop() is called, or the next event
  /// would fire strictly after `t`; the clock then advances to min(t, ...).
  void run_until(SimTime t);

  /// Requests termination; the current callback finishes, the loop exits.
  void stop() { stopped_ = true; }

  /// True once stop() has been called.
  bool stopped() const { return stopped_; }

  /// Total callbacks executed (for kernel benchmarks and tests). Each
  /// repeater firing counts as one event; the batch entry itself does not.
  std::uint64_t events_processed() const { return events_processed_; }

  /// Live events still pending (each live repeater counts as one).
  std::size_t pending_events() const {
    return queue_.size() - pending_batches_.size() + live_repeaters_;
  }

 private:
  /// One periodic callback registered via schedule_every().
  struct Repeater {
    EventId handle = kNoEvent;
    /// Scheduling-order stamp; members of a (possibly merged) batch fire
    /// in seq order, mirroring the per-entry queue order batching removed.
    std::uint64_t seq = 0;
    RepeaterFn fn;
    EventCategory category = kDefaultEventCategory;
    bool fired_once = false;
    bool dead = false;  ///< cancelled, or returned false
  };

  /// All repeaters sharing (period, phase): one queue entry per tick.
  struct Batch {
    SimTime period = 0;
    SimTime fire_at = 0;
    std::vector<Repeater> members;
  };

  /// The reserved category tagging internal per-tick batch envelopes; its
  /// name pointer is unique by construction (see simulation.cpp), so the
  /// run loop detects envelopes by identity, never by tag content.
  static EventCategory batch_category();

  void fire_batch(std::size_t index);
  /// Queues `batch` (by arena index) for its fire_at tick, merging into an
  /// already-pending batch with the same (period, phase) if one exists.
  void enqueue_batch(std::size_t index);
  std::size_t acquire_batch();
  void release_batch(std::size_t index);

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  std::vector<DispatchHook> hooks_;
  std::uint32_t dispatch_stride_ = 1;
  std::uint32_t dispatch_since_sample_ = 0;

  // --- periodic-batch state -------------------------------------------------
  std::vector<std::unique_ptr<Batch>> batches_;
  std::vector<std::size_t> free_batches_;
  /// (period, fire_at) -> batches_ index, for every batch with a pending
  /// queue entry.
  std::map<std::pair<SimTime, SimTime>, std::size_t> pending_batches_;
  /// Repeater handle -> batches_ index, dropped at the first firing (the
  /// window in which the handle is cancellable).
  std::unordered_map<EventId, std::size_t> repeater_batch_;
  std::size_t live_repeaters_ = 0;
  std::uint64_t next_repeater_seq_ = 0;
  /// Repeater handles carry the top bit so they never collide with
  /// queue-issued event ids (which encode slot+1 in the upper half).
  EventId next_repeater_handle_ = EventId{1} << 63;
};

}  // namespace epajsrm::sim
