file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_geography.dir/bench_fig2_geography.cpp.o"
  "CMakeFiles/bench_fig2_geography.dir/bench_fig2_geography.cpp.o.d"
  "bench_fig2_geography"
  "bench_fig2_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
