// Static power capping — KAUST's production configuration on Shaheen
// (Cray XC40): "30 % of nodes run uncapped, 70 % run with 270 W power
// cap", set once through CAPMC and left in place.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Caps a fixed fraction of the machine at install time.
class StaticPowerCapPolicy final : public EpaPolicy {
 public:
  /// `capped_fraction` of nodes (lowest ids) get `cap_watts`; the rest run
  /// uncapped. KAUST: fraction 0.7, cap 270.
  StaticPowerCapPolicy(double capped_fraction, double cap_watts)
      : fraction_(capped_fraction), cap_watts_(cap_watts) {}

  std::string name() const override { return "static-power-cap"; }
  void install(PolicyHost& host) override;

  /// The worst-case draw guaranteed by the installed caps.
  double power_budget_watts(sim::SimTime) const override { return budget_; }

  std::uint32_t capped_nodes() const { return capped_nodes_; }

 private:
  double fraction_;
  double cap_watts_;
  double budget_ = 0.0;
  std::uint32_t capped_nodes_ = 0;
};

}  // namespace epajsrm::epa
