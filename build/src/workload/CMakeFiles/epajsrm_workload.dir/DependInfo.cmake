
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_catalog.cpp" "src/workload/CMakeFiles/epajsrm_workload.dir/app_catalog.cpp.o" "gcc" "src/workload/CMakeFiles/epajsrm_workload.dir/app_catalog.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/epajsrm_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/epajsrm_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/workload/CMakeFiles/epajsrm_workload.dir/job.cpp.o" "gcc" "src/workload/CMakeFiles/epajsrm_workload.dir/job.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/epajsrm_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/epajsrm_workload.dir/swf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
