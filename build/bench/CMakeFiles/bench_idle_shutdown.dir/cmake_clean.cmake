file(REMOVE_RECURSE
  "CMakeFiles/bench_idle_shutdown.dir/bench_idle_shutdown.cpp.o"
  "CMakeFiles/bench_idle_shutdown.dir/bench_idle_shutdown.cpp.o.d"
  "bench_idle_shutdown"
  "bench_idle_shutdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idle_shutdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
