#include "rm/resource_manager.hpp"

#include <stdexcept>

#include "check/contract.hpp"
#include "obs/observability.hpp"

namespace epajsrm::rm {

ResourceManager::ResourceManager(sim::Simulation& sim,
                                 platform::Cluster& cluster,
                                 const power::NodePowerModel& model,
                                 std::unique_ptr<Allocator> allocator)
    : cluster_(&cluster), model_(&model), allocator_(std::move(allocator)),
      layout_(cluster), lifecycle_(sim, cluster) {
  if (!allocator_) throw std::invalid_argument("allocator required");
}

void ResourceManager::set_allocator(std::unique_ptr<Allocator> allocator) {
  if (!allocator) throw std::invalid_argument("allocator required");
  allocator_ = std::move(allocator);
}

EligibilityFn ResourceManager::eligibility() const {
  const LayoutService* layout = &layout_;
  const EligibilityFn extra = extra_eligibility_;
  return [layout, extra](const platform::Node& node) {
    if (!Allocator::default_eligible(node)) return false;
    if (!layout->plant_ok(node)) return false;
    if (extra && !extra(node)) return false;
    return true;
  };
}

std::uint32_t ResourceManager::allocatable_nodes() const {
  return Allocator::available(*cluster_, eligibility());
}

std::vector<platform::NodeId> ResourceManager::allocate(workload::Job& job,
                                                        std::uint32_t nodes) {
  EPAJSRM_REQUIRE(nodes > 0, "allocations are at least one node");
  EPAJSRM_REQUIRE(job.allocated_nodes().empty(),
                  "job is already holding an allocation");
  obs::ScopedSpan span = obs::span_of(obs_, "rm", "allocate");
  if (span.active()) {
    span.set_job(static_cast<std::int64_t>(job.id()));
    span.attr("nodes_requested", static_cast<double>(nodes));
  }

  const std::vector<platform::NodeId> selected =
      allocator_->select(*cluster_, nodes, eligibility());
  EPAJSRM_ENSURE(selected.empty() || selected.size() == nodes,
                 "allocator must fill the request exactly or not at all");
  if (selected.empty()) {
    if (obs_ != nullptr) {
      span.attr("outcome", "no_nodes");
      obs_->metrics().counter("rm.alloc_failures").add(1);
    }
    return {};
  }

  const workload::JobSpec& spec = job.spec();
  for (platform::NodeId id : selected) {
    platform::Node& node = cluster_->node(id);
    const std::uint32_t cores = spec.cores_per_node == 0
                                    ? node.cores_total()
                                    : spec.cores_per_node;
    node.allocate(job.id(), cores, spec.profile.power_intensity);
    model_->apply(node);
  }

  job.set_allocated_nodes(selected);
  job.set_cores_per_node_allocated(
      spec.cores_per_node == 0 ? cluster_->node(selected.front()).cores_total()
                               : spec.cores_per_node);
  job.set_placement_spread(cluster_->topology().allocation_spread(selected));
  if (obs_ != nullptr) {
    span.attr("spread", job.placement_spread());
    obs_->metrics().counter("rm.allocations").add(1);
  }
  return selected;
}

void ResourceManager::release(workload::Job& job) {
  for (platform::NodeId id : job.allocated_nodes()) {
    platform::Node& node = cluster_->node(id);
    node.release(job.id());
    model_->apply(node);
  }
  if (obs_ != nullptr) {
    obs_->metrics().counter("rm.releases").add(1);
    obs_->trace().instant(
        "rm", "release", static_cast<std::int64_t>(job.id()), -1,
        {{"nodes", static_cast<double>(job.allocated_nodes().size())}});
  }
}

}  // namespace epajsrm::rm
