// EPA policy tests: idle shutdown, node cycling under a facility cap.
#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "epa/idle_shutdown.hpp"
#include "epa/node_cycling_cap.hpp"

namespace epajsrm::epa {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 8,
                               double ambient_mean = 18.0) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  cfg.boot_time = 2 * sim::kMinute;
  cfg.shutdown_time = 30 * sim::kSecond;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .ambient(platform::AmbientModel(ambient_mean, 0.0))
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 2;
  spec.submit_time = submit;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

TEST(IdleShutdown, PowersOffIdleNodesAfterTimeout) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::EpaJsrmSolution solution(sim, cluster);
  IdleShutdownPolicy::Config cfg;
  cfg.idle_timeout = 5 * sim::kMinute;
  cfg.min_idle_online = 2;
  auto policy = std::make_unique<IdleShutdownPolicy>(cfg);
  IdleShutdownPolicy* idle = policy.get();
  solution.add_policy(std::move(policy));
  solution.start();
  sim.run_until(30 * sim::kMinute);
  EXPECT_EQ(cluster.count_in_state(platform::NodeState::kOff), 6u);
  EXPECT_EQ(cluster.count_in_state(platform::NodeState::kIdle), 2u);
  EXPECT_EQ(idle->shutdowns_requested(), 6u);
}

TEST(IdleShutdown, BootsNodesBackWhenQueueNeedsThem) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::EpaJsrmSolution solution(sim, cluster);
  IdleShutdownPolicy::Config cfg;
  cfg.idle_timeout = 5 * sim::kMinute;
  cfg.min_idle_online = 1;
  auto policy = std::make_unique<IdleShutdownPolicy>(cfg);
  IdleShutdownPolicy* idle = policy.get();
  solution.add_policy(std::move(policy));
  // Arrives after the fleet has been powered down.
  solution.submit(job_spec(1, 6, 20 * sim::kMinute, sim::kHour));
  solution.run_until(4 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  EXPECT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_GT(idle->boots_requested(), 0u);
  // Job start paid (at least part of) the boot latency.
  EXPECT_GT(job->start_time(), sim::kHour);
}

TEST(IdleShutdown, SavesEnergyOnSparseWorkload) {
  const auto run_with = [](bool enable_policy) {
    sim::Simulation sim;
    platform::Cluster cluster = test_cluster(8);
    core::SolutionConfig config;
    config.enable_thermal = false;
    core::EpaJsrmSolution solution(sim, cluster, config);
    if (enable_policy) {
      IdleShutdownPolicy::Config cfg;
      cfg.idle_timeout = 5 * sim::kMinute;
      cfg.min_idle_online = 1;
      solution.add_policy(std::make_unique<IdleShutdownPolicy>(cfg));
    }
    solution.submit(job_spec(1, 1, 10 * sim::kMinute));
    solution.run_until(12 * sim::kHour);
    sim.run_until(12 * sim::kHour);  // idle tail
    return solution.finalize().total_it_kwh_exact;
  };
  const double baseline = run_with(false);
  const double with_policy = run_with(true);
  EXPECT_LT(with_policy, baseline * 0.3);  // mostly-idle fleet off
}

TEST(IdleShutdown, SleepModeUsesSleepStates) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster);
  IdleShutdownPolicy::Config cfg;
  cfg.idle_timeout = 2 * sim::kMinute;
  cfg.min_idle_online = 0;
  cfg.use_sleep = true;
  solution.add_policy(std::make_unique<IdleShutdownPolicy>(cfg));
  solution.start();
  sim.run_until(20 * sim::kMinute);
  EXPECT_EQ(cluster.count_in_state(platform::NodeState::kSleeping), 4u);
}

TEST(NodeCycling, HoldsRollingMeanUnderCap) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  NodeCyclingCapPolicy::Config cfg;
  cfg.cap_watts = 600.0;  // idle fleet alone draws 800 W
  cfg.window = 10 * sim::kMinute;
  auto policy = std::make_unique<NodeCyclingCapPolicy>(cfg);
  NodeCyclingCapPolicy* cycling = policy.get();
  solution.add_policy(std::move(policy));
  solution.start();
  sim.run_until(2 * sim::kHour);
  EXPECT_GT(cycling->cycled_off(), 0u);
  EXPECT_LE(cluster.it_power_watts(), 600.0 + 1e-6);
  // No jobs were harmed (there were none to kill, and the policy never
  // kills anyway).
  EXPECT_GT(cluster.count_in_state(platform::NodeState::kOff), 0u);
}

TEST(NodeCycling, SummerOnlyGateRespectsAmbient) {
  sim::Simulation sim;
  // Cold site: gate at 25 C, ambient 10 C -> no enforcement.
  platform::Cluster cluster = test_cluster(8, 10.0);
  core::EpaJsrmSolution solution(sim, cluster);
  NodeCyclingCapPolicy::Config cfg;
  cfg.cap_watts = 600.0;
  cfg.enforce_above_ambient_c = 25.0;
  auto policy = std::make_unique<NodeCyclingCapPolicy>(cfg);
  NodeCyclingCapPolicy* cycling = policy.get();
  solution.add_policy(std::move(policy));
  solution.start();
  sim.run_until(sim::kHour);
  EXPECT_EQ(cycling->cycled_off(), 0u);
  EXPECT_DOUBLE_EQ(cycling->power_budget_watts(sim.now()), 0.0);
}

TEST(NodeCycling, RestoresNodesWhenLoadDrops) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  NodeCyclingCapPolicy::Config cfg;
  cfg.cap_watts = 2000.0;
  cfg.window = 5 * sim::kMinute;
  auto policy = std::make_unique<NodeCyclingCapPolicy>(cfg);
  NodeCyclingCapPolicy* cycling = policy.get();
  solution.add_policy(std::move(policy));
  // Heavy phase pushes over the cap; afterwards the fleet is idle and far
  // below it, so nodes return.
  for (workload::JobId id = 1; id <= 8; ++id) {
    solution.submit(job_spec(id, 1, 30 * sim::kMinute));
  }
  solution.run_until(6 * sim::kHour);
  sim.run_until(6 * sim::kHour);
  if (cycling->cycled_off() > 0) {
    EXPECT_GT(cycling->cycled_on(), 0u);
  }
  // Fleet idle at 800 W: every node should be back on eventually.
  EXPECT_EQ(cluster.count_in_state(platform::NodeState::kOff), 0u);
}

}  // namespace
}  // namespace epajsrm::epa
