// Survey report generation: renders the complete survey corpus — center
// selection, questionnaire, per-center profiles and activity breakdowns,
// cross-site analysis — as one Markdown document. This is the framework's
// analogue of the EE HPC WG whitepaper [16] that the paper's Section V
// says the full analysis will be synthesised from.
#pragma once

#include <string>

namespace epajsrm::survey {

/// Options controlling which sections the report includes.
struct ReportOptions {
  bool include_map = true;
  bool include_questionnaire = true;
  bool include_center_sections = true;
  bool include_cross_site_analysis = true;
};

/// Renders the full survey report as Markdown.
std::string render_report(const ReportOptions& options = {});

/// Renders just one center's section (profile + activity breakdown +
/// framework-module mapping). Throws std::out_of_range for unknown names.
std::string render_center_section(const std::string& short_name);

}  // namespace epajsrm::survey
