// Out-of-process EDC transport over the net socket carrier.
//
// The loopback transport already speaks the full wire contract, so going
// out of process is purely a carrier change: SocketTransport ships each
// batch over a connected line channel (batch framing per net/carrier.hpp)
// and blocks for the reply batch; serve_agent() is the far side's loop,
// feeding received batches to an Agent and returning its replies until
// the peer hangs up.
//
// Because the exact same serialized lines cross the socket that cross the
// loopback, a simulation driven through a socket-served agent produces
// bit-identical results to the in-process run — test_edc_socket.cpp holds
// that proof over a real socketpair.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "edc/transport.hpp"
#include "net/carrier.hpp"

namespace epajsrm::edc {

/// Transport over a connected line channel. Construction connects; every
/// exchange() writes the batch and blocks for the framed reply batch.
class SocketTransport final : public Transport {
 public:
  /// Connects to a loopback TCP port.
  static std::shared_ptr<SocketTransport> connect_tcp(std::uint16_t port);

  /// Connects to a unix-domain socket path.
  static std::shared_ptr<SocketTransport> connect_unix(
      const std::string& path);

  /// Adopts an already-connected channel (tests use socketpairs).
  SocketTransport(net::LineChannel channel, std::string describe);

  std::vector<std::string> exchange(
      const std::vector<std::string>& lines) override;

  std::string describe() const override;

 private:
  net::LineChannel channel_;
  std::string describe_;
};

/// Serves `agent` on `channel`: reads request batches, writes the agent's
/// reply batches, returns when the peer closes the stream. Returns the
/// number of batches served. ProtocolError from the agent propagates —
/// a malformed peer is the caller's problem, not silently swallowed.
std::size_t serve_agent(net::LineChannel& channel, Agent& agent);

/// Convenience: accepts exactly one connection on `listener` and serves
/// `agent` on it (the one-scenario smoke-test shape).
std::size_t serve_one_connection(net::Listener& listener, Agent& agent);

}  // namespace epajsrm::edc
