// Standard Workload Format (SWF) interchange.
//
// SWF is the de-facto trace format of the Parallel Workloads Archive
// (Feitelson); LANL+Sandia's "gather traces for evaluating EPA approaches"
// row is exactly this workflow. We read the 18 standard fields and map the
// subset the simulator uses onto JobSpec; the writer emits completed-job
// records so simulated schedules round-trip.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace epajsrm::workload {

/// One SWF record (the 18 standard fields; -1 = unknown, as per the spec).
struct SwfRecord {
  long long job_number = -1;
  long long submit_time = -1;       ///< seconds
  long long wait_time = -1;         ///< seconds
  long long run_time = -1;          ///< seconds
  long long allocated_processors = -1;
  double avg_cpu_time = -1;
  double used_memory = -1;
  long long requested_processors = -1;
  long long requested_time = -1;    ///< seconds
  double requested_memory = -1;
  int status = -1;                  ///< 1 completed, 0/5 failed/cancelled
  long long user_id = -1;
  long long group_id = -1;
  long long executable = -1;        ///< application id -> tag
  long long queue = -1;
  long long partition = -1;
  long long preceding_job = -1;
  long long think_time = -1;
};

/// Parse diagnostics: real archive traces carry truncated or hand-edited
/// lines, so the parser skips what it cannot read instead of aborting a
/// multi-million-line load.
struct SwfParseStats {
  std::size_t data_lines = 0;     ///< non-comment, non-blank lines seen
  std::size_t skipped_lines = 0;  ///< malformed/short lines dropped
  /// 1-based line number of the first skip (0 = none), for the warning.
  std::size_t first_skipped_line = 0;
};

/// Parses SWF text (';' comment lines ignored). Malformed or short data
/// lines are skipped and counted in `stats` (pass null to discard the
/// counts); only an unreadable stream is an error.
std::vector<SwfRecord> parse_swf(std::istream& in,
                                 SwfParseStats* stats = nullptr);
std::vector<SwfRecord> parse_swf_file(const std::string& path,
                                      SwfParseStats* stats = nullptr);

/// Converts SWF records to JobSpecs for a machine with `cores_per_node`
/// cores per node. Processor counts are rounded up to whole nodes; records
/// without usable runtime/processors are skipped. The `executable` id
/// becomes the tag ("swf-app-<id>"); profiles default to `profile`.
std::vector<JobSpec> to_jobs(const std::vector<SwfRecord>& records,
                             std::uint32_t cores_per_node,
                             std::uint32_t machine_nodes,
                             const AppProfile& profile = {});

/// Serialises completed jobs as SWF (one line per job, header comment).
void write_swf(std::ostream& out, const std::vector<const Job*>& jobs,
               std::uint32_t cores_per_node);

}  // namespace epajsrm::workload
