#include "epa/idle_shutdown.hpp"

#include <algorithm>

#include "obs/observability.hpp"

namespace epajsrm::epa {

std::uint32_t IdleShutdownPolicy::shortfall() const {
  const auto& pending = host_->pending_jobs();
  if (pending.empty()) return 0;
  // Nodes the head-of-queue jobs want, versus nodes usable now or already
  // booting.
  std::uint32_t wanted = 0;
  for (const workload::Job* job : pending) {
    wanted += job->spec().nodes;
    if (wanted > host_->cluster().node_count()) break;
  }
  const power::PowerLedger& ledger = host_->ledger();
  const std::uint32_t usable =
      ledger.count_in_state(platform::NodeState::kIdle) +
      ledger.count_in_state(platform::NodeState::kBooting);
  return wanted > usable ? wanted - usable : 0;
}

void IdleShutdownPolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr) return;
  platform::Cluster& cluster = host_->cluster();

  // Track how long each node has been continuously idle.
  for (const platform::Node& node : cluster.nodes()) {
    if (node.state() == platform::NodeState::kIdle) {
      idle_since_.try_emplace(node.id(), now);
    } else {
      idle_since_.erase(node.id());
    }
  }

  // Demand side first: boot nodes back when the queue is starved.
  std::uint32_t need = shortfall();
  if (need > 0) {
    for (const platform::Node& node : cluster.nodes()) {
      if (need == 0) break;
      const bool resumable =
          config_.use_sleep
              ? node.state() == platform::NodeState::kSleeping
              : node.state() == platform::NodeState::kOff;
      if (!resumable) continue;
      const bool ok = config_.use_sleep
                          ? host_->resource_manager().lifecycle().wake(node.id())
                          : host_->power_on_node(node.id());
      if (ok) {
        ++boots_;
        --need;
        if (obs::Observability* o = host_->observability()) {
          o->metrics().counter("epa.node_boots").add(1);
          o->trace().instant("epa", config_.use_sleep ? "node_wake"
                                                      : "node_boot",
                             -1, static_cast<std::int64_t>(node.id()));
        }
      }
    }
    return;  // do not shut anything down while starved
  }

  // Supply side: power off nodes idle past the timeout, keeping the
  // reserve.
  std::uint32_t idle_online =
      host_->ledger().count_in_state(platform::NodeState::kIdle);
  for (const auto& [id, since] : idle_since_) {
    if (idle_online <= config_.min_idle_online) break;
    if (now - since < config_.idle_timeout) continue;
    const bool ok = config_.use_sleep
                        ? host_->resource_manager().lifecycle().sleep(id)
                        : host_->power_off_node(id);
    if (ok) {
      ++shutdowns_;
      --idle_online;
      if (obs::Observability* o = host_->observability()) {
        o->metrics().counter("epa.node_shutdowns").add(1);
        o->trace().instant("epa", config_.use_sleep ? "node_sleep"
                                                    : "node_shutdown",
                           -1, static_cast<std::int64_t>(id),
                           {{"idle_s", sim::to_seconds(now - since)}});
      }
    }
  }
}

}  // namespace epajsrm::epa
