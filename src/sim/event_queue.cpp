#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace epajsrm::sim {

namespace {
constexpr std::uint32_t kArity = 4;
}  // namespace

EventId EventQueue::push(SimTime t, Callback cb, EventCategory category) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.time = t;
  slot.seq = next_seq_++;
  slot.category = category;
  slot.callback = std::move(cb);
  slot.heap_index = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(index);
  sift_up(slot.heap_index);
  return make_id(index, slot.generation);
}

std::uint32_t EventQueue::resolve(EventId id) const {
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return kNilIndex;
  const std::uint32_t index = static_cast<std::uint32_t>(slot_plus_one - 1);
  const Slot& slot = slots_[index];
  if (slot.heap_index == kNilIndex) return kNilIndex;  // free slot
  if (slot.generation != static_cast<std::uint32_t>(id)) return kNilIndex;
  return index;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t index = resolve(id);
  if (index == kNilIndex) return false;
  heap_erase(slots_[index].heap_index);
  release_slot(index);
  return true;
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return slots_[heap_.front()].time;
}

EventQueue::Popped EventQueue::pop() {
  assert(!heap_.empty());
  const std::uint32_t index = heap_.front();
  Slot& slot = slots_[index];
  Popped out{slot.time, make_id(index, slot.generation),
             std::move(slot.callback), slot.category};
  heap_erase(0);
  release_slot(index);
  return out;
}

void EventQueue::sift_up(std::uint32_t pos) {
  const std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_index = pos;
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].heap_index = pos;
}

void EventQueue::sift_down(std::uint32_t pos) {
  const std::uint32_t count = static_cast<std::uint32_t>(heap_.size());
  const std::uint32_t moving = heap_[pos];
  for (;;) {
    const std::uint64_t first_child =
        static_cast<std::uint64_t>(pos) * kArity + 1;
    if (first_child >= count) break;
    const std::uint32_t last_child = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(first_child + kArity - 1, count - 1));
    std::uint32_t best = static_cast<std::uint32_t>(first_child);
    for (std::uint32_t c = best + 1; c <= last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].heap_index = pos;
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving].heap_index = pos;
}

void EventQueue::heap_erase(std::uint32_t pos) {
  assert(pos < heap_.size());
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // erased the tail entry
  heap_[pos] = last;
  slots_[last].heap_index = pos;
  // The displaced tail entry may need to move either way relative to its
  // new position's neighbours.
  sift_up(pos);
  sift_down(slots_[last].heap_index);
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilIndex) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNilIndex;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.callback = nullptr;
  slot.heap_index = kNilIndex;
  // Stale ids carrying the old generation are rejected from here on.
  ++slot.generation;
  slot.next_free = free_head_;
  free_head_ = index;
}

}  // namespace epajsrm::sim
