// Replicated experiments: run the same scenario across independent seeds
// in parallel and report across-seed statistics. Single runs of a
// stochastic workload can mislead; the survey-backed benches use this to
// state effects with their spread.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "metrics/stats.hpp"

namespace epajsrm::core {

/// Across-seed aggregate of the headline run metrics.
struct ReplicatedResult {
  std::string label;
  std::size_t replications = 0;
  metrics::DistributionSummary total_kwh;
  metrics::DistributionSummary mean_utilization;
  metrics::DistributionSummary median_wait_minutes;
  metrics::DistributionSummary violation_fraction;
  metrics::DistributionSummary jobs_completed;
  metrics::DistributionSummary makespan_hours;

  /// "value ±spread" convenience for one summary.
  static std::string format(const metrics::DistributionSummary& s,
                            int precision = 2);
};

/// Runs `make_config(seed)` for `replications` distinct seeds (base_seed,
/// base_seed+1, ...) on a thread pool; `customize` (may be null) installs
/// policies/suppliers per scenario before it runs.
///
/// DEPRECATED: thin compatibility wrapper over core::EnsembleEngine (one
/// point, SeedStream::kSequential — statistics are identical for the same
/// base seed). New code should use EnsembleEngine directly; it adds
/// parameter grids, decorrelated seed streams, thread-count control, and
/// JSONL output. Migration notes: DESIGN.md "From run_replicated to
/// EnsembleEngine".
ReplicatedResult run_replicated(
    const std::function<ScenarioConfig(std::uint64_t seed)>& make_config,
    const std::function<void(Scenario&)>& customize,
    std::size_t replications = 8, std::uint64_t base_seed = 1000);

}  // namespace epajsrm::core
