#include "sim/logger.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace epajsrm::sim {
namespace {

struct Captured {
  LogLevel level;
  std::string line;
};

Logger make_logger(std::vector<Captured>& out, SimTime now = 0,
                   LogLevel threshold = LogLevel::kTrace) {
  Logger logger([now] { return now; }, threshold);
  logger.set_sink([&out](LogLevel level, const std::string& line) {
    out.push_back({level, line});
  });
  return logger;
}

TEST(Logger, EmitsAtOrAboveThreshold) {
  std::vector<Captured> out;
  Logger logger = make_logger(out, 0, LogLevel::kInfo);
  logger.debug("c", "dropped");
  logger.info("c", "kept");
  logger.error("c", "kept too");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].level, LogLevel::kInfo);
  EXPECT_EQ(out[1].level, LogLevel::kError);
}

TEST(Logger, LineContainsTimestampLevelComponentMessage) {
  std::vector<Captured> out;
  Logger logger = make_logger(out, 3 * kHour + 25 * kMinute);
  logger.warn("sched", "queue is deep");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].line.find("03:25:00"), std::string::npos);
  EXPECT_NE(out[0].line.find("WARN"), std::string::npos);
  EXPECT_NE(out[0].line.find("[sched]"), std::string::npos);
  EXPECT_NE(out[0].line.find("queue is deep"), std::string::npos);
}

TEST(Logger, ClocklessLoggerUsesPlaceholder) {
  std::vector<Captured> out;
  Logger logger;
  logger.set_threshold(LogLevel::kTrace);
  logger.set_sink([&out](LogLevel level, const std::string& line) {
    out.push_back({level, line});
  });
  logger.info("x", "msg");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].line.find("--:--:--"), std::string::npos);
}

TEST(Logger, ThresholdOffSilencesEverything) {
  std::vector<Captured> out;
  Logger logger = make_logger(out, 0, LogLevel::kOff);
  logger.error("x", "even errors");
  EXPECT_TRUE(out.empty());
}

TEST(Logger, ThresholdAdjustable) {
  std::vector<Captured> out;
  Logger logger = make_logger(out, 0, LogLevel::kError);
  logger.info("x", "dropped");
  logger.set_threshold(LogLevel::kDebug);
  logger.debug("x", "kept");
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(logger.threshold(), LogLevel::kDebug);
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace epajsrm::sim
