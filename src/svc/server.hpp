// The epajsrmd socket front end: accepts connections on the shared net
// carrier and speaks the svc protocol (one request line in, one envelope
// plus counted payload lines out — see protocol.hpp).
//
// One thread per connection; every connection multiplexes any number of
// sequential requests. The shutdown op (or stop()) closes the listener,
// which unblocks the accept loop; serve() then joins the connection
// threads and returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/carrier.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

namespace epajsrm::svc {

struct ServerConfig {
  /// "PORT", "tcp:PORT" (0 = ephemeral) or "unix:PATH".
  std::string endpoint = "tcp:0";
  /// When non-empty, the service metrics registry is written here in
  /// Prometheus text format after every stats request and at shutdown.
  std::string prom_out;
};

class Server {
 public:
  explicit Server(ServiceConfig service_config = {}, ServerConfig config = {},
                  TemplateStore templates = TemplateStore::with_builtins());

  /// Bound TCP port (0 for unix endpoints) — lets tests bind port 0 and
  /// discover the real port.
  std::uint16_t port() const { return listener_.port(); }
  std::string describe() const { return listener_.describe(); }

  ScenarioService& service() { return service_; }

  /// Accept loop; blocks until a shutdown request or stop(). Joins every
  /// connection thread before returning.
  void serve();

  /// Thread-safe: unblocks serve(). Connections still being served finish
  /// their current request and end when the peer disconnects.
  void stop();

 private:
  void handle_connection(net::LineChannel channel);
  /// One request line -> one response (envelope + payload) on `channel`.
  /// Returns false when the request was a shutdown.
  bool handle_line(const std::string& line, net::LineChannel& channel);
  void write_response(net::LineChannel& channel, const Envelope& envelope,
                      const std::vector<std::string>& payload);
  void write_prom_file();

  ScenarioService service_;
  ServerConfig config_;
  net::Listener listener_;
  std::atomic<bool> stopping_{false};
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
};

}  // namespace epajsrm::svc
