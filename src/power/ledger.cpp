#include "power/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "check/contract.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/wall.hpp"
#include "power/node_power_model.hpp"

namespace epajsrm::power {

namespace {

/// Times the enclosing scope into a histogram (nanoseconds) when one is
/// passed; a null histogram makes the guard free apart from two branches.
class ScopedPostTimer {
 public:
  explicit ScopedPostTimer(obs::Histogram* hist)
      : hist_(hist), t0_(hist != nullptr ? obs::wall_now_ns() : 0) {}
  ~ScopedPostTimer() {
    if (hist_ != nullptr) {
      hist_->observe(static_cast<double>(obs::wall_now_ns() - t0_));
    }
  }
  ScopedPostTimer(const ScopedPostTimer&) = delete;
  ScopedPostTimer& operator=(const ScopedPostTimer&) = delete;

 private:
  obs::Histogram* hist_;
  std::int64_t t0_;
};

}  // namespace

std::int64_t PowerLedger::to_fixed(double watts) {
  return std::llround(watts * kScale);
}

PowerLedger::PowerLedger(const platform::Cluster& cluster) {
  const std::uint32_t n = cluster.node_count();
  rack_of_.reserve(n);
  pdu_of_.reserve(n);
  cooling_of_.reserve(n);

  std::uint32_t racks = 0;
  for (const platform::Node& node : cluster.nodes()) {
    rack_of_.push_back(node.rack());
    pdu_of_.push_back(node.pdu());
    cooling_of_.push_back(node.cooling_loop());
    racks = std::max(racks, node.rack() + 1);
  }

  watts_.assign(n, 0.0);
  demand_.assign(n, 0.0);
  cap_.assign(n, 0.0);
  worst_.assign(n, 0.0);
  peak_.assign(n, 0.0);
  temp_.assign(n, 0.0);
  state_.assign(n, platform::NodeState::kIdle);
  allocated_.assign(n, 0);
  version_.assign(n, 0);
  dirty_flag_.assign(n, 0);

  rack_q_.assign(racks, 0);
  rack_cap_q_.assign(racks, 0);
  rack_capped_.assign(racks, 0);
  rack_nodes_.assign(racks, 0);
  pdu_q_.assign(cluster.facility().pdus().size(), 0);
  pdu_peak_q_.assign(cluster.facility().pdus().size(), 0);
  cooling_q_.assign(cluster.facility().cooling_loops().size(), 0);

  // Seed per-node state from the node sensor caches so the ledger is
  // consistent with the cluster from the first instant, model or not.
  for (const platform::Node& node : cluster.nodes()) {
    const platform::NodeId id = node.id();
    EPAJSRM_REQUIRE(node.pdu() < pdu_q_.size(), "node PDU outside facility");
    EPAJSRM_REQUIRE(node.cooling_loop() < cooling_q_.size(),
                    "node cooling loop outside facility");
    watts_[id] = node.current_watts();
    demand_[id] = node.current_watts();
    cap_[id] = node.power_cap_watts();
    worst_[id] = cap_[id] > 0.0 ? cap_[id] : 0.0;
    temp_[id] = node.temperature_c();
    state_[id] = node.state();
    allocated_[id] = node.allocations().empty() ? 0 : 1;

    const std::int64_t w = to_fixed(watts_[id]);
    it_q_ += w;
    rack_q_[rack_of_[id]] += w;
    pdu_q_[pdu_of_[id]] += w;
    cooling_q_[cooling_of_[id]] += w;
    demand_q_ += to_fixed(demand_[id]);
    worst_q_ += to_fixed(worst_[id]);
    if (!cap_governed(state_[id])) fixed_q_ += w;
    if (allocated_[id] == 0) unalloc_q_ += w;
    if (cap_[id] > 0.0) {
      cap_sum_q_ += to_fixed(cap_[id]);
      rack_cap_q_[rack_of_[id]] += to_fixed(cap_[id]);
      ++capped_count_;
      ++rack_capped_[rack_of_[id]];
    }
    ++rack_nodes_[rack_of_[id]];
    ++state_counts_[static_cast<std::size_t>(state_[id])];
  }
  recompute_max_temp();
}

void PowerLedger::prime(platform::Cluster& cluster,
                        const NodePowerModel& model) {
  EPAJSRM_REQUIRE(cluster.node_count() == node_count(),
                  "prime against the cluster the ledger was built from");
  std::fill(pdu_peak_q_.begin(), pdu_peak_q_.end(), 0);
  for (const platform::Node& node : cluster.nodes()) {
    peak_[node.id()] = model.peak_watts(node.config());
    pdu_peak_q_[pdu_of_[node.id()]] += to_fixed(peak_[node.id()]);
  }
  // Re-apply every node: the applies post back here, folding the new peak
  // table into the worst-case aggregate and syncing every sensor cache.
  for (platform::Node& node : cluster.nodes()) {
    model.apply(node);
    post_temperature(node.id(), node.temperature_c());
  }
}

void PowerLedger::mark_dirty(platform::NodeId id) {
  if (dirty_flag_[id] == dirty_generation_) return;
  dirty_flag_[id] = dirty_generation_;
  dirty_.push_back(id);
}

void PowerLedger::clear_dirty() {
  dirty_.clear();
  ++dirty_generation_;
}

void PowerLedger::post(platform::NodeId id, const NodeSample& s) {
  obs::Histogram* timed = nullptr;
  if (post_hist_ != nullptr && ++posts_since_timed_ >= post_hist_stride_) {
    posts_since_timed_ = 0;
    timed = post_hist_;
  }
  const ScopedPostTimer timer(timed);
  EPAJSRM_REQUIRE(id < node_count(), "post for an unknown node id");
  const double new_worst = s.cap_watts > 0.0 ? s.cap_watts : peak_[id];
  if (s.watts == watts_[id] && s.demand_watts == demand_[id] &&
      s.cap_watts == cap_[id] && new_worst == worst_[id] &&
      s.state == state_[id] &&
      (s.allocated ? 1 : 0) == allocated_[id]) {
    ++posts_ignored_;
    return;
  }

  const std::int64_t old_w = to_fixed(watts_[id]);
  const std::int64_t new_w = to_fixed(s.watts);
  const std::int64_t d_w = new_w - old_w;

  it_q_ += d_w;
  rack_q_[rack_of_[id]] += d_w;
  pdu_q_[pdu_of_[id]] += d_w;
  cooling_q_[cooling_of_[id]] += d_w;
  demand_q_ += to_fixed(s.demand_watts) - to_fixed(demand_[id]);
  worst_q_ += to_fixed(new_worst) - to_fixed(worst_[id]);

  if (!cap_governed(state_[id])) fixed_q_ -= old_w;
  if (!cap_governed(s.state)) fixed_q_ += new_w;
  if (allocated_[id] == 0) unalloc_q_ -= old_w;
  if (!s.allocated) unalloc_q_ += new_w;

  const bool was_capped = cap_[id] > 0.0;
  const bool now_capped = s.cap_watts > 0.0;
  if (was_capped) {
    cap_sum_q_ -= to_fixed(cap_[id]);
    rack_cap_q_[rack_of_[id]] -= to_fixed(cap_[id]);
    --capped_count_;
    --rack_capped_[rack_of_[id]];
  }
  if (now_capped) {
    cap_sum_q_ += to_fixed(s.cap_watts);
    rack_cap_q_[rack_of_[id]] += to_fixed(s.cap_watts);
    ++capped_count_;
    ++rack_capped_[rack_of_[id]];
  }

  if (s.state != state_[id]) {
    --state_counts_[static_cast<std::size_t>(state_[id])];
    ++state_counts_[static_cast<std::size_t>(s.state)];
  }

  watts_[id] = s.watts;
  demand_[id] = s.demand_watts;
  cap_[id] = s.cap_watts;
  worst_[id] = new_worst;
  state_[id] = s.state;
  allocated_[id] = s.allocated ? 1 : 0;

  version_[id] = ++epoch_;
  ++posts_applied_;
  mark_dirty(id);
}

void PowerLedger::post_temperature(platform::NodeId id, double celsius) {
  EPAJSRM_REQUIRE(id < node_count(), "temperature post for an unknown node");
  if (celsius == temp_[id]) return;
  temp_[id] = celsius;
  ++epoch_;
  // max_temp_ is always an upper bound on every stored temperature, so a
  // post at or above it is provably the new maximum; only cooling the
  // argmax node itself can invalidate the cache.
  if (celsius >= max_temp_) {
    max_temp_ = celsius;
    max_temp_node_ = id;
    max_temp_stale_ = false;
  } else if (id == max_temp_node_) {
    max_temp_stale_ = true;
  }
}

void PowerLedger::TemperatureShard::write(platform::NodeId id,
                                          double celsius) {
  EPAJSRM_REQUIRE(id >= begin_ && id < end_,
                  "temperature write outside the shard's node range");
  // Same accept/no-op rule as post_temperature; the slice write is
  // race-free because shards tile disjoint ranges of temp_.
  if (celsius == ledger_->temp_[id]) return;
  ledger_->temp_[id] = celsius;
  ++accepted_;
  if (id == watch_node_) watch_changed_ = true;
  if (!has_max_ || celsius >= max_c_) {
    max_c_ = celsius;
    max_node_ = id;
    has_max_ = true;
  }
}

PowerLedger::TemperatureShard PowerLedger::temperature_shard(
    platform::NodeId begin, platform::NodeId end) {
  EPAJSRM_REQUIRE(begin <= end && end <= node_count(),
                  "shard range out of bounds");
  return TemperatureShard(this, begin, end);
}

void PowerLedger::begin_temperature_epoch(
    std::vector<TemperatureShard>& shards) {
  for (auto& shard : shards) {
    EPAJSRM_REQUIRE(shard.ledger_ == this, "shard from a different ledger");
    shard.accepted_ = 0;
    shard.has_max_ = false;
    shard.max_c_ = 0.0;
    shard.max_node_ = 0;
    // Re-arm the stale-watch every epoch: out-of-band posts between
    // epochs (fault excursions) move the argmax.
    shard.watch_node_ = max_temp_node_;
    shard.watch_changed_ = false;
  }
}

void PowerLedger::merge_temperature_shards(
    const std::vector<TemperatureShard>& shards) {
  // Fixed partition-index order. Shards tile ascending node ranges and
  // write in ascending node order, so the `>=` fold reproduces the
  // classic sweep's running max exactly: the merged argmax is the last
  // node (in node order) holding the epoch's maximum accepted value.
  double epoch_max = 0.0;
  platform::NodeId epoch_argmax = 0;
  bool any = false;
  bool watch_changed = false;
  for (const auto& shard : shards) {
    EPAJSRM_REQUIRE(shard.ledger_ == this, "shard from a different ledger");
    epoch_ += shard.accepted_;
    watch_changed = watch_changed || shard.watch_changed_;
    if (shard.has_max_ && (!any || shard.max_c_ >= epoch_max)) {
      epoch_max = shard.max_c_;
      epoch_argmax = shard.max_node_;
      any = true;
    }
  }
  if (any && epoch_max >= max_temp_) {
    max_temp_ = epoch_max;
    max_temp_node_ = epoch_argmax;
    max_temp_stale_ = false;
  } else if (watch_changed) {
    // The pre-epoch argmax node changed but nothing reached the cached
    // maximum, so it necessarily cooled — the same lazy invalidation
    // post_temperature performs.
    max_temp_stale_ = true;
  }
}

void PowerLedger::recompute_max_temp() const {
  max_temp_ = -1e9;
  max_temp_node_ = 0;
  for (std::size_t i = 0; i < temp_.size(); ++i) {
    if (temp_[i] > max_temp_) {
      max_temp_ = temp_[i];
      max_temp_node_ = static_cast<platform::NodeId>(i);
    }
  }
  max_temp_stale_ = false;
}

double PowerLedger::max_temperature_c() const {
  if (max_temp_stale_) recompute_max_temp();
  return max_temp_;
}

double PowerLedger::rack_power_watts(platform::RackId rack) const {
  EPAJSRM_REQUIRE(rack < rack_q_.size(), "unknown rack id");
  return from_fixed(rack_q_[rack]);
}

double PowerLedger::pdu_power_watts(platform::PduId pdu) const {
  EPAJSRM_REQUIRE(pdu < pdu_q_.size(), "unknown PDU id");
  return from_fixed(pdu_q_[pdu]);
}

double PowerLedger::cooling_load_watts(platform::CoolingId loop) const {
  EPAJSRM_REQUIRE(loop < cooling_q_.size(), "unknown cooling loop id");
  return from_fixed(cooling_q_[loop]);
}

double PowerLedger::rack_cap_sum_watts(platform::RackId rack) const {
  EPAJSRM_REQUIRE(rack < rack_cap_q_.size(), "unknown rack id");
  return from_fixed(rack_cap_q_[rack]);
}

double PowerLedger::pdu_peak_watts(platform::PduId pdu) const {
  EPAJSRM_REQUIRE(pdu < pdu_peak_q_.size(), "unknown PDU id");
  return from_fixed(pdu_peak_q_[pdu]);
}

std::uint32_t PowerLedger::rack_capped_count(platform::RackId rack) const {
  EPAJSRM_REQUIRE(rack < rack_capped_.size(), "unknown rack id");
  return rack_capped_[rack];
}

std::uint32_t PowerLedger::rack_node_count(platform::RackId rack) const {
  EPAJSRM_REQUIRE(rack < rack_nodes_.size(), "unknown rack id");
  return rack_nodes_[rack];
}

namespace {

std::string mismatch(const char* what, double have, double want) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s: incremental %.9f W vs recomputed %.9f W", what, have,
                want);
  return buf;
}

}  // namespace

std::string PowerLedger::audit_parity() const {
  std::int64_t it = 0, demand = 0, worst = 0, fixed = 0, unalloc = 0,
               cap_sum = 0;
  std::vector<std::int64_t> rack(rack_q_.size(), 0);
  std::vector<std::int64_t> rack_cap(rack_cap_q_.size(), 0);
  std::vector<std::int64_t> pdu(pdu_q_.size(), 0);
  std::vector<std::int64_t> cooling(cooling_q_.size(), 0);
  std::vector<std::uint32_t> rack_capped(rack_capped_.size(), 0);
  std::uint32_t capped = 0;
  std::uint32_t states[7] = {};

  for (std::uint32_t id = 0; id < node_count(); ++id) {
    const std::int64_t w = to_fixed(watts_[id]);
    it += w;
    rack[rack_of_[id]] += w;
    pdu[pdu_of_[id]] += w;
    cooling[cooling_of_[id]] += w;
    demand += to_fixed(demand_[id]);
    worst += to_fixed(worst_[id]);
    if (!cap_governed(state_[id])) fixed += w;
    if (allocated_[id] == 0) unalloc += w;
    if (cap_[id] > 0.0) {
      cap_sum += to_fixed(cap_[id]);
      rack_cap[rack_of_[id]] += to_fixed(cap_[id]);
      ++capped;
      ++rack_capped[rack_of_[id]];
    }
    ++states[static_cast<std::size_t>(state_[id])];
    const double expect_worst = cap_[id] > 0.0 ? cap_[id] : peak_[id];
    if (worst_[id] != expect_worst) {
      return "node " + std::to_string(id) +
             mismatch(" worst-case", worst_[id], expect_worst);
    }
  }

  if (it != it_q_) return mismatch("it_power", from_fixed(it_q_), from_fixed(it));
  if (demand != demand_q_) {
    return mismatch("demand", from_fixed(demand_q_), from_fixed(demand));
  }
  if (worst != worst_q_) {
    return mismatch("worst_case", from_fixed(worst_q_), from_fixed(worst));
  }
  if (fixed != fixed_q_) {
    return mismatch("fixed", from_fixed(fixed_q_), from_fixed(fixed));
  }
  if (unalloc != unalloc_q_) {
    return mismatch("unallocated", from_fixed(unalloc_q_), from_fixed(unalloc));
  }
  if (cap_sum != cap_sum_q_) {
    return mismatch("cap_sum", from_fixed(cap_sum_q_), from_fixed(cap_sum));
  }
  if (capped != capped_count_) return "capped node count drifted";
  for (std::size_t r = 0; r < rack.size(); ++r) {
    if (rack[r] != rack_q_[r]) {
      return "rack " + std::to_string(r) +
             mismatch(" power", from_fixed(rack_q_[r]), from_fixed(rack[r]));
    }
    if (rack_cap[r] != rack_cap_q_[r] || rack_capped[r] != rack_capped_[r]) {
      return "rack " + std::to_string(r) + " cap aggregates drifted";
    }
  }
  std::vector<std::int64_t> pdu_peak(pdu_peak_q_.size(), 0);
  for (std::uint32_t id = 0; id < node_count(); ++id) {
    pdu_peak[pdu_of_[id]] += to_fixed(peak_[id]);
  }
  for (std::size_t p = 0; p < pdu.size(); ++p) {
    if (pdu[p] != pdu_q_[p]) {
      return "pdu " + std::to_string(p) +
             mismatch(" power", from_fixed(pdu_q_[p]), from_fixed(pdu[p]));
    }
    if (pdu_peak[p] != pdu_peak_q_[p]) {
      return "pdu " + std::to_string(p) +
             mismatch(" peak", from_fixed(pdu_peak_q_[p]),
                      from_fixed(pdu_peak[p]));
    }
  }
  for (std::size_t c = 0; c < cooling.size(); ++c) {
    if (cooling[c] != cooling_q_[c]) {
      return "cooling loop " + std::to_string(c) +
             mismatch(" load", from_fixed(cooling_q_[c]),
                      from_fixed(cooling[c]));
    }
  }
  for (std::size_t s = 0; s < 7; ++s) {
    if (states[s] != state_counts_[s]) {
      return std::string("state count drifted for ") +
             platform::to_string(static_cast<platform::NodeState>(s));
    }
  }

  double true_max = -1e9;
  for (double t : temp_) true_max = std::max(true_max, t);
  if (node_count() > 0 && max_temperature_c() != true_max) {
    return mismatch("max temperature", max_temperature_c(), true_max);
  }
  return {};
}

}  // namespace epajsrm::power
