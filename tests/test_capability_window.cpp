#include "epa/capability_window.hpp"

#include <gtest/gtest.h>

#include "core/solution.hpp"

namespace epajsrm::epa {
namespace {

platform::Cluster test_cluster() {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder().node_count(8).node_config(cfg).build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 2;
  spec.submit_time = submit;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

CapabilityWindowPolicy::Config weekly_window() {
  CapabilityWindowPolicy::Config cfg;
  cfg.large_fraction = 0.5;
  cfg.period = 7 * sim::kDay;
  cfg.window_length = sim::kDay;
  cfg.first_window = 2 * sim::kDay;
  return cfg;
}

TEST(CapabilityWindow, WindowArithmetic) {
  CapabilityWindowPolicy policy(weekly_window());
  EXPECT_FALSE(policy.in_window(0));
  EXPECT_TRUE(policy.in_window(2 * sim::kDay));
  EXPECT_TRUE(policy.in_window(2 * sim::kDay + 23 * sim::kHour));
  EXPECT_FALSE(policy.in_window(3 * sim::kDay));
  EXPECT_TRUE(policy.in_window(9 * sim::kDay + sim::kHour));  // next cycle

  EXPECT_EQ(policy.next_window(0), 2 * sim::kDay);
  EXPECT_EQ(policy.next_window(2 * sim::kDay + sim::kHour),
            2 * sim::kDay + sim::kHour);  // already inside
  EXPECT_EQ(policy.next_window(4 * sim::kDay), 9 * sim::kDay);
}

TEST(CapabilityWindow, LargeJobWaitsForWindow) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  auto policy = std::make_unique<CapabilityWindowPolicy>(weekly_window());
  CapabilityWindowPolicy* window = policy.get();
  solution.add_policy(std::move(policy));

  solution.submit(job_spec(1, 8, 2 * sim::kHour));      // large, at t=0
  solution.submit(job_spec(2, 2, sim::kHour, sim::kMinute));  // small
  solution.run_until(5 * sim::kDay);

  workload::Job* large = solution.find_job(1);
  workload::Job* small = solution.find_job(2);
  ASSERT_EQ(large->state(), workload::JobState::kCompleted);
  ASSERT_EQ(small->state(), workload::JobState::kCompleted);
  EXPECT_GE(large->start_time(), 2 * sim::kDay);   // held to the window
  EXPECT_LT(small->start_time(), sim::kHour);      // ran immediately
  EXPECT_GT(window->held_large_jobs(), 0u);
}

TEST(CapabilityWindow, JobTooLongForRemainingWindowHolds) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  CapabilityWindowPolicy::Config cfg = weekly_window();
  auto policy = std::make_unique<CapabilityWindowPolicy>(cfg);
  solution.add_policy(std::move(policy));

  // Arrives 20 h into the 24 h window with a 12 h walltime: cannot fit,
  // must wait for the next cycle.
  workload::JobSpec spec = job_spec(1, 8, 6 * sim::kHour,
                                    2 * sim::kDay + 20 * sim::kHour);
  solution.submit(spec);
  solution.run_until(12 * sim::kDay);
  workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_GE(job->start_time(), 9 * sim::kDay);
}

TEST(CapabilityWindow, NoFitCheckAllowsRiskyStart) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  CapabilityWindowPolicy::Config cfg = weekly_window();
  cfg.require_fit = false;
  solution.add_policy(std::make_unique<CapabilityWindowPolicy>(cfg));
  workload::JobSpec spec = job_spec(1, 8, 6 * sim::kHour,
                                    2 * sim::kDay + 20 * sim::kHour);
  solution.submit(spec);
  solution.run_until(4 * sim::kDay);
  EXPECT_GE(solution.find_job(1)->start_time(), 0);
  EXPECT_LT(solution.find_job(1)->start_time(), 3 * sim::kDay);
}

TEST(CapabilityWindow, SmallJobsNeverGated) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  auto policy = std::make_unique<CapabilityWindowPolicy>(weekly_window());
  CapabilityWindowPolicy* window = policy.get();
  solution.add_policy(std::move(policy));
  for (workload::JobId id = 1; id <= 6; ++id) {
    solution.submit(job_spec(id, 3, sim::kHour));  // 3/8 < 0.5: small
  }
  solution.run_until(2 * sim::kDay);
  for (workload::JobId id = 1; id <= 6; ++id) {
    EXPECT_EQ(solution.find_job(id)->state(),
              workload::JobState::kCompleted);
  }
  EXPECT_EQ(window->held_large_jobs(), 0u);
}

}  // namespace
}  // namespace epajsrm::epa
