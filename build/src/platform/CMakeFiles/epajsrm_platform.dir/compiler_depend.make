# Empty compiler generated dependencies file for epajsrm_platform.
# This may be replaced when dependencies are built.
