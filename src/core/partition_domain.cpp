#include "core/partition_domain.hpp"

#include <utility>

#include "check/contract.hpp"

namespace epajsrm::core {

namespace {
sim::PartitionedConfig engine_config(const PartitionMap& map,
                                     const PartitionDomainConfig& cfg) {
  sim::PartitionedConfig out;
  out.partitions = map.count();
  out.workers = cfg.workers;
  out.skew_window =
      cfg.skew_window > 0 ? cfg.skew_window : cfg.control_period;
  out.seed = cfg.seed;
  return out;
}
}  // namespace

PartitionDomain::PartitionDomain(platform::Cluster& cluster,
                                 power::PowerLedger& ledger,
                                 const power::ThermalModel& thermal,
                                 PartitionDomainConfig config)
    : cluster_(cluster),
      ledger_(ledger),
      thermal_(thermal),
      config_(config),
      map_(PartitionMap::build(cluster, config.partitions)),
      psim_(engine_config(map_, config)) {
  EPAJSRM_REQUIRE(config_.control_period > 0,
                  "the coupling epoch needs a positive period");
  EPAJSRM_REQUIRE(ledger_.node_count() == cluster_.node_count(),
                  "ledger and cluster must describe the same machine");
  shards_.reserve(map_.count());
  census_.resize(map_.count());
  for (std::uint32_t p = 0; p < map_.count(); ++p) {
    shards_.push_back(
        ledger_.temperature_shard(map_.node_begin(p), map_.node_end(p)));
    // One partition-local tick per coupling epoch, phase-locked to the
    // coordinator's control repeater.
    psim_.local(p).schedule_every(
        config_.control_period,
        [this, p]() -> bool {
          local_tick(p);
          return true;
        },
        "core.partition");
  }
}

void PartitionDomain::local_tick(std::uint32_t p) {
  if (config_.step_thermal) {
    thermal_.step_range(cluster_, config_.control_period, shards_[p]);
  }
  // Exact-integer core census over the owned slice; the epoch fold sums
  // these, replacing two O(N) cluster sweeps per control tick — the
  // Amdahl term that would otherwise cap partition scaling.
  Census census;
  for (platform::NodeId id = map_.node_begin(p); id < map_.node_end(p);
       ++id) {
    const platform::Node& node = cluster_.node(id);
    if (node.schedulable()) {
      census.total += node.cores_total();
      census.free += node.cores_free();
    }
  }
  census_[p] = census;
}

void PartitionDomain::run_epoch(sim::SimTime t) {
  EPAJSRM_REQUIRE(!in_local_phase(), "epochs do not nest");
  ledger_.begin_temperature_epoch(shards_);
  psim_.run_epoch(t);
  // Merge in fixed partition-index order — with PDU-aligned contiguous
  // ranges this equals node order, so the result is bit-identical to the
  // classic sequential sweep.
  ledger_.merge_temperature_shards(shards_);
  cores_total_ = 0;
  cores_free_ = 0;
  for (const Census& census : census_) {
    cores_total_ += census.total;
    cores_free_ += census.free;
  }
  ++epochs_;
  for (const EpochObserver& observer : observers_) observer(*this);
}

double PartitionDomain::core_utilization() const {
  // Same expression as Cluster::core_utilization(), fed by the folded
  // exact integers: identical double for any partition count.
  if (cores_total_ == 0) return 0.0;
  return 1.0 -
         static_cast<double>(cores_free_) / static_cast<double>(cores_total_);
}

void PartitionDomain::add_epoch_observer(EpochObserver observer) {
  if (observer) observers_.push_back(std::move(observer));
}

}  // namespace epajsrm::core
