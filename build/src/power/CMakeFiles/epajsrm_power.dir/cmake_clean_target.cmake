file(REMOVE_RECURSE
  "libepajsrm_power.a"
)
