// Fixture: mutable namespace-scope shared state. Must trip
// mutable-global; the const companion is inventoried but not flagged.
namespace fixture {

constexpr int kMaxRetries = 3;

int g_tick_counter = 0;

}  // namespace fixture
