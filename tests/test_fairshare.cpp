#include "sched/fairshare.hpp"

#include <gtest/gtest.h>

namespace epajsrm::sched {
namespace {

TEST(FairShare, UnknownUserHasZeroUsage) {
  FairShareTracker t;
  EXPECT_DOUBLE_EQ(t.usage("nobody", 0), 0.0);
  EXPECT_DOUBLE_EQ(t.usage_factor("nobody", 0), 0.0);
}

TEST(FairShare, UsageAccumulates) {
  FairShareTracker t;
  t.record_usage("alice", 100.0, 0);
  t.record_usage("alice", 50.0, 0);
  EXPECT_DOUBLE_EQ(t.usage("alice", 0), 150.0);
}

TEST(FairShare, HalfLifeDecay) {
  FairShareTracker t(sim::kDay);
  t.record_usage("alice", 100.0, 0);
  EXPECT_NEAR(t.usage("alice", sim::kDay), 50.0, 1e-9);
  EXPECT_NEAR(t.usage("alice", 2 * sim::kDay), 25.0, 1e-9);
}

TEST(FairShare, DecayAppliedOnRecordToo) {
  FairShareTracker t(sim::kDay);
  t.record_usage("alice", 100.0, 0);
  t.record_usage("alice", 10.0, sim::kDay);
  EXPECT_NEAR(t.usage("alice", sim::kDay), 60.0, 1e-9);
}

TEST(FairShare, FactorNormalisesToHeaviestUser) {
  FairShareTracker t;
  t.record_usage("heavy", 1000.0, 0);
  t.record_usage("light", 250.0, 0);
  EXPECT_DOUBLE_EQ(t.usage_factor("heavy", 0), 1.0);
  EXPECT_DOUBLE_EQ(t.usage_factor("light", 0), 0.25);
}

TEST(FairShare, ZeroHalfLifeMeansNoDecay) {
  FairShareTracker t(0);
  t.record_usage("alice", 100.0, 0);
  EXPECT_DOUBLE_EQ(t.usage("alice", 30 * sim::kDay), 100.0);
}

TEST(EffectivePriority, PenalisesHeavyUsers) {
  EXPECT_DOUBLE_EQ(effective_priority(0, 0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(effective_priority(0, 1.0, 2.0), -2.0);
  EXPECT_DOUBLE_EQ(effective_priority(2, 0.5, 2.0), 1.0);
}

TEST(EffectivePriority, HighStaticPriorityCanOutweighUsage) {
  EXPECT_GT(effective_priority(2, 1.0, 1.0),
            effective_priority(0, 0.0, 1.0));
}

}  // namespace
}  // namespace epajsrm::sched
