#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace epajsrm::sim {
namespace {

TEST(Simulation, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulation, RunAdvancesClockToEventTimes) {
  Simulation sim;
  std::vector<SimTime> observed;
  sim.schedule_at(10, [&] { observed.push_back(sim.now()); });
  sim.schedule_at(25, [&] { observed.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(observed, (std::vector<SimTime>{10, 25}));
  EXPECT_EQ(sim.now(), 25);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(21, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(30);
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulation, StopTerminatesRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, CancelPendingEvent) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, ScheduleEveryRepeatsUntilFalse) {
  Simulation sim;
  int ticks = 0;
  sim.schedule_every(10, [&]() -> bool {
    ++ticks;
    return ticks < 5;
  });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulation, EventsProcessedCounts) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulation, CascadedEventsSameTimeRunSameInstant) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] {
    order.push_back(1);
    sim.schedule_at(5, [&] { order.push_back(2); });
  });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  // Cascaded event was scheduled later, so it fires after event 3.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), 5);
}

}  // namespace
}  // namespace epajsrm::sim
