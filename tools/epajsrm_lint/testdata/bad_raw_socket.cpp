// Fixture: raw socket(2) use outside net/carrier.* must be flagged —
// both the socket-header include and the direct call.
#include <sys/socket.h>

int open_raw_channel() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  return fd;
}
