#include "telemetry/sensor.hpp"

#include <stdexcept>

namespace epajsrm::telemetry {

void SensorRegistry::add(Sensor sensor) {
  if (sensor.path.empty()) throw std::invalid_argument("empty sensor path");
  if (!sensor.read) throw std::invalid_argument("sensor needs a read fn");
  if (sensors_.contains(sensor.path)) {
    throw std::invalid_argument("duplicate sensor path: " + sensor.path);
  }
  sensors_.emplace(sensor.path, std::move(sensor));
}

double SensorRegistry::read(const std::string& path) const {
  const auto it = sensors_.find(path);
  if (it == sensors_.end()) {
    throw std::out_of_range("no such sensor: " + path);
  }
  return it->second.read();
}

bool SensorRegistry::prefix_matches(const std::string& prefix,
                                    const std::string& path) {
  if (prefix.empty()) return true;
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '.';
}

std::vector<std::string> SensorRegistry::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, sensor] : sensors_) {
    if (prefix_matches(prefix, path)) out.push_back(path);
  }
  return out;
}

double SensorRegistry::aggregate(const std::string& prefix,
                                 SensorKind kind) const {
  double sum = 0.0;
  for (const auto& [path, sensor] : sensors_) {
    if (sensor.kind == kind && prefix_matches(prefix, path)) {
      sum += sensor.read();
    }
  }
  return sum;
}

}  // namespace epajsrm::telemetry
