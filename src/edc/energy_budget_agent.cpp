#include "edc/energy_budget_agent.hpp"

namespace epajsrm::edc {

std::string EnergyBudgetAgent::name() const {
  return std::string("energy-budget-agent:") +
         epa::to_string(core_.config().mode);
}

std::vector<std::string> EnergyBudgetAgent::on_messages(
    const std::vector<std::string>& lines) {
  std::vector<std::string> replies;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const Message m = parse_message(lines[i], i + 1);
    switch (m.type) {
      case Message::Type::kSimulationBegins:
        core_.begin(m.time, m.total_nodes, m.peak_node_watts,
                    m.idle_node_watts);
        break;
      case Message::Type::kJobSubmitted:
        jobs_[m.job] = {m.submit_time, m.nodes, m.estimated_energy_joules};
        break;
      case Message::Type::kJobEnded:
        core_.job_ended(m.job, m.energy_joules);
        jobs_.erase(m.job);
        break;
      case Message::Type::kBudgetTick:
      case Message::Type::kPowerBudgetChanged:
      case Message::Type::kSimulationEnds:
        // Accrual is lazy (anchored on pass times) and the cap is the
        // kernel's own output echoed back — nothing to mirror.
        break;
      case Message::Type::kSchedulingPass: {
        epa::EnergyBudgetCore::PassInput input;
        input.now = m.time;
        input.free_nodes = m.free_nodes;
        input.pending.reserve(m.pending.size());
        for (platform::JobId id : m.pending) {
          const auto it = jobs_.find(id);
          if (it == jobs_.end()) {
            throw ProtocolError(i + 1,
                                "scheduling_pass references unknown job " +
                                    std::to_string(id));
          }
          input.pending.push_back({id, it->second.submit_time,
                                   it->second.nodes,
                                   it->second.estimated_energy_joules});
        }
        for (const epa::EnergyBudgetCore::Decision& decision :
             core_.decide(input)) {
          Reply reply;
          if (decision.type ==
              epa::EnergyBudgetCore::Decision::Type::kStartJob) {
            reply.type = Reply::Type::kStartJob;
            reply.job = decision.job;
          } else {
            reply.type = Reply::Type::kSetPowerCap;
            reply.watts = decision.watts;
          }
          replies.push_back(serialize(reply));
        }
        break;
      }
    }
  }
  return replies;
}

}  // namespace epajsrm::edc
