// Exposition layer: renders the obs plane's state for external consumers.
//
// Two formats (DESIGN.md §11):
//   - Prometheus text exposition (v0.0.4): counters, gauges and
//     log-bucketed histograms (cumulative `_bucket{le=...}` series plus
//     `_sum`/`_count`), suitable for scraping or for pushing through a
//     textfile collector. Metric names are sanitised to the Prometheus
//     grammar.
//   - RunReport: one self-contained JSON document (schema
//     `epajsrm.run_report.v1`) bundling headline scalars, retained
//     DownsamplingSeries, histograms with exact-bound p50/p90/p99, and —
//     for ensemble runs — per-shard merge provenance in the fixed shard
//     order the merge folded over. An optional HTML rendering inlines the
//     same data as summary tables (no external assets).
//
// The builder copies everything it is given: reports outlive the
// simulation state they describe.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/series.hpp"

namespace epajsrm::obs {

/// Writes `frame` in Prometheus text exposition format.
void write_prometheus(const MetricsFrame& frame, std::ostream& out);

/// Convenience: exports and writes a live registry.
void write_prometheus(const MetricsRegistry& registry, std::ostream& out);

/// Provenance of one shard that contributed to a merged metrics frame.
/// `merge_order` is the fixed shard index the deterministic merge folded
/// in — the determinism argument rests on this order being a pure function
/// of the grid, never of thread scheduling.
struct ReportShard {
  std::string label;
  std::uint64_t seed = 0;
  std::uint64_t sim_events = 0;
  std::size_t metric_count = 0;
  std::size_t merge_order = 0;
};

/// Accumulates one run's (or one merged ensemble's) observable output and
/// renders it as JSON or HTML.
class RunReportBuilder {
 public:
  explicit RunReportBuilder(std::string label) : label_(std::move(label)) {}

  /// Adds a headline scalar (kWh, utilisation, ...). Insertion order is
  /// preserved in the output.
  void add_scalar(const std::string& name, double value) {
    scalars_.emplace_back(name, value);
  }

  /// Adds a retained series (copied).
  void add_series(const std::string& name, const DownsamplingSeries& series) {
    series_.emplace_back(name, series);
  }

  /// Sets the metrics frame (counters/gauges/histograms).
  void set_metrics(MetricsFrame frame) {
    metrics_ = std::move(frame);
    have_metrics_ = true;
  }

  /// `merged` marks the frame as a cross-shard merge (vs a single run).
  void set_merged(bool merged) { merged_ = merged; }

  /// Appends one shard's provenance, in merge order.
  void add_shard(ReportShard shard) { shards_.push_back(std::move(shard)); }

  /// Single self-contained JSON document.
  void write_json(std::ostream& out) const;

  /// Single self-contained HTML page with inline summary tables.
  void write_html(std::ostream& out) const;

 private:
  std::string label_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, DownsamplingSeries>> series_;
  MetricsFrame metrics_;
  bool have_metrics_ = false;
  bool merged_ = false;
  std::vector<ReportShard> shards_;
};

}  // namespace epajsrm::obs
