// BudgetSource: the one way a power budget enters an EPA policy.
//
// Every budget-enforcing policy answers power_budget_watts(now), but the
// pre-unification implementations disagreed on where the number came from:
// fixed constructor doubles, ad-hoc set_budget_watts setters, install-time
// sums. A BudgetSource makes the budget an explicit, time-varying input so
// tariff windows (Kiselev et al., arXiv 2111.08978), facility rebalancing
// and external-decision-component `set_power_cap` replies plug into every
// policy uniformly.
//
// Migration notes (the old setters are deprecated, not removed):
//   * DynamicPowerSharePolicy::set_budget_watts / PowerBudgetDvfsPolicy::
//     set_budget_watts keep working when the policy was constructed from a
//     plain watts value (they mutate the implicit MutableBudgetSource and
//     notify the host so a scheduling pass fires promptly). Constructing
//     from an explicit non-mutable source makes them throw
//     std::logic_error — mutate the source instead.
//   * New code should construct policies from a shared BudgetSource:
//     a FixedBudgetSource for constants, a ScheduleBudgetSource for
//     tariff/capability windows, a MutableBudgetSource for budgets driven
//     at runtime (admin knobs, facility coordinators, EDC replies).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::epa {

class PolicyHost;

/// A time-varying IT power budget. 0 watts means "no budget" (uncapped) —
/// the same convention EpaPolicy::power_budget_watts has always used.
class BudgetSource {
 public:
  virtual ~BudgetSource() = default;

  /// The budget in force at `now`.
  virtual double watts_at(sim::SimTime now) const = 0;

  virtual std::string describe() const = 0;
};

/// A constant budget.
class FixedBudgetSource final : public BudgetSource {
 public:
  explicit FixedBudgetSource(double watts);

  double watts_at(sim::SimTime) const override { return watts_; }
  std::string describe() const override;

 private:
  double watts_;
};

/// A piecewise-constant budget schedule — tariff windows, capability
/// windows, planned demand-response setbacks. Windows activate at their
/// `from` time and stay in force until the next one.
class ScheduleBudgetSource final : public BudgetSource {
 public:
  struct Window {
    sim::SimTime from = 0;
    double watts = 0.0;
  };

  /// `initial_watts` applies before the first window. Windows are sorted
  /// by `from`; duplicate `from` keeps the later entry.
  ScheduleBudgetSource(double initial_watts, std::vector<Window> windows);

  double watts_at(sim::SimTime now) const override;
  std::string describe() const override;

 private:
  double initial_watts_;
  std::vector<Window> windows_;
};

/// A budget driven at runtime (admin knob, facility coordinator share,
/// EDC `set_power_cap`). An optional listener observes changes — the core
/// wires it to its budget-changed decision point so mutations provoke a
/// prompt scheduling pass instead of waiting for the next periodic tick.
/// The listener must outlive the source (or be cleared before it dies).
class MutableBudgetSource final : public BudgetSource {
 public:
  explicit MutableBudgetSource(double initial_watts);

  double watts_at(sim::SimTime) const override { return watts_; }
  std::string describe() const override;

  /// Updates the budget; invokes the listener when the value moved.
  void set_watts(double watts);

  void set_listener(std::function<void(double)> listener) {
    listener_ = std::move(listener);
  }

 private:
  double watts_;
  std::function<void(double)> listener_;
};

/// Embeddable helper: resolves a policy's budget each consultation and
/// reports movements to the host exactly once per change (the host turns
/// that into a kPowerBudgetChanged decision point + prompt pass).
class BudgetTracker {
 public:
  explicit BudgetTracker(std::shared_ptr<BudgetSource> source);

  double watts_at(sim::SimTime now) const { return source_->watts_at(now); }

  /// Resolves the budget at `now`; when it moved since the last refresh,
  /// notifies `host` (null host: just tracks).
  double refresh(sim::SimTime now, PolicyHost* host);

  BudgetSource& source() { return *source_; }
  const BudgetSource& source() const { return *source_; }
  const std::shared_ptr<BudgetSource>& shared() const { return source_; }

 private:
  std::shared_ptr<BudgetSource> source_;
  double last_watts_ = -1.0;  // -1 = never resolved
};

}  // namespace epajsrm::epa
