// The socket carrier: the one place in the tree that touches raw
// socket(2) / bind / listen / accept / connect (the raw-socket lint rule
// confines those calls to net/carrier.*). Everything above it — the EDC
// socket transport, the epajsrmd scenario server, the client CLI — works
// in terms of line-framed channels and batches of lines.
//
// Framing: a batch is a sequence of non-empty lines terminated by one
// empty line. Protocol lines are JSON objects (net/jsonl.hpp) and can
// never be empty, so the terminator is unambiguous. Both directions of
// every protocol built on the carrier use the same framing.
//
// Dependency-free POSIX sockets, loopback TCP and unix-domain only —
// this is a service boundary for co-located processes, not an exposed
// network listener.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace epajsrm::net {

/// A carrier-level failure (connect refused, bind in use, peer reset).
class CarrierError : public std::runtime_error {
 public:
  explicit CarrierError(const std::string& detail)
      : std::runtime_error("net: " + detail) {}
};

/// One connected byte stream with line framing. Reads are buffered;
/// writes are flushed per batch. Not thread-safe: one channel belongs to
/// one conversation.
class LineChannel {
 public:
  /// Takes ownership of a connected file descriptor.
  explicit LineChannel(int fd);
  ~LineChannel();

  LineChannel(LineChannel&& other) noexcept;
  LineChannel& operator=(LineChannel&& other) noexcept;
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  bool open() const { return fd_ >= 0; }

  /// Reads one '\n'-terminated line (the newline is stripped). Returns
  /// false on orderly EOF with no buffered partial line; throws
  /// CarrierError on transport errors.
  bool read_line(std::string& line);

  /// Writes `line` plus a trailing newline. Throws CarrierError when the
  /// peer is gone.
  void write_line(std::string_view line);

  /// Writes a full batch: every line followed by the empty terminator
  /// line, in one buffered flush.
  void write_batch(const std::vector<std::string>& lines);

  /// Reads lines until the empty terminator line. Returns nullopt on
  /// orderly EOF before any line of a new batch arrived; throws
  /// CarrierError when the stream dies mid-batch.
  std::optional<std::vector<std::string>> read_batch();

  /// Closes the descriptor early (destruction also closes).
  void close();

 private:
  void fill_buffer();

  int fd_ = -1;
  std::string inbox_;       // bytes received, not yet consumed
  std::size_t consumed_ = 0;  // prefix of inbox_ already handed out
  bool eof_ = false;
};

/// A listening endpoint: loopback TCP (`port`, 0 = ephemeral) or a
/// unix-domain socket path.
class Listener {
 public:
  /// Binds 127.0.0.1:`port` and listens. Port 0 picks an ephemeral port;
  /// read it back with port().
  static Listener tcp(std::uint16_t port);

  /// Binds a unix-domain socket at `path` (unlinking a stale file first).
  static Listener unix_path(const std::string& path);

  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks for the next connection. Returns nullopt when the listener
  /// was closed from another thread (the orderly-shutdown path).
  std::optional<LineChannel> accept();

  /// The bound TCP port (0 for unix-domain listeners).
  std::uint16_t port() const { return port_; }

  /// Human-readable endpoint ("tcp:127.0.0.1:4117" / "unix:/run/x.sock").
  std::string describe() const { return describe_; }

  /// Unblocks accept() from any thread; subsequent accepts return nullopt.
  void close();

 private:
  Listener() = default;

  // Atomic because close() races accept() (and a second close()) by
  // design: it is the cross-thread shutdown signal.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
  std::string describe_;
  std::string unlink_path_;  // unix-domain: remove the file on close
};

/// Connects to a loopback TCP endpoint.
LineChannel connect_tcp(std::uint16_t port);

/// Connects to a unix-domain socket path.
LineChannel connect_unix(const std::string& path);

/// Parses "PORT", "tcp:PORT" or "unix:PATH" and connects accordingly.
LineChannel connect_endpoint(const std::string& endpoint);

/// Parses "PORT", "tcp:PORT" or "unix:PATH" and binds a listener (unlike
/// connect_endpoint, port 0 is allowed and picks an ephemeral port).
Listener listen_endpoint(const std::string& endpoint);

}  // namespace epajsrm::net
