# Empty dependencies file for lrz_energy_to_solution.
# This may be replaced when dependencies are built.
