// MS3, the "Mediterranean-style" thermal-aware scheduler — Borghesi et al.
// [11]: "do less when it's too hot". When the thermal environment degrades
// (hot outside air, struggling chillers), the policy reduces the machine's
// concurrent load instead of letting node temperatures run away, and
// relaxes again when the siesta is over.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Thermal-excursion-driven admission throttling.
class Ms3ThermalPolicy final : public EpaPolicy {
 public:
  struct Config {
    /// Start throttling when the hottest node exceeds this.
    double node_temp_limit_c = 75.0;
    /// Or when the outside air exceeds this (pre-emptive siesta).
    double ambient_limit_c = 32.0;
    /// While throttled, only jobs with priority >= this may start.
    int min_priority_when_hot = 2;
    /// Also push running jobs one P-state deeper while hot.
    bool deepen_pstate_when_hot = true;
    /// Hysteresis on recovery (degrees below the limit).
    double recovery_margin_c = 3.0;
  };

  Ms3ThermalPolicy() = default;
  explicit Ms3ThermalPolicy(Config config) : config_(config) {}

  std::string name() const override { return "ms3-thermal"; }

  void on_tick(sim::SimTime now) override;
  bool plan_start(StartPlan& plan) override;

  bool throttling() const { return hot_; }
  std::uint64_t vetoed_starts() const { return vetoed_; }
  sim::SimTime throttled_time() const { return throttled_time_; }

 private:
  Config config_{};
  bool hot_ = false;
  sim::SimTime last_tick_ = 0;
  sim::SimTime throttled_time_ = 0;
  std::uint64_t vetoed_ = 0;
};

}  // namespace epajsrm::epa
