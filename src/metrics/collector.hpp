// Run-level metrics: job outcomes, power-budget compliance, utilisation,
// energy and electricity cost. The collector is fed by the core solution
// during a run and produces the RunReport every bench prints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/stats.hpp"
#include "obs/metrics_registry.hpp"
#include "power/tariff.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace epajsrm::metrics {

/// End-of-run summary.
struct RunReport {
  std::string label;

  // Job outcomes.
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_killed = 0;
  DistributionSummary wait_minutes;          ///< completed jobs
  DistributionSummary bounded_slowdown;      ///< completed jobs
  DistributionSummary job_node_counts;       ///< all started jobs
  DistributionSummary job_runtime_minutes;   ///< completed jobs
  double throughput_jobs_per_day = 0.0;

  // Power / energy.
  double mean_it_watts = 0.0;
  double max_it_watts = 0.0;
  double total_it_kwh = 0.0;
  double total_facility_kwh = 0.0;
  double electricity_cost = 0.0;

  // Budget compliance (0 budget = unconstrained; violations stay 0).
  double budget_watts = 0.0;
  std::uint64_t violation_samples = 0;
  double violation_fraction = 0.0;   ///< sampled-time fraction over budget
  double worst_violation_watts = 0.0;
  double violation_kwh = 0.0;        ///< energy above the budget line

  // Utilisation.
  double mean_core_utilization = 0.0;

  // Scheduler-productivity summary statistic: completed reference
  // core-hours per megawatt-hour — "science per joule".
  double core_hours_per_mwh = 0.0;

  sim::SimTime makespan = 0;
};

/// Accumulates samples and job outcomes during one simulation run.
class MetricsCollector {
 public:
  /// `budget_watts` = the IT power budget compliance is judged against
  /// (0 = none). `tariff` prices facility energy; pass nullptr to skip
  /// cost.
  explicit MetricsCollector(double budget_watts = 0.0,
                            const power::Tariff* tariff = nullptr)
      : budget_watts_(budget_watts), tariff_(tariff) {}

  void set_label(std::string label) { label_ = std::move(label); }
  void set_budget_watts(double w) { budget_watts_ = w; }
  double budget_watts() const { return budget_watts_; }

  /// Attaches the runtime metrics registry: per-sample series (power,
  /// utilisation, budget violations, job outcomes) are published as named
  /// instruments instead of living only in this collector's private state,
  /// so the periodic sampler's CSV carries them. Pass nullptr to detach.
  void attach_registry(obs::MetricsRegistry* registry);

  /// Called once per submitted job.
  void on_job_submitted(const workload::JobSpec&) {
    ++submitted_;
    if (submitted_counter_ != nullptr) submitted_counter_->add(1);
  }

  /// Called when a job reaches a terminal state.
  void on_job_finished(const workload::Job& job);

  /// Periodic power/utilisation sample (typically from the monitoring
  /// tick). Integrates energy and cost piecewise-constantly between calls.
  void on_power_sample(sim::SimTime now, double it_watts,
                       double facility_watts, double core_utilization);

  /// Completes integration and produces the report.
  RunReport finalize(sim::SimTime end_time);

  /// Count of power samples over budget. Served from the registry counter
  /// when one is attached (single source of truth), else from the private
  /// fallback count.
  std::uint64_t violation_samples() const {
    return violation_counter_ != nullptr ? violation_counter_->value()
                                         : violation_samples_;
  }

 private:
  std::string label_;
  double budget_watts_;
  const power::Tariff* tariff_;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t killed_ = 0;
  std::vector<double> wait_minutes_;
  std::vector<double> slowdowns_;
  std::vector<double> node_counts_;
  std::vector<double> runtime_minutes_;
  double completed_core_hours_ = 0.0;

  bool have_sample_ = false;
  sim::SimTime last_sample_time_ = 0;
  double last_it_watts_ = 0.0;
  double last_facility_watts_ = 0.0;

  RunningStats it_watts_stats_;
  RunningStats utilization_stats_;
  double it_joules_ = 0.0;
  double facility_joules_ = 0.0;
  double cost_ = 0.0;
  std::uint64_t violation_samples_ = 0;
  std::uint64_t total_samples_ = 0;
  double worst_violation_ = 0.0;
  double violation_joules_ = 0.0;
  sim::SimTime first_sample_time_ = 0;

  // Registry handles (null = not attached; resolved once in
  // attach_registry so the per-sample path never does name lookups).
  obs::Counter* violation_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Counter* killed_counter_ = nullptr;
  obs::Counter* submitted_counter_ = nullptr;
  obs::Gauge* it_watts_gauge_ = nullptr;
  obs::Gauge* facility_watts_gauge_ = nullptr;
  obs::Gauge* utilization_gauge_ = nullptr;
  obs::Gauge* budget_gauge_ = nullptr;
  obs::Histogram* wait_minutes_hist_ = nullptr;
};

/// Renders the headline rows of a report (used by benches for quick dumps).
std::string format_report(const RunReport& report);

}  // namespace epajsrm::metrics
