# Empty dependencies file for bench_power_ramps.
# This may be replaced when dependencies are built.
