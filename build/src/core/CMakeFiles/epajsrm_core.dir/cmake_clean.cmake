file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_core.dir/experiment.cpp.o"
  "CMakeFiles/epajsrm_core.dir/experiment.cpp.o.d"
  "CMakeFiles/epajsrm_core.dir/facility_coordinator.cpp.o"
  "CMakeFiles/epajsrm_core.dir/facility_coordinator.cpp.o.d"
  "CMakeFiles/epajsrm_core.dir/scenario.cpp.o"
  "CMakeFiles/epajsrm_core.dir/scenario.cpp.o.d"
  "CMakeFiles/epajsrm_core.dir/solution.cpp.o"
  "CMakeFiles/epajsrm_core.dir/solution.cpp.o.d"
  "libepajsrm_core.a"
  "libepajsrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
