# Empty dependencies file for bench_geopm_balancer.
# This may be replaced when dependencies are built.
