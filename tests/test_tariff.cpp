#include "power/tariff.hpp"

#include <gtest/gtest.h>

namespace epajsrm::power {
namespace {

TEST(Tariff, FlatPriceEverywhere) {
  const Tariff t = Tariff::flat(0.12);
  EXPECT_DOUBLE_EQ(t.price_at(0), 0.12);
  EXPECT_DOUBLE_EQ(t.price_at(sim::from_hours(13.7)), 0.12);
  EXPECT_DOUBLE_EQ(t.price_at(5 * sim::kDay), 0.12);
}

TEST(Tariff, PeakOffpeakBands) {
  const Tariff t = Tariff::peak_offpeak(0.30, 0.10, 8.0, 20.0);
  EXPECT_DOUBLE_EQ(t.price_at(sim::from_hours(3.0)), 0.10);
  EXPECT_DOUBLE_EQ(t.price_at(sim::from_hours(8.0)), 0.30);
  EXPECT_DOUBLE_EQ(t.price_at(sim::from_hours(19.99)), 0.30);
  EXPECT_DOUBLE_EQ(t.price_at(sim::from_hours(20.0)), 0.10);
}

TEST(Tariff, BandsMustTile) {
  EXPECT_THROW(Tariff({}), std::invalid_argument);
  EXPECT_THROW(Tariff({{0.0, 12.0, 0.1}}), std::invalid_argument);  // gap
  EXPECT_THROW(Tariff({{0.0, 14.0, 0.1}, {12.0, 24.0, 0.2}}),
               std::invalid_argument);  // overlap
  EXPECT_THROW(Tariff({{0.0, 24.0, -0.1}}), std::invalid_argument);
  EXPECT_NO_THROW(Tariff({{0.0, 6.0, 0.1}, {6.0, 24.0, 0.2}}));
}

TEST(Tariff, CostOfConstantLoadFlat) {
  const Tariff t = Tariff::flat(0.10);
  // 2000 W for 3 h = 6 kWh at 0.10 = 0.60.
  EXPECT_NEAR(t.cost(2000.0, 0, sim::from_hours(3.0)), 0.60, 1e-9);
}

TEST(Tariff, CostCrossesBandBoundary) {
  const Tariff t = Tariff::peak_offpeak(0.30, 0.10, 8.0, 20.0);
  // 1000 W from 07:00 to 09:00: 1 h off-peak + 1 h peak.
  const double cost =
      t.cost(1000.0, sim::from_hours(7.0), sim::from_hours(9.0));
  EXPECT_NEAR(cost, 1.0 * 0.10 + 1.0 * 0.30, 1e-9);
}

TEST(Tariff, CostCrossesMidnight) {
  const Tariff t = Tariff::peak_offpeak(0.30, 0.10, 8.0, 20.0);
  // 1000 W from 23:00 to 01:00 next day: 2 h off-peak.
  const double cost =
      t.cost(1000.0, sim::from_hours(23.0), sim::from_hours(25.0));
  EXPECT_NEAR(cost, 2.0 * 0.10, 1e-9);
}

TEST(Tariff, ZeroOrNegativeInputsCostNothing) {
  const Tariff t = Tariff::flat(0.10);
  EXPECT_DOUBLE_EQ(t.cost(0.0, 0, sim::kHour), 0.0);
  EXPECT_DOUBLE_EQ(t.cost(1000.0, sim::kHour, sim::kHour), 0.0);
  EXPECT_DOUBLE_EQ(t.cost(1000.0, 2 * sim::kHour, sim::kHour), 0.0);
}

TEST(Tariff, CheapestStartAvoidsPeak) {
  const Tariff t = Tariff::peak_offpeak(0.30, 0.10, 8.0, 20.0);
  // A 2-hour run requested at 07:30 is cheapest started after 20:00 (or
  // before 06:00 the next day); definitely not in the peak.
  const sim::SimTime start =
      t.cheapest_start(1000.0, sim::from_hours(7.5), 2 * sim::kHour);
  const double chosen_cost = t.cost(1000.0, start, start + 2 * sim::kHour);
  EXPECT_NEAR(chosen_cost, 2.0 * 0.10, 1e-9);
}

TEST(Tariff, CheapestStartKeepsImmediateWhenFlat) {
  const Tariff t = Tariff::flat(0.10);
  const sim::SimTime earliest = sim::from_hours(5.0);
  EXPECT_EQ(t.cheapest_start(500.0, earliest, sim::kHour), earliest);
}

}  // namespace
}  // namespace epajsrm::power
