#include "svc/server.hpp"

#include <fstream>
#include <utility>

#include "net/jsonl.hpp"
#include "svc/protocol.hpp"

namespace epajsrm::svc {

Server::Server(ServiceConfig service_config, ServerConfig config,
               TemplateStore templates)
    : service_(service_config, std::move(templates)),
      config_(std::move(config)),
      listener_(net::listen_endpoint(config_.endpoint)) {}

void Server::serve() {
  while (true) {
    std::optional<net::LineChannel> channel = listener_.accept();
    if (!channel.has_value()) break;  // listener closed: shutdown
    const std::lock_guard<std::mutex> lk(threads_mutex_);
    threads_.emplace_back(
        [this, ch = std::move(*channel)]() mutable {
          handle_connection(std::move(ch));
        });
  }
  service_.stop();
  write_prom_file();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lk(threads_mutex_);
    workers.swap(threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void Server::stop() {
  stopping_.store(true);
  listener_.close();
}

void Server::handle_connection(net::LineChannel channel) {
  std::string line;
  try {
    while (channel.read_line(line)) {
      if (line.empty()) continue;  // tolerate stray blank lines
      if (!handle_line(line, channel)) {
        stop();
        break;
      }
    }
  } catch (const net::CarrierError&) {
    // Peer vanished mid-conversation; nothing to clean up — admitted
    // requests keep running and stay pollable from a new connection.
  }
}

bool Server::handle_line(const std::string& line, net::LineChannel& channel) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const net::LineError& e) {
    Envelope envelope;
    envelope.op = "?";
    envelope.status = "error";
    envelope.error = e.detail();
    write_response(channel, envelope, {});
    return true;
  }

  Envelope envelope;
  envelope.op = to_string(request.op);
  std::vector<std::string> payload;

  switch (request.op) {
    case Request::Op::kSubmit: {
      TemplateOverrides overrides;
      if (request.has_seed) overrides.seed = request.seed;
      if (request.has_nodes) overrides.nodes = request.nodes;
      if (request.has_job_count) overrides.job_count = request.job_count;
      if (request.has_partitions) overrides.partitions = request.partitions;
      overrides.label = request.label;
      ScenarioService::SubmitOutcome outcome;
      try {
        outcome = service_.submit_template(request.tenant,
                                           request.template_name, overrides,
                                           request.want_report);
      } catch (const std::invalid_argument& e) {
        envelope.status = "error";
        envelope.error = e.what();
        break;
      }
      if (outcome.admission != AdmissionOutcome::kAdmitted &&
          !outcome.served_from_cache) {
        envelope.status = "rejected";
        envelope.error = to_string(outcome.admission);
        envelope.retry_after_ms = outcome.retry_after_ms;
        break;
      }
      envelope.id = outcome.id;
      if (outcome.served_from_cache || request.wait) {
        const RequestStatus status = service_.wait(outcome.id);
        envelope.cached = status.cached;
        if (status.state == RequestState::kDone) {
          envelope.status = "done";
          payload = status.payload;
        } else {
          envelope.status = "error";
          envelope.error = status.error.empty()
                               ? std::string(to_string(status.state))
                               : status.error;
        }
      } else {
        envelope.status = "queued";
      }
      break;
    }
    case Request::Op::kSweep: {
      std::uint64_t rejected = 0;
      for (const std::uint64_t seed : request.seeds) {
        TemplateOverrides overrides;
        overrides.seed = seed;
        if (request.has_nodes) overrides.nodes = request.nodes;
        if (request.has_job_count) overrides.job_count = request.job_count;
        if (request.has_partitions) overrides.partitions = request.partitions;
        overrides.label = request.label;
        ScenarioService::SubmitOutcome outcome;
        try {
          outcome = service_.submit_template(request.tenant,
                                             request.template_name, overrides,
                                             request.want_report);
        } catch (const std::invalid_argument& e) {
          envelope.status = "error";
          envelope.error = e.what();
          break;
        }
        if (outcome.id != 0) {
          envelope.ids.push_back(outcome.id);
        } else {
          ++rejected;
          envelope.retry_after_ms = outcome.retry_after_ms;
        }
      }
      if (envelope.status.empty()) {
        envelope.status = rejected == 0 ? "ok" : "rejected";
        if (rejected > 0) {
          envelope.error = std::to_string(rejected) + " of " +
                           std::to_string(request.seeds.size()) +
                           " rejected";
        }
      }
      break;
    }
    case Request::Op::kPoll: {
      const RequestStatus status = service_.status(request.id);
      envelope.id = request.id;
      if (!status.known) {
        envelope.status = "error";
        envelope.error = "unknown id";
        break;
      }
      envelope.cached = status.cached;
      switch (status.state) {
        case RequestState::kDone:
          envelope.status = "done";
          payload = status.payload;
          break;
        case RequestState::kFailed:
          envelope.status = "error";
          envelope.error = status.error;
          break;
        case RequestState::kCancelled:
          envelope.status = "cancelled";
          break;
        case RequestState::kQueued:
          envelope.status = "queued";
          break;
        case RequestState::kRunning:
          envelope.status = "running";
          break;
      }
      break;
    }
    case Request::Op::kCancel:
      envelope.id = request.id;
      envelope.status = service_.cancel(request.id) ? "cancelled" : "too_late";
      break;
    case Request::Op::kStats:
      envelope.status = "ok";
      payload.push_back(serialize_stats(service_.stats()));
      write_prom_file();
      break;
    case Request::Op::kTemplates: {
      envelope.status = "ok";
      for (const std::string& name : service_.templates().names()) {
        const core::ScenarioConfig* t = service_.templates().find(name);
        net::LineWriter w;
        w.field("template", name);
        w.field("label", t->label);
        w.field("nodes", static_cast<std::uint64_t>(t->nodes));
        w.field("job_count", static_cast<std::uint64_t>(t->job_count));
        w.field("seed", t->seed);
        w.field("energy_budget",
                static_cast<std::uint64_t>(t->energy_budget ? 1 : 0));
        payload.push_back(w.finish());
      }
      break;
    }
    case Request::Op::kShutdown:
      envelope.status = "ok";
      write_response(channel, envelope, {});
      return false;
  }

  write_response(channel, envelope, payload);
  return true;
}

void Server::write_response(net::LineChannel& channel,
                            const Envelope& envelope,
                            const std::vector<std::string>& payload) {
  Envelope framed = envelope;
  framed.payload_lines = payload.size();
  channel.write_line(serialize_envelope(framed));
  for (const std::string& line : payload) channel.write_line(line);
}

void Server::write_prom_file() {
  if (config_.prom_out.empty()) return;
  const std::string text = service_.prometheus_text();
  std::ofstream out(config_.prom_out, std::ios::trunc);
  out << text;
}

}  // namespace epajsrm::svc
