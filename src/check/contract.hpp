// Runtime contract macros — the enforcement half of the correctness
// plane. The simulator's value rests on physical invariants (energy
// conservation, cap compliance, legal lifecycle transitions); contracts
// make the assumptions behind those invariants explicit at the call sites
// that could break them.
//
//   EPAJSRM_REQUIRE(cond, msg)    — precondition on the caller
//   EPAJSRM_ENSURE(cond, msg)     — postcondition on the callee
//   EPAJSRM_INVARIANT(cond, msg)  — internal state that must always hold
//
// All three throw check::ContractViolation (a std::logic_error) carrying
// the expression, file:line and message, so tests can assert on failures
// and a violation aborts the current run with a precise diagnostic rather
// than corrupting downstream accounting.
//
// Contracts compile to nothing unless EPAJSRM_ENABLE_CHECKS is defined
// (the EPAJSRM_CHECKS cmake option; on by default, off in Release
// deployment builds). Conditions must therefore be side-effect free.
//
// Header-only on purpose: every library (sim, power, rm, ...) can use the
// macros without linking anything, so contracts impose no dependency
// edges on the build graph.
#pragma once

#include <stdexcept>
#include <string>

namespace epajsrm::check {

/// What kind of contract fired; carried in the exception for reporting.
enum class ContractKind { kRequire, kEnsure, kInvariant };

/// Human-readable kind name ("precondition", ...).
inline const char* to_string(ContractKind kind) {
  switch (kind) {
    case ContractKind::kRequire:   return "precondition";
    case ContractKind::kEnsure:    return "postcondition";
    case ContractKind::kInvariant: return "invariant";
  }
  return "contract";
}

namespace detail {
inline std::string format_violation(ContractKind kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& message) {
  std::string out = to_string(kind);
  out += " failed: ";
  out += expr;
  out += " [";
  out += file;
  out += ":";
  out += std::to_string(line);
  out += "]";
  if (!message.empty()) {
    out += " - ";
    out += message;
  }
  return out;
}
}  // namespace detail

/// Thrown when a contract fails and checks are enabled.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(ContractKind kind, const char* expr, const char* file,
                    int line, const std::string& message)
      : std::logic_error(
            detail::format_violation(kind, expr, file, line, message)),
        kind_(kind), expr_(expr), file_(file), line_(line) {}

  ContractKind kind() const { return kind_; }
  const char* expr() const { return expr_; }
  const char* file() const { return file_; }
  int line() const { return line_; }

 private:
  ContractKind kind_;
  const char* expr_;
  const char* file_;
  int line_;
};

/// Failure path shared by the three macros; out of the inlined checking
/// branch so call sites stay small.
[[noreturn]] inline void fail(ContractKind kind, const char* expr,
                              const char* file, int line,
                              const std::string& message) {
  throw ContractViolation(kind, expr, file, line, message);
}

}  // namespace epajsrm::check

#if defined(EPAJSRM_ENABLE_CHECKS)

#define EPAJSRM_CONTRACT_IMPL_(kind, cond, msg)                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::epajsrm::check::fail((kind), #cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

#define EPAJSRM_REQUIRE(cond, msg) \
  EPAJSRM_CONTRACT_IMPL_(::epajsrm::check::ContractKind::kRequire, cond, msg)
#define EPAJSRM_ENSURE(cond, msg) \
  EPAJSRM_CONTRACT_IMPL_(::epajsrm::check::ContractKind::kEnsure, cond, msg)
#define EPAJSRM_INVARIANT(cond, msg) \
  EPAJSRM_CONTRACT_IMPL_(::epajsrm::check::ContractKind::kInvariant, cond, msg)

#else  // contracts compiled out

#define EPAJSRM_REQUIRE(cond, msg) ((void)0)
#define EPAJSRM_ENSURE(cond, msg) ((void)0)
#define EPAJSRM_INVARIANT(cond, msg) ((void)0)

#endif
