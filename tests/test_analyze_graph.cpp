// Include-graph builder and layer-DAG checker (tools/epajsrm_analyze)
// over synthetic file trees written into a temp dir: resolution rules
// (root-relative vs includer-relative vs angled), diamond includes,
// `..` normalization, cycle detection and dedup, DAG conformance with
// crosscut modules, allow-edges, and line-level suppressions, plus
// layers.conf validation.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "epajsrm_analyze/config.hpp"
#include "epajsrm_analyze/include_graph.hpp"
#include "epajsrm_analyze/layer_check.hpp"

namespace az = epajsrm::analyze;
namespace ts = epajsrm::toolsupport;
namespace fs = std::filesystem;

namespace {

// Writes a synthetic tree into a unique temp directory and removes it
// on teardown.
class TempTree : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::temp_directory_path() /
            (std::string("epajsrm_analyze_") + info->test_suite_name() + "_" +
             info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    ASSERT_TRUE(out.good()) << rel;
    out << content;
  }

  std::map<std::string, ts::SourceFile> load() const {
    return az::load_tree(root_, az::collect_tree(root_));
  }

  az::IncludeGraph graph() const { return az::build_include_graph(load()); }

  // Resolved targets of `from`'s include edges, in declaration order.
  static std::vector<std::string> targets(const az::IncludeGraph& g,
                                          const std::string& from) {
    std::vector<std::string> out;
    const auto it = g.edges.find(from);
    if (it == g.edges.end()) return out;
    for (const az::IncludeEdge& e : it->second) out.push_back(e.to);
    return out;
  }

  static std::vector<std::string> rules_of(const az::Findings& findings) {
    std::vector<std::string> out;
    for (const az::Finding& f : findings) out.push_back(f.rule);
    return out;
  }

  fs::path root_;
};

using IncludeGraphTest = TempTree;
using LayerCheckTest = TempTree;

TEST_F(IncludeGraphTest, CollectsOnlyAnalyzableFilesSorted) {
  write("b/impl.cpp", "");
  write("a/header.hpp", "");
  write("a/legacy.h", "");
  write("a/notes.md", "");
  write("README", "");
  const std::vector<std::string> files = az::collect_tree(root_);
  EXPECT_EQ(files, (std::vector<std::string>{"a/header.hpp", "a/legacy.h",
                                             "b/impl.cpp"}));
}

TEST_F(IncludeGraphTest, ResolvesRootRelativeAndIncluderRelativeQuotes) {
  write("sim/clock.hpp", "#pragma once\n");
  write("sim/util.hpp", "#pragma once\n");
  write("sim/engine.cpp",
        "#include \"sim/clock.hpp\"\n"   // root-relative
        "#include \"util.hpp\"\n"        // includer-relative sibling
        "#include \"missing.hpp\"\n");   // external: no edge
  const az::IncludeGraph g = graph();
  EXPECT_EQ(targets(g, "sim/engine.cpp"),
            (std::vector<std::string>{"sim/clock.hpp", "sim/util.hpp"}));
}

TEST_F(IncludeGraphTest, RootRelativeSpellingWinsOverSibling) {
  // When both resolutions exist, the canonical root-relative spelling is
  // the one the analyzer must pick.
  write("util.hpp", "#pragma once\n");
  write("sim/util.hpp", "#pragma once\n");
  write("sim/engine.cpp", "#include \"util.hpp\"\n");
  EXPECT_EQ(targets(graph(), "sim/engine.cpp"),
            (std::vector<std::string>{"util.hpp"}));
}

TEST_F(IncludeGraphTest, AngledIncludesResolveRootRelativeOnly) {
  write("sim/clock.hpp", "#pragma once\n");
  write("sim/util.hpp", "#pragma once\n");
  write("sim/engine.cpp",
        "#include <sim/clock.hpp>\n"   // root-relative: resolves
        "#include <util.hpp>\n"        // sibling form: system header, no edge
        "#include <vector>\n");
  const az::IncludeGraph g = graph();
  EXPECT_EQ(targets(g, "sim/engine.cpp"),
            (std::vector<std::string>{"sim/clock.hpp"}));
  const az::IncludeEdge& e = g.edges.at("sim/engine.cpp").front();
  EXPECT_TRUE(e.angled);
  EXPECT_EQ(e.line, 1);
}

TEST_F(IncludeGraphTest, NormalizesDotDotInRelativeIncludes) {
  write("base/core.hpp", "#pragma once\n");
  write("top/util.hpp", "#include \"../base/core.hpp\"\n");
  EXPECT_EQ(targets(graph(), "top/util.hpp"),
            (std::vector<std::string>{"base/core.hpp"}));
}

TEST_F(IncludeGraphTest, DiamondReachabilityVisitsSharedBaseOnce) {
  write("base/core.hpp", "#pragma once\n");
  write("mid/a.hpp", "#include \"base/core.hpp\"\n");
  write("mid/b.hpp", "#include \"base/core.hpp\"\n");
  write("top/use.cpp",
        "#include \"mid/a.hpp\"\n"
        "#include \"mid/b.hpp\"\n");
  const az::IncludeGraph g = graph();
  const std::set<std::string> reach = g.reachable_from("top/use.cpp");
  EXPECT_EQ(reach, (std::set<std::string>{"base/core.hpp", "mid/a.hpp",
                                          "mid/b.hpp"}));
}

TEST_F(IncludeGraphTest, IncludesInCommentsOrStringsAreIgnoredButRealOnesScan) {
  write("sim/clock.hpp", "#pragma once\n");
  write("sim/engine.cpp",
        "// #include \"sim/clock.hpp\" — commented out, still a directive?\n"
        "#include \"sim/clock.hpp\"\n");
  // The directive scan runs over raw lines (spelled paths are string
  // literals), so the commented line must be rejected by the leading-#
  // check, not by the stripper.
  EXPECT_EQ(targets(graph(), "sim/engine.cpp"),
            (std::vector<std::string>{"sim/clock.hpp"}));
}

TEST_F(IncludeGraphTest, DetectsTwoFileCycleOnce) {
  write("a/x.hpp", "#include \"a/y.hpp\"\n");
  write("a/y.hpp", "#include \"a/x.hpp\"\n");
  az::Findings findings;
  az::find_include_cycles(graph(), &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_NE(findings[0].message.find("a/x.hpp -> a/y.hpp -> a/x.hpp"),
            std::string::npos)
      << findings[0].message;
}

TEST_F(IncludeGraphTest, DetectsLongerCycleWithFullChain) {
  write("a/x.hpp", "#include \"b/y.hpp\"\n");
  write("b/y.hpp", "#include \"c/z.hpp\"\n");
  write("c/z.hpp", "#include \"a/x.hpp\"\n");
  az::Findings findings;
  az::find_include_cycles(graph(), &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(
      findings[0].message.find("a/x.hpp -> b/y.hpp -> c/z.hpp -> a/x.hpp"),
      std::string::npos)
      << findings[0].message;
}

TEST_F(IncludeGraphTest, DiamondIsNotReportedAsCycle) {
  write("base/core.hpp", "#pragma once\n");
  write("mid/a.hpp", "#include \"base/core.hpp\"\n");
  write("mid/b.hpp", "#include \"base/core.hpp\"\n");
  write("top/use.cpp",
        "#include \"mid/a.hpp\"\n"
        "#include \"mid/b.hpp\"\n");
  az::Findings findings;
  az::find_include_cycles(graph(), &findings);
  EXPECT_TRUE(findings.empty());
}

// --- layer checker ----------------------------------------------------------

az::LayerConfig parse_or_die(const std::string& text) {
  az::LayerConfig config;
  std::vector<std::string> errors;
  EXPECT_TRUE(az::parse_layer_config(text, &config, &errors));
  for (const std::string& e : errors) ADD_FAILURE() << e;
  return config;
}

TEST_F(LayerCheckTest, FlagsDagViolatingEdgeWithDeclaredDeps) {
  write("sim/clock.hpp", "#pragma once\n");
  write("power/cap.hpp", "#include \"sim/clock.hpp\"\n");
  write("sim/bad.cpp", "#include \"power/cap.hpp\"\n");
  const az::LayerConfig config = parse_or_die(
      "layer sim\n"
      "layer power : sim\n");
  az::Findings findings;
  az::check_layers(graph(), load(), config, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-violation");
  EXPECT_EQ(findings[0].file, "sim/bad.cpp");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("`sim` may not include `power`"),
            std::string::npos)
      << findings[0].message;
}

TEST_F(LayerCheckTest, DeclaredDepsSelfAndCrosscutEdgesAreAllowed) {
  write("sim/clock.hpp", "#pragma once\n");
  write("sim/engine.hpp", "#include \"sim/clock.hpp\"\n");  // self edge
  write("power/cap.hpp", "#include \"sim/clock.hpp\"\n");   // declared dep
  write("obs/probe.hpp", "#include \"power/cap.hpp\"\n");   // crosscut out
  write("power/meter.hpp", "#include \"obs/probe.hpp\"\n"); // crosscut in
  const az::LayerConfig config = parse_or_die(
      "layer sim\n"
      "layer power : sim\n"
      "crosscut obs\n");
  az::Findings findings;
  az::check_layers(graph(), load(), config, &findings);
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST_F(LayerCheckTest, AllowEdgeGrantsExactlyThatEdge) {
  write("ext/helper.hpp", "#pragma once\n");
  write("top/use.cpp", "#include \"ext/helper.hpp\"\n");
  write("ext/back.cpp", "#include \"top/use.hpp\"\n");
  write("top/use.hpp", "#pragma once\n");
  const az::LayerConfig config = parse_or_die(
      "layer top\n"
      "layer ext\n"
      "allow top -> ext\n");
  az::Findings findings;
  az::check_layers(graph(), load(), config, &findings);
  // top -> ext is sanctioned; the reverse edge ext -> top is not.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "ext/back.cpp");
  EXPECT_EQ(findings[0].rule, "layer-violation");
}

TEST_F(LayerCheckTest, SuppressionOnIncludeLineIsHonored) {
  write("ext/helper.hpp", "#pragma once\n");
  write("top/use.cpp",
        "#include \"ext/helper.hpp\"  // lint:allow(layer-violation) vendored\n");
  const az::LayerConfig config = parse_or_die(
      "layer top\n"
      "layer ext\n");
  az::Findings findings;
  az::check_layers(graph(), load(), config, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST_F(LayerCheckTest, UndeclaredModuleReportedOncePerModule) {
  write("rogue/a.hpp", "#pragma once\n");
  write("rogue/b.hpp", "#pragma once\n");
  write("sim/ok.hpp", "#pragma once\n");
  const az::LayerConfig config = parse_or_die("layer sim\n");
  az::Findings findings;
  az::check_layers(graph(), load(), config, &findings);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"undeclared-layer"}));
}

TEST_F(LayerCheckTest, RootFilesMapToRootModule) {
  write("api.hpp", "#include \"sim/clock.hpp\"\n");
  write("sim/clock.hpp", "#pragma once\n");
  const az::LayerConfig config = parse_or_die(
      "layer sim\n"
      "layer api : sim\n"
      "root-module api\n");
  az::Findings findings;
  az::check_layers(graph(), load(), config, &findings);
  EXPECT_TRUE(findings.empty());
}

// --- layers.conf validation -------------------------------------------------

TEST(LayerConfigTest, RejectsUndeclaredDependency) {
  az::LayerConfig config;
  std::vector<std::string> errors;
  EXPECT_FALSE(az::parse_layer_config("layer sim : ghost\n", &config, &errors));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("undeclared module `ghost`"), std::string::npos)
      << errors[0];
}

TEST(LayerConfigTest, RejectsDeclaredDepCycle) {
  az::LayerConfig config;
  std::vector<std::string> errors;
  EXPECT_FALSE(az::parse_layer_config(
      "layer a : b\n"
      "layer b : a\n",
      &config, &errors));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("cycle"), std::string::npos) << errors[0];
}

TEST(LayerConfigTest, RejectsMalformedDirectives) {
  az::LayerConfig config;
  std::vector<std::string> errors;
  EXPECT_FALSE(az::parse_layer_config(
      "layer\n"
      "allow a b\n"
      "warp speed\n",
      &config, &errors));
  EXPECT_EQ(errors.size(), 3u);
}

TEST(LayerConfigTest, ParsesCommentsSanctionsAndCrosscut) {
  const az::LayerConfig config = parse_or_die(
      "# full-line comment\n"
      "layer sim   # trailing comment\n"
      "layer power : sim\n"
      "crosscut obs\n"
      "allow power -> obs\n"
      "sanction-shared-state obs/\n"
      "root-module api\n");
  EXPECT_TRUE(config.declared("sim"));
  EXPECT_TRUE(config.declared("obs"));
  EXPECT_EQ(config.root_module, "api");
  EXPECT_TRUE(config.edge_allowed("power", "sim"));
  EXPECT_FALSE(config.edge_allowed("sim", "power"));
  EXPECT_TRUE(config.edge_allowed("anything", "obs"));  // crosscut
  EXPECT_TRUE(config.shared_state_sanctioned("obs/registry.hpp"));
  EXPECT_FALSE(config.shared_state_sanctioned("sim/engine.hpp"));
}

}  // namespace
