// Experiment F1 — Figure 1: "Interactions among multiple components that
// make up a typical EPA JSRM solution."
//
// The bench builds one solution containing every component class of the
// figure (job scheduler, resource manager, energy/power monitoring,
// energy/power control, physical plant, prediction) and drives a workload
// through it while every interaction edge is exercised at least once. It
// prints the component-interaction matrix with observed event counts —
// the figure's content, backed by a live run.
#include <cstdio>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "epa/demand_response.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/idle_shutdown.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace epajsrm;
  bench::BenchSummary summary("bench_fig1_interactions");

  core::ScenarioConfig config;
  config.label = "fig1";
  config.nodes = 32;
  config.job_count = 60;
  config.horizon = 20 * sim::kDay;
  config.mix = core::WorkloadMix::kCapacity;
  config.nodes_per_rack = 8;
  config.racks_per_pdu = 2;
  config.racks_per_cooling_loop = 2;
  config.solution.tariff = power::Tariff::peak_offpeak(0.30, 0.10);
  core::Scenario scenario(config);

  // Control plane: budgeted DVFS admission + dynamic power sharing +
  // idle shutdown + an ESP demand-response event mid-run. The budget sits
  // at 60 % of peak so the DVFS edge is genuinely exercised.
  const double budget = 0.6 * 32 * 290.0;
  auto dvfs = std::make_unique<epa::PowerBudgetDvfsPolicy>(budget);
  auto share = std::make_unique<epa::DynamicPowerSharePolicy>(budget);
  auto idle = std::make_unique<epa::IdleShutdownPolicy>();
  auto dr = std::make_unique<epa::DemandResponsePolicy>();
  epa::PowerBudgetDvfsPolicy* dvfs_p = dvfs.get();
  epa::DynamicPowerSharePolicy* share_p = share.get();
  epa::IdleShutdownPolicy* idle_p = idle.get();
  epa::DemandResponsePolicy* dr_p = dr.get();

  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::peak_offpeak(0.30, 0.10),
                     .startup_time = 0, .dispatchable = false});
  supply.add_event({.start = 6 * sim::kHour, .duration = sim::kHour,
                    .limit_watts = budget * 0.7,
                    .notice = 30 * sim::kMinute, .incentive_per_kwh = 0.05});
  scenario.solution().set_supply(std::move(supply));
  scenario.solution().add_policy(std::move(dvfs));
  scenario.solution().add_policy(std::move(share));
  scenario.solution().add_policy(std::move(idle));
  scenario.solution().add_policy(std::move(dr));

  const core::RunResult result = scenario.run();
  summary.add_run(result);
  const auto& monitor = scenario.solution().monitor();

  metrics::AsciiTable matrix({"From component", "To component",
                              "Interaction (Figure 1 edge)", "Observed"});
  matrix.set_title(
      "FIGURE 1 (reproduced): component interactions of the EPA JSRM "
      "solution, with event counts from a live run");
  matrix.add_row({"Users", "Job scheduler", "batch job submission",
                  std::to_string(result.report.jobs_submitted) + " jobs"});
  matrix.add_row({"Job scheduler", "Resource manager",
                  "allocate/launch decisions",
                  std::to_string(result.report.jobs_completed +
                                 result.report.jobs_killed) +
                      " placements"});
  matrix.add_row({"Job scheduler", "Job scheduler", "scheduling passes",
                  std::to_string(result.scheduling_passes) + " passes"});
  matrix.add_row({"Telemetry sensors", "Monitoring",
                  "power/thermal sampling",
                  std::to_string(monitor.tick_count()) + " ticks x " +
                      std::to_string(monitor.registry().size()) +
                      " sensors"});
  matrix.add_row({"Monitoring", "Energy/power control",
                  "budget re-division (POWsched)",
                  std::to_string(share_p->redistributions()) +
                      " redistributions"});
  matrix.add_row({"Energy/power control", "Processors (DVFS)",
                  "degraded-frequency admissions",
                  std::to_string(dvfs_p->dvfs_degraded_starts()) +
                      " jobs slowed, " +
                      std::to_string(dvfs_p->vetoed_starts()) + " held"});
  matrix.add_row({"Resource manager", "Nodes (power state)",
                  "boot / shutdown actuation",
                  std::to_string(result.node_boots) + " boots, " +
                      std::to_string(result.node_shutdowns) + " shutdowns"});
  matrix.add_row({"Electricity provider", "Energy/power control",
                  "demand-response events",
                  std::to_string(dr_p->events_honoured()) + " honoured"});
  matrix.add_row({"Monitoring", "Users", "end-of-job energy reports",
                  std::to_string(result.job_reports.size()) + " reports"});
  matrix.add_row({"Resource manager", "Physical plant",
                  "PDU/cooling dependency checks",
                  std::to_string(
                      scenario.cluster().facility().pdus().size()) +
                      " PDUs, " +
                      std::to_string(
                          scenario.cluster().facility().cooling_loops().size()) +
                      " loops wired"});
  std::printf("%s\n", matrix.render().c_str());

  std::printf("run summary: %s\n",
              metrics::format_report(result.report).c_str());
  std::printf("idle-shutdown actions: %llu off, %llu boots\n",
              static_cast<unsigned long long>(idle_p->shutdowns_requested()),
              static_cast<unsigned long long>(idle_p->boots_requested()));
  return 0;
}
