// Canonical byte-exact digest of a RunResult. Doubles are rendered as
// the hex of their bit patterns, so two digests compare equal iff every
// field is bit-identical — the determinism oracle behind the ensemble
// thread-count proof and the partitioned core's cross-partition-count
// identity checks (bench_partition_scaling, the tsan determinism suite).
#pragma once

#include <string>

#include "core/solution.hpp"

namespace epajsrm::core {

/// One deterministic line per field, kills map in sorted-key order.
/// `sim_events` is excluded by default: it counts coordinator callbacks,
/// which is partition-count invariant by design, but callers comparing
/// across *feature* configurations (obs on/off) may want it out anyway —
/// pass include_sim_events = true to pin it too.
std::string run_result_digest(const RunResult& result,
                              bool include_sim_events = true);

}  // namespace epajsrm::core
