#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace epajsrm::sim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
#if defined(__linux__)
    // Named workers make tsan/perf traces from partitioned runs
    // attributable. The kernel caps names at 15 chars + NUL; the prefix
    // leaves room for 5 digits, beyond any sane pool size.
    char name[16];
    std::snprintf(name, sizeof(name), "epajsrm-wk%u",
                  static_cast<unsigned>(i % 100000));
    pthread_setname_np(workers_.back().native_handle(), name);
#endif
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t threads) {
  if (n == 0) return;
  ThreadPool pool(threads);
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(n, pool.size());
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace epajsrm::sim
