#include "epajsrm_analyze/determinism.hpp"

#include <algorithm>

#include "epajsrm_analyze/scopes.hpp"

namespace epajsrm::analyze {

namespace ts = epajsrm::toolsupport;

namespace {

// Joins up to `n` code lines starting at `li` into one string (newlines
// become spaces) so declarations and for-headers that wrap survive.
std::string joined_window(const ts::SourceFile& sf, std::size_t li,
                          std::size_t n) {
  std::string out;
  for (std::size_t i = li; i < sf.code.size() && i < li + n; ++i) {
    out += sf.code[i];
    out += ' ';
  }
  return out;
}

// From `lt` (index of '<'), returns the first top-level template
// argument, or "" when the angle bracket never closes in the window.
std::string first_template_arg(const std::string& s, std::size_t lt) {
  int angle = 1;
  int paren = 0;
  std::size_t i = lt + 1;
  const std::size_t begin = i;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (paren > 0) continue;
    if (c == '<') ++angle;
    if (c == '>') {
      --angle;
      if (angle == 0) return s.substr(begin, i - begin);
    }
    if (c == ',' && angle == 1) return s.substr(begin, i - begin);
  }
  return "";
}

// Index just past the matching '>' for the '<' at `lt`, or npos.
std::size_t template_close(const std::string& s, std::size_t lt) {
  int angle = 1;
  int paren = 0;
  for (std::size_t i = lt + 1; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (paren > 0) continue;
    if (c == '<') ++angle;
    if (c == '>' && --angle == 0) return i + 1;
  }
  return std::string::npos;
}

// The identifier a declarator introduces after its type: skips
// cv-qualifiers, references, pointers. Returns "" when what follows is
// not a plain named declarator (e.g. a function signature).
std::string declared_name_after(const std::string& s, std::size_t from) {
  std::size_t i = from;
  while (i < s.size()) {
    i = ts::skip_ws(s, i);
    if (i < s.size() && (s[i] == '&' || s[i] == '*')) {
      ++i;
      continue;
    }
    const std::string word = ts::ident_at(s, i);
    if (word == "const" || word == "constexpr") {
      i += word.size();
      continue;
    }
    if (word.empty()) return "";
    const std::size_t after = ts::skip_ws(s, i + word.size());
    if (after < s.size() && s[after] == '(') return "";  // function
    return word;
  }
  return "";
}

// The trailing identifier of a range expression: `usage_`,
// `this->idle_since_`, `obj.member_`. Calls (trailing ')') yield "".
std::string trailing_identifier(const std::string& expr) {
  std::string e = ts::trim(expr);
  if (e.empty() || !ts::is_ident_char(e.back())) return "";
  const std::size_t b = ts::ident_start_before(e, e.size());
  return e.substr(b);
}

struct ForLoop {
  int line = 0;                 // 1-based line of the `for`
  std::string header;           // text inside the for parentheses
  bool range_based = false;
  std::string range_expr;       // text after the top-level ':'
};

// Finds every for-loop whose header starts on line `li`; wrapped
// headers are joined across up to 8 lines.
void collect_for_loops(const ts::SourceFile& sf, std::size_t li,
                       std::vector<ForLoop>* out) {
  const std::string window = joined_window(sf, li, 8);
  std::size_t search = 0;
  // Only headers that *start* on this line; later lines get their own
  // window so nothing is counted twice.
  const std::size_t line_len = sf.code[li].size();
  while (true) {
    const std::size_t kw = ts::find_word(window, "for", search);
    if (kw == std::string::npos || kw >= line_len) return;
    search = kw + 3;
    const std::size_t open = ts::skip_ws(window, kw + 3);
    if (open >= window.size() || window[open] != '(') continue;
    int depth = 0;
    std::size_t close = std::string::npos;
    std::size_t colon = std::string::npos;
    for (std::size_t i = open; i < window.size(); ++i) {
      const char c = window[i];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool double_colon =
            (i + 1 < window.size() && window[i + 1] == ':') ||
            (i > 0 && window[i - 1] == ':');
        if (!double_colon) colon = i;
      }
    }
    if (close == std::string::npos) continue;
    ForLoop loop;
    loop.line = static_cast<int>(li + 1);
    loop.header = window.substr(open + 1, close - open - 1);
    if (colon != std::string::npos) {
      loop.range_based = true;
      loop.range_expr = window.substr(colon + 1, close - colon - 1);
    }
    out->push_back(std::move(loop));
  }
}

// For the iterator form `for (auto it = x.begin(); ...)`, the iterated
// container is the receiver of `.begin()` / `->begin()`.
std::string iterator_receiver(const std::string& header) {
  const std::size_t begin = ts::find_word(header, "begin");
  if (begin == std::string::npos) return "";
  std::size_t i = begin;
  while (i > 0 && (header[i - 1] == ' ' || header[i - 1] == '\t')) --i;
  if (i >= 2 && header[i - 1] == '>' && header[i - 2] == '-') {
    i -= 2;
  } else if (i >= 1 && header[i - 1] == '.') {
    i -= 1;
  } else {
    return "";
  }
  while (i > 0 && (header[i - 1] == ' ' || header[i - 1] == '\t')) --i;
  const std::size_t b = ts::ident_start_before(header, i);
  return b < i ? header.substr(b, i - b) : "";
}

// Output/aggregation/scheduling indicators: effects whose order is
// observable. Integer accumulation is commutative and deliberately not
// listed; FP accumulation has its own rule.
const char* find_order_sensitive_effect(const std::string& code) {
  if (code.find("<<") != std::string::npos &&
      code.find("<<=") == std::string::npos) {
    return "streamed output (<<)";
  }
  for (const char* fn :
       {"printf", "fprintf", "snprintf", "sprintf", "puts", "fputs",
        "fwrite"}) {
    if (ts::contains_word(code, fn)) return "formatted output";
  }
  if (ts::contains_word(code, "push_back") ||
      ts::contains_word(code, "emplace_back")) {
    return "ordered container append";
  }
  if (code.find(".add(") != std::string::npos ||
      code.find("->add(") != std::string::npos) {
    return "metric accumulation (.add)";
  }
  std::size_t pos = code.find("schedule_");
  while (pos != std::string::npos) {
    if (pos == 0 || !ts::is_ident_char(code[pos - 1])) {
      return "event scheduling (schedule_*)";
    }
    pos = code.find("schedule_", pos + 1);
  }
  return nullptr;
}

// Loop body extent in lines: brace-delimited bodies span to the
// matching close; brace-less bodies end at the next ';'.
int loop_end_line(const ts::SourceFile& sf, int for_line) {
  int depth = 0;
  bool body_open = false;
  for (std::size_t li = static_cast<std::size_t>(for_line - 1);
       li < sf.code.size(); ++li) {
    for (const char c : sf.code[li]) {
      if (c == '{') {
        ++depth;
        body_open = true;
      }
      if (c == '}') {
        if (--depth <= 0 && body_open) return static_cast<int>(li + 1);
      }
      if (c == ';' && !body_open && depth == 0 &&
          li > static_cast<std::size_t>(for_line - 1)) {
        return static_cast<int>(li + 1);
      }
    }
  }
  return static_cast<int>(sf.code.size());
}

}  // namespace

DeclIndex index_declarations(
    const std::map<std::string, ts::SourceFile>& sources) {
  DeclIndex index;
  for (const auto& [rel, sf] : sources) {
    std::set<std::string>& unordered = index.unordered_ids[rel];
    std::set<std::string>& floats = index.float_ids[rel];
    for (std::size_t li = 0; li < sf.code.size(); ++li) {
      const std::string& line = sf.code[li];
      for (const char* container : {"unordered_map", "unordered_set"}) {
        std::size_t pos = 0;
        while ((pos = ts::find_word(line, container, pos)) !=
               std::string::npos) {
          const std::string window = joined_window(sf, li, 4);
          const std::size_t lt = ts::skip_ws(window, pos + std::string(container).size());
          pos += std::string(container).size();
          if (lt >= window.size() || window[lt] != '<') continue;
          const std::size_t after = template_close(window, lt);
          if (after == std::string::npos) continue;
          const std::string name = declared_name_after(window, after);
          if (!name.empty()) unordered.insert(name);
        }
      }
      for (const char* fp : {"double", "float"}) {
        std::size_t pos = 0;
        while ((pos = ts::find_word(line, fp, pos)) != std::string::npos) {
          const std::size_t after = pos + std::string(fp).size();
          pos = after;
          const std::string name = declared_name_after(line, after);
          if (!name.empty() && name != "const" && name != "constexpr") {
            floats.insert(name);
          }
        }
      }
    }
  }
  return index;
}

void check_determinism(const std::map<std::string, ts::SourceFile>& sources,
                       const IncludeGraph& graph, const DeclIndex& decls,
                       Findings* findings) {
  for (const auto& [rel, sf] : sources) {
    // Effective identifier sets: this file plus everything it includes,
    // so member declarations in headers resolve cross-TU.
    std::set<std::string> unordered = decls.unordered_ids.count(rel)
                                          ? decls.unordered_ids.at(rel)
                                          : std::set<std::string>{};
    std::set<std::string> floats = decls.float_ids.count(rel)
                                       ? decls.float_ids.at(rel)
                                       : std::set<std::string>{};
    for (const std::string& dep : graph.reachable_from(rel)) {
      const auto u = decls.unordered_ids.find(dep);
      if (u != decls.unordered_ids.end()) {
        unordered.insert(u->second.begin(), u->second.end());
      }
      const auto f = decls.float_ids.find(dep);
      if (f != decls.float_ids.end()) {
        floats.insert(f->second.begin(), f->second.end());
      }
    }

    ScopeWalk walk;
    bool walked = false;

    for (std::size_t li = 0; li < sf.code.size(); ++li) {
      const std::string& code = sf.code[li];

      // pointer-key-order: ordered containers keyed by a pointer sort by
      // address; ASLR makes that order differ run to run.
      for (const char* container : {"map", "set"}) {
        std::size_t pos = 0;
        while ((pos = ts::find_word(code, container, pos)) !=
               std::string::npos) {
          const std::string window = joined_window(sf, li, 3);
          const std::size_t lt =
              ts::skip_ws(window, pos + std::string(container).size());
          pos += std::string(container).size();
          if (lt >= window.size() || window[lt] != '<') continue;
          const std::string key = ts::trim(first_template_arg(window, lt));
          if (key.empty() || key.back() != '*') continue;
          if (ts::has_allow_marker(sf.raw[li], "pointer-key-order")) continue;
          findings->push_back(Finding{
              rel, static_cast<int>(li + 1), "pointer-key-order",
              "std::" + std::string(container) + " keyed by pointer (`" +
                  key + "`): iteration order is address order, which "
                  "varies across runs; key by a stable id instead"});
        }
      }

      if (ts::find_word(code, "for") == std::string::npos) continue;
      std::vector<ForLoop> loops;
      collect_for_loops(sf, li, &loops);
      for (const ForLoop& loop : loops) {
        std::string container;
        if (loop.range_based) {
          container = trailing_identifier(loop.range_expr);
        } else {
          container = iterator_receiver(loop.header);
        }
        if (container.empty() || unordered.count(container) == 0) continue;

        if (!walked) {
          walk = walk_scopes(sf);
          walked = true;
        }

        // unordered-iter: only when the enclosing function's effects make
        // the iteration order observable.
        if (!ts::has_allow_marker(sf.raw[li], "unordered-iter")) {
          const int fn = walk.function_at_line(loop.line);
          if (fn >= 0) {
            const ScopeWalk::Function& f =
                walk.functions[static_cast<std::size_t>(fn)];
            const int last = f.last_line > 0
                                 ? f.last_line
                                 : static_cast<int>(sf.code.size());
            const char* effect = nullptr;
            for (int l = f.first_line; l <= last && effect == nullptr; ++l) {
              effect = find_order_sensitive_effect(
                  sf.code[static_cast<std::size_t>(l - 1)]);
            }
            if (effect != nullptr) {
              findings->push_back(Finding{
                  rel, loop.line, "unordered-iter",
                  "iteration over unordered container `" + container +
                      "` in `" + (f.name.empty() ? "<lambda>" : f.name) +
                      "` whose effects include " + effect +
                      "; hash order is not deterministic across "
                      "partitions — use a sorted container or sort "
                      "before emitting"});
            }
          }
        }

        // float-accum-unordered: FP accumulation inside the loop body.
        const int end = loop_end_line(sf, loop.line);
        for (int l = loop.line; l <= end; ++l) {
          const std::string& body = sf.code[static_cast<std::size_t>(l - 1)];
          for (const char* op : {"+=", "-="}) {
            std::size_t p = body.find(op);
            while (p != std::string::npos) {
              std::size_t e = p;
              while (e > 0 && (body[e - 1] == ' ' || body[e - 1] == '\t')) {
                --e;
              }
              const std::size_t b = ts::ident_start_before(body, e);
              const std::string lhs = b < e ? body.substr(b, e - b) : "";
              if (!lhs.empty() && floats.count(lhs) > 0 &&
                  !ts::has_allow_marker(sf.raw[static_cast<std::size_t>(l - 1)],
                                        "float-accum-unordered")) {
                findings->push_back(Finding{
                    rel, l, "float-accum-unordered",
                    "floating-point accumulation `" + lhs + " " + op +
                        "` inside a loop over unordered container `" +
                        container + "`: FP addition is not associative, "
                        "so hash order changes the bits; accumulate into "
                        "an exact (integer/fixed-point) sum or iterate "
                        "in sorted order"});
              }
              p = body.find(op, p + 2);
            }
          }
        }
      }
    }
  }
}

}  // namespace epajsrm::analyze
