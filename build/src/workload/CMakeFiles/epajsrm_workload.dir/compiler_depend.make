# Empty compiler generated dependencies file for epajsrm_workload.
# This may be replaced when dependencies are built.
