#include "survey/questionnaire.hpp"

#include <sstream>
#include <stdexcept>

namespace epajsrm::survey {

const std::vector<Question>& questionnaire() {
  static const std::vector<Question> questions = {
      {"Q1",
       "What motivated your site's development and implementation of energy "
       "or power aware job scheduling or resource management capabilities?",
       {},
       "Determine each center's motivations and identify motives common "
       "among multiple centers.",
       {}},
      {"Q2",
       "Describe your data center and major HPC system(s) where EPA JSRM "
       "capabilities have been deployed.",
       {"Total site power budget or capacity in watts",
        "Total site cooling capacity",
        "Systems: cabinets, nodes, cores; peak performance; node "
        "architecture, network, memory; peak/average/idle power draw"},
       "Understand each center's hardware environment; any EPA JSRM "
       "approach must fit the hardware characteristics.",
       {"survey::CenterProfile", "platform::Cluster", "platform::Facility"}},
      {"Q3",
       "Describe the general workload on your HPC system(s).",
       {"Current snapshot: running job count, sizes, durations",
        "Backlog: waiting job count, sizes, durations",
        "Throughput: jobs per month",
        "Main scheduling goal; capability vs. capacity percentage",
        "Min/median/max and 10/25/75/90th percentile job size and "
        "wallclock time"},
       "Any EPA JSRM approach must also fit the workload characteristics.",
       {"workload::WorkloadGenerator", "metrics::DistributionSummary",
        "metrics::RunReport"}},
      {"Q4",
       "Describe the EPA JSRM capabilities of your large-scale HPC "
       "system(s).",
       {},
       "The specific point of the questionnaire: what is actually "
       "deployed.",
       {"epa::EpaPolicy catalog", "survey::Activity"}},
      {"Q5",
       "List and briefly describe all elements that comprise your EPA JSRM "
       "capabilities.",
       {"When was each element implemented?",
        "Are these commercially available supported products?",
        "How much non-portable/non-product work was done?"},
       "Identify vendor involvement and one-off homegrown control systems "
       "worth studying in detail.",
       {"survey::Activity::module"}},
      {"Q6",
       "Do you have application/task level joint optimization, such as "
       "topology-aware task allocation, to directly or indirectly improve "
       "energy consumption? Did you engage software development "
       "communities?",
       {},
       "A positive response indicates a very high level of sophistication "
       "in EPA JSRM techniques, usually requiring application-developer "
       "assistance.",
       {"rm::TopologyAwareAllocator", "workload::AppProfile::comm_fraction"}},
      {"Q7",
       "How well does your solution work? Advantages, disadvantages, "
       "results, benefits, unintended consequences.",
       {},
       "Each center is the subject-matter expert for its unique solution; "
       "let it assess efficacy openly.",
       {"metrics::RunReport", "core::RunResult"}},
      {"Q8",
       "What are the next steps for your EPA JSRM capability?",
       {"Continue site development and/or product deployment?",
        "Will next steps drive new procurement/NRE requirements?"},
       "Capture the trajectory: production deployments drive procurement "
       "language (as seen in petascale procurements such as SuperMUC).",
       {}},
  };
  return questions;
}

const Question& question(const std::string& id) {
  for (const Question& q : questionnaire()) {
    if (q.id == id) return q;
  }
  throw std::out_of_range("unknown question: " + id);
}

std::string format_questionnaire() {
  std::ostringstream out;
  out << "EE HPC WG EPA JSRM survey questionnaire (Section IV)\n";
  out << "====================================================\n";
  for (const Question& q : questionnaire()) {
    out << q.id << ": " << q.text << '\n';
    char item = 'a';
    for (const std::string& sub : q.sub_items) {
      out << "  (" << item++ << ") " << sub << '\n';
    }
    out << "  rationale: " << q.rationale << '\n';
    if (!q.measured_by.empty()) {
      out << "  measured in framework by:";
      for (const std::string& m : q.measured_by) out << ' ' << m << ';';
      out << '\n';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace epajsrm::survey
