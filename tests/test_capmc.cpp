#include "power/capmc.hpp"

#include <gtest/gtest.h>

#include "power/ledger.hpp"

namespace epajsrm::power {
namespace {

class CapmcTest : public ::testing::Test {
 protected:
  CapmcTest()
      : cluster_(platform::ClusterBuilder()
                     .node_count(8)
                     .node_config(node_config())
                     .pstates(platform::PstateTable::linear(2.0, 1.0, 4))
                     .build()),
        model_(cluster_.pstates()), ledger_(cluster_),
        capmc_(cluster_, model_) {
    model_.attach_ledger(&ledger_);
    ledger_.prime(cluster_, model_);
  }

  static platform::NodeConfig node_config() {
    platform::NodeConfig cfg;
    cfg.idle_watts = 100.0;
    cfg.dynamic_watts = 200.0;
    return cfg;
  }

  platform::Cluster cluster_;
  NodePowerModel model_;
  PowerLedger ledger_;
  CapmcController capmc_;
};

TEST_F(CapmcTest, NodeCapAppliesAndRefreshesPower) {
  cluster_.node(0).allocate(1, cluster_.node(0).cores_total(), 1.0);
  capmc_.set_node_cap(0, 150.0);
  EXPECT_DOUBLE_EQ(cluster_.node(0).power_cap_watts(), 150.0);
  EXPECT_NEAR(cluster_.node(0).current_watts(), 150.0, 1e-6);
  EXPECT_EQ(capmc_.capped_node_count(), 1u);
}

TEST_F(CapmcTest, GroupCapCoversAllMembers) {
  const std::vector<platform::NodeId> group{1, 3, 5};
  capmc_.set_group_cap(group, 200.0);
  EXPECT_EQ(capmc_.capped_node_count(), 3u);
  EXPECT_DOUBLE_EQ(cluster_.node(3).power_cap_watts(), 200.0);
  EXPECT_DOUBLE_EQ(cluster_.node(0).power_cap_watts(), 0.0);
}

TEST_F(CapmcTest, SystemCapDividesEvenly) {
  capmc_.set_system_cap(1600.0);
  for (const platform::Node& n : cluster_.nodes()) {
    EXPECT_DOUBLE_EQ(n.power_cap_watts(), 200.0);
  }
  EXPECT_DOUBLE_EQ(capmc_.system_cap_error(), 0.0);
  EXPECT_DOUBLE_EQ(capmc_.worst_case_watts(), 1600.0);
}

TEST_F(CapmcTest, SystemCapClampsToIdleFloor) {
  capmc_.set_system_cap(400.0);  // 50 W/node < 102 W floor
  for (const platform::Node& n : cluster_.nodes()) {
    EXPECT_NEAR(n.power_cap_watts(), 102.0, 1e-9);
  }
  EXPECT_NEAR(capmc_.system_cap_error(), 8 * 102.0 - 400.0, 1e-9);
}

TEST_F(CapmcTest, ZeroSystemCapClearsAll) {
  capmc_.set_system_cap(1600.0);
  capmc_.set_system_cap(0.0);
  EXPECT_EQ(capmc_.capped_node_count(), 0u);
}

TEST_F(CapmcTest, ClearAllRemovesCaps) {
  capmc_.set_node_cap(2, 150.0);
  capmc_.set_node_cap(4, 180.0);
  capmc_.clear_all_caps();
  EXPECT_EQ(capmc_.capped_node_count(), 0u);
  EXPECT_DOUBLE_EQ(capmc_.system_cap_error(), 0.0);
}

TEST_F(CapmcTest, WorstCaseMixesCapsAndPeaks) {
  capmc_.set_node_cap(0, 150.0);
  // 1 capped node at 150 + 7 uncapped at 300 W peak.
  EXPECT_DOUBLE_EQ(capmc_.worst_case_watts(), 150.0 + 7 * 300.0);
}

TEST_F(CapmcTest, ClearingSingleNodeCap) {
  capmc_.set_node_cap(0, 150.0);
  capmc_.set_node_cap(0, 0.0);
  EXPECT_EQ(capmc_.capped_node_count(), 0u);
  EXPECT_DOUBLE_EQ(cluster_.node(0).current_watts(),
                   node_config().idle_watts);
}

}  // namespace
}  // namespace epajsrm::power
