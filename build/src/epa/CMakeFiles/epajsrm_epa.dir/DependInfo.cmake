
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/epa/capability_window.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/capability_window.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/capability_window.cpp.o.d"
  "/root/repo/src/epa/demand_response.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/demand_response.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/demand_response.cpp.o.d"
  "/root/repo/src/epa/dynamic_power_share.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/dynamic_power_share.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/dynamic_power_share.cpp.o.d"
  "/root/repo/src/epa/emergency_response.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/emergency_response.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/emergency_response.cpp.o.d"
  "/root/repo/src/epa/energy_cost_order.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/energy_cost_order.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/energy_cost_order.cpp.o.d"
  "/root/repo/src/epa/energy_to_solution.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/energy_to_solution.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/energy_to_solution.cpp.o.d"
  "/root/repo/src/epa/group_power_cap.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/group_power_cap.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/group_power_cap.cpp.o.d"
  "/root/repo/src/epa/idle_shutdown.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/idle_shutdown.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/idle_shutdown.cpp.o.d"
  "/root/repo/src/epa/job_power_balancer.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/job_power_balancer.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/job_power_balancer.cpp.o.d"
  "/root/repo/src/epa/ms3_thermal.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/ms3_thermal.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/ms3_thermal.cpp.o.d"
  "/root/repo/src/epa/node_cycling_cap.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/node_cycling_cap.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/node_cycling_cap.cpp.o.d"
  "/root/repo/src/epa/overprovision.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/overprovision.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/overprovision.cpp.o.d"
  "/root/repo/src/epa/policy.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/policy.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/policy.cpp.o.d"
  "/root/repo/src/epa/power_budget_dvfs.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/power_budget_dvfs.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/power_budget_dvfs.cpp.o.d"
  "/root/repo/src/epa/ramp_limiter.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/ramp_limiter.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/ramp_limiter.cpp.o.d"
  "/root/repo/src/epa/source_selection.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/source_selection.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/source_selection.cpp.o.d"
  "/root/repo/src/epa/static_power_cap.cpp" "src/epa/CMakeFiles/epajsrm_epa.dir/static_power_cap.cpp.o" "gcc" "src/epa/CMakeFiles/epajsrm_epa.dir/static_power_cap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rm/CMakeFiles/epajsrm_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/epajsrm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/epajsrm_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/epajsrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/epajsrm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
