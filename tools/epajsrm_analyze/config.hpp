// layers.conf parser: the declared layer DAG plus the analyzer's
// per-tree policy knobs (exception edges, shared-state sanctions).
//
// Syntax (one directive per line, `#` starts a comment):
//
//   layer <name> [: dep1 dep2 ...]
//       Declares a module (a top-level directory under the analyzed
//       root; files directly at the root map to the module named by
//       `root-module`, default "api"). The module may include itself
//       and the listed deps. Layer deps must form a DAG.
//
//   crosscut <name>
//       Declares a cross-cutting module (observability, contracts):
//       every module may include it and it may include every module.
//       Excluded from the layer DAG; file-level include cycles are
//       still detected.
//
//   allow <from> -> <to>   # reason
//       Records a sanctioned exception edge outside the DAG. Use
//       sparingly; each carries its justification in the trailing
//       comment.
//
//   sanction-shared-state <path-prefix>
//       Mutable globals in files under this root-relative prefix are
//       inventoried but not flagged (e.g. obs/ metric registries).
//
//   root-module <name>
//       Module name for files sitting directly in the analyzed root.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "epajsrm_analyze/finding.hpp"

namespace epajsrm::analyze {

struct LayerConfig {
  // module -> allowed dependency modules (self always allowed)
  std::map<std::string, std::set<std::string>> layers;
  std::set<std::string> crosscut;
  std::set<std::pair<std::string, std::string>> allowed_edges;
  std::vector<std::string> shared_state_sanctions;
  std::string root_module = "api";

  bool declared(const std::string& module) const {
    return layers.count(module) > 0 || crosscut.count(module) > 0;
  }

  /// True when module `from` may include module `to`.
  bool edge_allowed(const std::string& from, const std::string& to) const {
    if (from == to) return true;
    if (crosscut.count(from) > 0 || crosscut.count(to) > 0) return true;
    if (allowed_edges.count({from, to}) > 0) return true;
    const auto it = layers.find(from);
    return it != layers.end() && it->second.count(to) > 0;
  }

  bool shared_state_sanctioned(const std::string& rel_path) const {
    for (const std::string& prefix : shared_state_sanctions) {
      if (rel_path.rfind(prefix, 0) == 0) return true;
    }
    return false;
  }
};

/// Parses `path`. On success returns true; on failure returns false and
/// appends line-numbered messages to `errors`. Declared-DAG validation
/// (unknown dep names, cycles among layer deps) happens here too, so a
/// bad config fails loudly before any file is scanned.
bool load_layer_config(const std::string& path, LayerConfig* config,
                       std::vector<std::string>* errors);

/// Same, over in-memory text (for tests).
bool parse_layer_config(const std::string& text, LayerConfig* config,
                        std::vector<std::string>* errors);

}  // namespace epajsrm::analyze
