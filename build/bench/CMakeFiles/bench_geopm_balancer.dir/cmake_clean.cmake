file(REMOVE_RECURSE
  "CMakeFiles/bench_geopm_balancer.dir/bench_geopm_balancer.cpp.o"
  "CMakeFiles/bench_geopm_balancer.dir/bench_geopm_balancer.cpp.o.d"
  "bench_geopm_balancer"
  "bench_geopm_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geopm_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
