#include "predict/accuracy.hpp"
#include "predict/predictor.hpp"
#include "predict/ridge.hpp"
#include "predict/tag_history.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace epajsrm::predict {
namespace {

workload::JobSpec spec_with_tag(const std::string& tag) {
  workload::JobSpec spec;
  spec.id = 1;
  spec.tag = tag;
  spec.nodes = 4;
  return spec;
}

TEST(PeakPredictor, AlwaysReturnsPeak) {
  PeakPowerPredictor p(350.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("a")), 350.0);
  p.observe(spec_with_tag("a"), 120.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("a")), 350.0);
}

TEST(TagHistory, PriorUntilObserved) {
  TagHistoryPowerPredictor p(300.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("x")), 300.0);
  p.observe(spec_with_tag("x"), 200.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("x")), 200.0);
  EXPECT_EQ(p.samples("x"), 1u);
  EXPECT_EQ(p.samples("y"), 0u);
}

TEST(TagHistory, RunningMeanConverges) {
  TagHistoryPowerPredictor p(300.0);
  p.observe(spec_with_tag("x"), 100.0);
  p.observe(spec_with_tag("x"), 200.0);
  p.observe(spec_with_tag("x"), 300.0);
  EXPECT_NEAR(p.predict_node_watts(spec_with_tag("x")), 200.0, 1e-9);
}

TEST(TagHistory, TagsAreIndependent) {
  TagHistoryPowerPredictor p(300.0);
  p.observe(spec_with_tag("x"), 100.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("y")), 300.0);
}

TEST(Ewma, AdaptsToDrift) {
  EwmaPowerPredictor p(300.0, 0.5);
  p.observe(spec_with_tag("x"), 100.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("x")), 100.0);
  p.observe(spec_with_tag("x"), 200.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("x")), 150.0);
  // Keep observing the new level: EWMA approaches it.
  for (int i = 0; i < 10; ++i) p.observe(spec_with_tag("x"), 200.0);
  EXPECT_NEAR(p.predict_node_watts(spec_with_tag("x")), 200.0, 1.0);
}

TEST(TagHistoryRuntime, TrustsUserUntilHistoryAccumulates) {
  TagHistoryRuntimePredictor p;
  workload::JobSpec spec = spec_with_tag("x");
  spec.walltime_estimate = sim::kHour;
  EXPECT_EQ(p.predict_runtime(spec), sim::kHour);
  p.observe(spec, 10 * sim::kMinute);
  p.observe(spec, 10 * sim::kMinute);
  EXPECT_EQ(p.predict_runtime(spec), sim::kHour);  // < 3 samples
  p.observe(spec, 10 * sim::kMinute);
  EXPECT_EQ(p.predict_runtime(spec), 10 * sim::kMinute);
}

TEST(TagHistoryRuntime, NeverExceedsWalltime) {
  TagHistoryRuntimePredictor p;
  workload::JobSpec spec = spec_with_tag("x");
  spec.walltime_estimate = 20 * sim::kMinute;
  for (int i = 0; i < 5; ++i) p.observe(spec, sim::kHour);
  EXPECT_EQ(p.predict_runtime(spec), 20 * sim::kMinute);
}

TEST(WalltimePredictor, ReturnsEstimate) {
  WalltimeRuntimePredictor p;
  workload::JobSpec spec = spec_with_tag("x");
  spec.walltime_estimate = 42 * sim::kMinute;
  EXPECT_EQ(p.predict_runtime(spec), 42 * sim::kMinute);
}

TEST(Ridge, PriorUntilMinSamples) {
  RidgePowerPredictor p(333.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("a")), 333.0);
}

TEST(Ridge, RecoversLinearRelationship) {
  // Ground truth: watts = 80 + 120 * intensity + 30 * beta.
  RidgePowerPredictor p(300.0, 0.01, 8);
  sim::Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    workload::JobSpec spec;
    spec.nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
    spec.walltime_estimate = sim::from_hours(rng.uniform(0.5, 12.0));
    spec.profile.power_intensity = rng.uniform(0.3, 1.0);
    spec.profile.freq_sensitive_fraction = rng.uniform(0.2, 0.9);
    spec.profile.comm_fraction = rng.uniform(0.0, 0.4);
    const double watts = 80.0 + 120.0 * spec.profile.power_intensity +
                         30.0 * spec.profile.freq_sensitive_fraction;
    p.observe(spec, watts);
  }
  workload::JobSpec probe;
  probe.nodes = 16;
  probe.walltime_estimate = sim::kHour;
  probe.profile.power_intensity = 0.8;
  probe.profile.freq_sensitive_fraction = 0.5;
  probe.profile.comm_fraction = 0.1;
  EXPECT_NEAR(p.predict_node_watts(probe), 80.0 + 96.0 + 15.0, 3.0);
}

TEST(Ridge, PredictionsHavePhysicalFloor) {
  RidgePowerPredictor p(300.0, 0.01, 2);
  workload::JobSpec spec = spec_with_tag("x");
  p.observe(spec, 1.0);
  p.observe(spec, 1.0);
  EXPECT_GE(p.predict_node_watts(spec), 1.0);
}

TEST(Ridge, ConstantFeatureColumnDoesNotDivideByZero) {
  // lambda = 0 with every sample identical makes XᵀX rank-1: the solver
  // must boost the penalty (or fall back to the prior), never crash.
  RidgePowerPredictor p(300.0, /*lambda=*/0.0, /*min_samples=*/2);
  workload::JobSpec spec = spec_with_tag("x");
  for (int i = 0; i < 10; ++i) p.observe(spec, 250.0);
  const double watts = p.predict_node_watts(spec);
  EXPECT_TRUE(std::isfinite(watts));
  EXPECT_GE(watts, 1.0);
  // Either the boosted-penalty solve landed near the data or the solver
  // declared the system degenerate and served the prior.
  if (!p.degenerate()) {
    EXPECT_NEAR(watts, 250.0, 50.0);
  }
}

TEST(Ridge, SingleSampleServesFinitePrediction) {
  RidgePowerPredictor p(300.0, 0.0, /*min_samples=*/1);
  workload::JobSpec spec = spec_with_tag("x");
  p.observe(spec, 180.0);
  EXPECT_TRUE(std::isfinite(p.predict_node_watts(spec)));
}

TEST(Ridge, WeightsStayFiniteOnDegenerateData) {
  RidgePowerPredictor p(300.0, 0.0, 1);
  workload::JobSpec spec = spec_with_tag("x");
  p.observe(spec, 100.0);
  for (const double w : p.weights()) EXPECT_TRUE(std::isfinite(w));
}

TEST(TagHistory, EmptyHistoryServesPrior) {
  TagHistoryPowerPredictor p(275.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("")), 275.0);
  EXPECT_EQ(p.samples(""), 0u);
}

TEST(TagHistory, SingleSampleIsTheMean) {
  TagHistoryPowerPredictor p(275.0);
  p.observe(spec_with_tag("solo"), 123.0);
  EXPECT_DOUBLE_EQ(p.predict_node_watts(spec_with_tag("solo")), 123.0);
}

TEST(TagHistoryRuntime, EmptyHistoryTrustsWalltime) {
  TagHistoryRuntimePredictor p;
  workload::JobSpec spec = spec_with_tag("never-seen");
  spec.walltime_estimate = 17 * sim::kMinute;
  EXPECT_EQ(p.predict_runtime(spec), 17 * sim::kMinute);
}

TEST(Accuracy, PerfectPredictionsZeroError) {
  AccuracyTracker t;
  t.add(100.0, 100.0);
  t.add(50.0, 50.0);
  EXPECT_DOUBLE_EQ(t.mape(), 0.0);
  EXPECT_DOUBLE_EQ(t.rmse(), 0.0);
  EXPECT_DOUBLE_EQ(t.bias(), 0.0);
  EXPECT_EQ(t.count(), 2u);
}

TEST(Accuracy, MetricsMatchHandComputation) {
  AccuracyTracker t;
  t.add(100.0, 110.0);  // +10 %, err +10
  t.add(200.0, 180.0);  // -10 %, err -20
  EXPECT_NEAR(t.mape(), 0.10, 1e-12);
  EXPECT_NEAR(t.mae(), 15.0, 1e-12);
  EXPECT_NEAR(t.bias(), -5.0, 1e-12);
  EXPECT_NEAR(t.rmse(), std::sqrt((100.0 + 400.0) / 2.0), 1e-12);
}

TEST(Accuracy, ZeroActualSkippedInMape) {
  AccuracyTracker t;
  t.add(0.0, 10.0);
  t.add(100.0, 120.0);
  EXPECT_NEAR(t.mape(), 0.20, 1e-12);
}

}  // namespace
}  // namespace epajsrm::predict
