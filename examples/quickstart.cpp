// Quickstart: build a small cluster, run a synthetic workload under an
// energy/power-aware stack, and print the run report plus a user-facing
// job energy report — the smallest end-to-end tour of the public API.
#include <cstdio>

#include "core/scenario.hpp"
#include "epa/idle_shutdown.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "metrics/collector.hpp"
#include "telemetry/energy_accounting.hpp"

int main() {
  using namespace epajsrm;

  // 1. Describe the experiment: a 64-node machine, ~75 % loaded, EASY
  //    backfilling (the default scheduler).
  core::ScenarioConfig config;
  config.label = "quickstart";
  config.nodes = 64;
  config.job_count = 0;  // fill the horizon
  config.seed = 7;
  core::Scenario scenario(config);

  // 2. Make it energy/power aware: a 22 kW IT power budget enforced at
  //    admission with DVFS degradation, plus idle-node shutdown.
  scenario.solution().add_policy(
      std::make_unique<epa::PowerBudgetDvfsPolicy>(22'000.0));
  scenario.solution().add_policy(std::make_unique<epa::IdleShutdownPolicy>());

  // 3. Run to completion and report.
  const core::RunResult result = scenario.run();

  std::printf("%s\n", metrics::format_report(result.report).c_str());
  std::printf("exact IT energy: %.1f kWh (overhead %.1f kWh)\n",
              result.total_it_kwh_exact, result.overhead_kwh);
  std::printf("node boots: %llu, shutdowns: %llu, scheduling passes: %llu\n",
              static_cast<unsigned long long>(result.node_boots),
              static_cast<unsigned long long>(result.node_shutdowns),
              static_cast<unsigned long long>(result.scheduling_passes));

  // 4. The per-job energy report users get at job end (Tokyo Tech /
  //    JCAHPC production capability).
  if (!result.job_reports.empty()) {
    std::printf("\nSample end-of-job report (of %zu):\n%s",
                result.job_reports.size(),
                telemetry::format_energy_report(result.job_reports.front())
                    .c_str());
  }
  return 0;
}
