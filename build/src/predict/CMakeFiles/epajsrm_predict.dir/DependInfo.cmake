
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/ridge.cpp" "src/predict/CMakeFiles/epajsrm_predict.dir/ridge.cpp.o" "gcc" "src/predict/CMakeFiles/epajsrm_predict.dir/ridge.cpp.o.d"
  "/root/repo/src/predict/tag_history.cpp" "src/predict/CMakeFiles/epajsrm_predict.dir/tag_history.cpp.o" "gcc" "src/predict/CMakeFiles/epajsrm_predict.dir/tag_history.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/epajsrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
