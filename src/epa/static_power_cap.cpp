#include "epa/static_power_cap.hpp"

#include <algorithm>
#include <vector>

namespace epajsrm::epa {

void StaticPowerCapPolicy::install(PolicyHost& host) {
  EpaPolicy::install(host);
  platform::Cluster& cluster = host.cluster();
  const std::uint32_t total = cluster.node_count();
  capped_nodes_ = static_cast<std::uint32_t>(
      std::clamp(fraction_, 0.0, 1.0) * total);

  std::vector<platform::NodeId> capped;
  capped.reserve(capped_nodes_);
  for (platform::NodeId id = 0; id < capped_nodes_; ++id) {
    capped.push_back(id);
  }
  host.set_group_cap(capped, cap_watts_);

  // The ledger's worst-case aggregate is exactly the CAPMC guarantee:
  // sum of caps over capped nodes plus model peaks over uncapped ones.
  budget_ = host.ledger().worst_case_it_watts();
}

}  // namespace epajsrm::epa
