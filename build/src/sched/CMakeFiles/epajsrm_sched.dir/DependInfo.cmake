
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/backfill.cpp" "src/sched/CMakeFiles/epajsrm_sched.dir/backfill.cpp.o" "gcc" "src/sched/CMakeFiles/epajsrm_sched.dir/backfill.cpp.o.d"
  "/root/repo/src/sched/fairshare.cpp" "src/sched/CMakeFiles/epajsrm_sched.dir/fairshare.cpp.o" "gcc" "src/sched/CMakeFiles/epajsrm_sched.dir/fairshare.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/sched/CMakeFiles/epajsrm_sched.dir/fcfs.cpp.o" "gcc" "src/sched/CMakeFiles/epajsrm_sched.dir/fcfs.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/epajsrm_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/epajsrm_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/epajsrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
