// Fixed-capacity ring-buffer time series for telemetry samples.
//
// STFC's production row is "continuously collecting power and energy
// system monitoring info, data center, machine, and job levels" — this is
// the storage primitive for that: bounded memory, append-only, windowed
// statistics for control loops (e.g. Tokyo Tech's ~30-minute enforcement
// window).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::telemetry {

/// One sample.
struct Sample {
  sim::SimTime time = 0;
  double value = 0.0;
};

/// Append-only ring buffer of (time, value) samples with windowed queries.
class TimeSeries {
 public:
  /// `capacity` bounds retained samples; older samples are overwritten.
  explicit TimeSeries(std::size_t capacity = 4096);

  /// Appends a sample; times must be non-decreasing.
  void record(sim::SimTime t, double value);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buffer_.size(); }
  bool empty() const { return size_ == 0; }

  /// Latest sample, if any.
  std::optional<Sample> latest() const;

  /// i-th retained sample, oldest first (i < size()).
  Sample at(std::size_t i) const;

  /// Statistics over samples with time in [begin, end].
  struct WindowStats {
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  WindowStats window_stats(sim::SimTime begin, sim::SimTime end) const;

  /// Mean of samples within the trailing `window` ending at the latest
  /// sample (the Tokyo Tech rolling-average the cap is enforced over).
  double trailing_mean(sim::SimTime window) const;

  /// Time-weighted integral of value·dt over the retained range, treating
  /// the series as piecewise constant (left-continuous). For power series
  /// this is energy in joule when values are watts and dt in seconds.
  double integral_seconds() const;

 private:
  std::vector<Sample> buffer_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
};

}  // namespace epajsrm::telemetry
