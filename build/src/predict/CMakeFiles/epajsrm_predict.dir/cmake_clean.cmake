file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_predict.dir/ridge.cpp.o"
  "CMakeFiles/epajsrm_predict.dir/ridge.cpp.o.d"
  "CMakeFiles/epajsrm_predict.dir/tag_history.cpp.o"
  "CMakeFiles/epajsrm_predict.dir/tag_history.cpp.o.d"
  "libepajsrm_predict.a"
  "libepajsrm_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
