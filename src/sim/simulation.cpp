#include "sim/simulation.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace epajsrm::sim {

EventId Simulation::schedule_at(SimTime t, Callback cb) {
  return queue_.push(std::max(t, now_), std::move(cb));
}

EventId Simulation::schedule_every(SimTime period, std::function<bool()> cb) {
  // Each firing reschedules itself; capturing `this` is safe because the
  // queue lives inside the Simulation.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, cb = std::move(cb), tick]() {
    if (cb()) {
      schedule_in(period, *tick);
    }
  };
  return schedule_in(period, *tick);
}

void Simulation::run_until(SimTime t) {
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= t) {
    auto popped = queue_.pop();
    now_ = popped.time;
    ++events_processed_;
    popped.callback();
  }
  if (!stopped_ && now_ < t && t != std::numeric_limits<SimTime>::max()) {
    now_ = t;
  }
}

}  // namespace epajsrm::sim
