// Experiment S6-ORDER — job-order-only energy/cost-aware scheduling
// ([4][7][28][29]): under a peak/off-peak tariff, delaying deferrable work
// into cheap hours cuts the electricity bill with no hardware control and
// no frequency changes.
#include <cstdio>

#include <memory>

#include "center_bench.hpp"

namespace {

using namespace epajsrm;

core::RunResult run_case(bool cost_aware, bool idle_shutdown,
                         const std::string& label) {
  core::Scenario scenario =
      core::Scenario::builder()
          .label(label)
          .nodes(32)
          .job_count(120)
          .horizon(30 * sim::kDay)
          .seed(23)
          .mix(core::WorkloadMix::kCapacity)
          .target_utilization(0.5)
          .configure([](core::ScenarioConfig& c) {
            c.solution.enable_thermal = false;
            c.solution.tariff =
                power::Tariff::peak_offpeak(0.35, 0.09, 8.0, 20.0);
          })
          .build();

  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::peak_offpeak(0.35, 0.09, 8.0,
                                                           20.0),
                     .startup_time = 0, .dispatchable = false});
  scenario.solution().set_supply(std::move(supply));
  if (cost_aware) {
    scenario.solution().add_policy(
        std::make_unique<epa::EnergyCostOrderPolicy>());
  }
  if (idle_shutdown) {
    // Ordering moves only the *dynamic* energy; powering idle nodes off
    // moves the static share too, so the tariff arbitrage compounds.
    epa::IdleShutdownPolicy::Config cfg;
    cfg.idle_timeout = 10 * sim::kMinute;
    cfg.min_idle_online = 2;
    scenario.solution().add_policy(
        std::make_unique<epa::IdleShutdownPolicy>(cfg));
  }
  return scenario.run();
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_energy_cost");
  const core::RunResult baseline = run_case(false, false, "fifo-order");
  const core::RunResult aware = run_case(true, false, "cost-aware-order");
  const core::RunResult combined =
      run_case(true, true, "cost-aware+idle-off");
  summary.add_run(baseline);
  summary.add_run(aware);
  summary.add_run(combined);

  metrics::AsciiTable table({"ordering", "electricity cost", "energy",
                             "p50 wait (min)", "p90 wait (min)",
                             "jobs done", "killed"});
  table.set_title(
      "S6-ORDER: cost-aware ordering under a 0.35/0.09 peak/off-peak "
      "tariff (20 % of jobs deferrable, identical workload)");
  for (const core::RunResult* r : {&baseline, &aware, &combined}) {
    table.add_row({r->report.label,
                   metrics::format_double(r->report.electricity_cost, 2),
                   metrics::format_kwh(r->total_it_kwh_exact),
                   metrics::format_double(r->report.wait_minutes.median, 1),
                   metrics::format_double(r->report.wait_minutes.p90, 1),
                   std::to_string(r->report.jobs_completed),
                   std::to_string(r->report.jobs_killed)});
  }
  std::printf("%s\n", table.render().c_str());

  const double saving =
      (baseline.report.electricity_cost - aware.report.electricity_cost) /
      baseline.report.electricity_cost;
  std::printf("cost saved by ordering alone: %.1f %% (energy unchanged "
              "within noise — no frequency control involved)\n",
              saving * 100.0);
  return 0;
}
