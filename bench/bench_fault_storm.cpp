// Fault-storm throughput bench: sharded ensemble replications running
// under increasingly hostile fault regimes — stochastic node crashes,
// sensor dropout/noise windows, and CAPMC control-channel outages — and
// reporting dispatched events per wall second (BenchSummary JSON line;
// the bench-smoke CI job compares events_per_sec against
// BENCH_baseline.json, warn-only).
//
// Storms:
//   calm    — no faults; the fault-free sharded-ensemble baseline;
//   breezy  — MTBF 200 h: occasional crashes, light sensor noise;
//   gusty   — MTBF 48 h plus rolling sensor dropout and CAPMC latency;
//   violent — MTBF 12 h plus hard CAPMC outages and PDU-scale churn.
//
// Flags:
//   --replications=N  replications per storm cell (default 16)
//   --smoke           tiny sizes for CI smoke runs
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_summary.hpp"
#include "core/ensemble.hpp"
#include "core/scenario_builder.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"

namespace {

using namespace epajsrm;

struct Storm {
  const char* name;
  double mtbf_hours;         // 0 → no stochastic crashes
  double dropout_probability;
  double capmc_failure_probability;
  double capmc_latency_us;
};

constexpr Storm kStorms[] = {
    {"calm", 0.0, 0.0, 0.0, 0.0},
    {"breezy", 200.0, 0.05, 0.0, 0.0},
    {"gusty", 48.0, 0.3, 0.2, 200.0},
    {"violent", 12.0, 0.6, 0.8, 2000.0},
};

core::ScenarioConfig storm_config(std::uint64_t seed, std::uint32_t nodes,
                                  std::uint32_t jobs, sim::SimTime horizon) {
  auto b = core::Scenario::builder()
               .label("fault-storm")
               .nodes(nodes)
               .job_count(jobs)
               .seed(seed)
               .horizon(horizon)
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = false;
                 c.solution.resilience.checkpoint_interval =
                     30 * sim::kMinute;
               });
  return std::move(b).take_config();
}

void inject_storm(const Storm& storm, core::Scenario& scenario) {
  // Hundreds of crash warnings per replication are noise at bench scale.
  scenario.solution().logger().set_threshold(sim::LogLevel::kError);
  const std::uint64_t seed = scenario.config().seed;
  const sim::SimTime horizon = scenario.config().horizon;
  fault::FaultPlan plan;
  if (storm.mtbf_hours > 0.0) {
    fault::FailureModel model;
    model.mtbf_hours = storm.mtbf_hours;
    model.repair_time = 15 * sim::kMinute;
    plan = model.generate(scenario.config().nodes, horizon, seed);
  }
  // Rolling fault windows across the horizon so the degraded paths stay
  // hot for the whole run, not just one burst.
  for (sim::SimTime t = sim::kHour; t + sim::kHour < horizon;
       t += 4 * sim::kHour) {
    if (storm.dropout_probability > 0.0) {
      plan.sensor_dropout(t, sim::kHour, storm.dropout_probability);
      plan.sensor_noise(t + 2 * sim::kHour, sim::kHour, 0.05);
    }
    if (storm.capmc_failure_probability > 0.0) {
      plan.capmc_failure(t, sim::kHour, storm.capmc_failure_probability);
    }
    if (storm.capmc_latency_us > 0.0) {
      plan.capmc_latency(t + sim::kHour, sim::kHour, storm.capmc_latency_us);
    }
  }
  if (plan.empty()) return;
  fault::FaultInjector::Config config;
  config.seed = seed;
  fault::FaultInjector::install(scenario.solution(), plan, config);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replications = 16;
  std::uint32_t nodes = 64;
  std::uint32_t jobs = 400;
  sim::SimTime horizon = 7 * sim::kDay;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--replications=", 15) == 0) {
      replications = std::strtoull(argv[i] + 15, nullptr, 10);
      if (replications == 0) {
        std::fprintf(stderr, "--replications needs a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      replications = 2;
      nodes = 16;
      jobs = 40;
      horizon = 2 * sim::kDay;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  bench::BenchSummary summary("fault_storm");
  std::printf("%-10s %8s %14s %12s %10s %10s\n", "storm", "reps", "events",
              "mean kWh", "crashes", "requeues");
  for (const Storm& storm : kStorms) {
    core::EnsembleConfig config;
    config.replications = replications;
    config.base_seed = 90210;
    core::EnsembleEngine engine(config);
    engine.add_point(
        storm.name,
        [&](std::uint64_t seed) {
          return storm_config(seed, nodes, jobs, horizon);
        },
        [&](core::Scenario& scenario) { inject_storm(storm, scenario); });
    const core::EnsembleResult result = engine.run();

    std::uint64_t events = 0;
    std::uint64_t crashes = 0;
    std::uint64_t requeues = 0;
    for (const core::EnsembleObservation& obs : result.observations) {
      events += obs.sim_events;
      crashes += obs.node_crashes;
      requeues += obs.jobs_requeued;
    }
    summary.add_events(events);
    std::printf("%-10s %8zu %14llu %12.2f %10llu %10llu\n", storm.name,
                replications, static_cast<unsigned long long>(events),
                result.cells[0].stats.total_kwh.mean,
                static_cast<unsigned long long>(crashes),
                static_cast<unsigned long long>(requeues));
  }
  return 0;
}
