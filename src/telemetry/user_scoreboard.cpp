#include "telemetry/user_scoreboard.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "metrics/table.hpp"

namespace epajsrm::telemetry {

void UserScoreboard::add(const JobEnergyReport& report) {
  Accum& a = users_[report.user];
  ++a.jobs;
  a.kwh += report.energy_kwh;
  a.node_hours += report.node_hours;
  a.grade_points += static_cast<double>(report.grade - 'A') + 1.0;
}

void UserScoreboard::add_all(const std::vector<JobEnergyReport>& reports) {
  for (const JobEnergyReport& r : reports) add(r);
}

UserScore UserScoreboard::to_score(const std::string& user, const Accum& a) {
  UserScore s;
  s.user = user;
  s.jobs = a.jobs;
  s.total_kwh = a.kwh;
  s.node_hours = a.node_hours;
  s.kwh_per_node_hour = a.node_hours > 0.0 ? a.kwh / a.node_hours : 0.0;
  if (a.jobs > 0) {
    const double mean = a.grade_points / static_cast<double>(a.jobs);
    const int idx = std::clamp(static_cast<int>(std::lround(mean)), 1, 5);
    s.mark = static_cast<char>('A' + idx - 1);
  }
  return s;
}

std::vector<UserScore> UserScoreboard::ranking(std::uint64_t min_jobs) const {
  std::vector<UserScore> out;
  for (const auto& [user, accum] : users_) {
    if (accum.jobs >= min_jobs) out.push_back(to_score(user, accum));
  }
  std::sort(out.begin(), out.end(), [](const UserScore& a, const UserScore& b) {
    if (a.kwh_per_node_hour != b.kwh_per_node_hour) {
      return a.kwh_per_node_hour < b.kwh_per_node_hour;
    }
    return a.user < b.user;
  });
  return out;
}

UserScore UserScoreboard::score_of(const std::string& user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return UserScore{.user = user};
  return to_score(user, it->second);
}

std::string UserScoreboard::format_ranking(
    const std::vector<UserScore>& scores) {
  metrics::AsciiTable table(
      {"#", "user", "jobs", "energy", "node-hours", "kWh/node-h", "mark"});
  table.set_title("User energy scoreboard (thriftiest first)");
  std::size_t rank = 1;
  for (const UserScore& s : scores) {
    table.add_row({std::to_string(rank++), s.user, std::to_string(s.jobs),
                   metrics::format_kwh(s.total_kwh),
                   metrics::format_double(s.node_hours, 1),
                   metrics::format_double(s.kwh_per_node_hour, 3),
                   std::string(1, s.mark)});
  }
  return table.render();
}

}  // namespace epajsrm::telemetry
