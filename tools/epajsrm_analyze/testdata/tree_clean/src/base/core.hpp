#pragma once

namespace fixture::base {
inline int unit() { return 1; }
}  // namespace fixture::base
