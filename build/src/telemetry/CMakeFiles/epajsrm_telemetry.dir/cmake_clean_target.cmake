file(REMOVE_RECURSE
  "libepajsrm_telemetry.a"
)
