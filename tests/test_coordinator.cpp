#include "core/facility_coordinator.hpp"

#include <gtest/gtest.h>

namespace epajsrm::core {
namespace {

platform::Cluster make_machine(const std::string& name,
                               std::uint32_t nodes = 8) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .name(name)
      .node_count(nodes)
      .node_config(cfg)
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 4;
  spec.submit_time = submit;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest()
      : cluster_a_(make_machine("a")), cluster_b_(make_machine("b")),
        solution_a_(sim_, cluster_a_, config()),
        solution_b_(sim_, cluster_b_, config()) {}

  static SolutionConfig config() {
    SolutionConfig c;
    c.enable_thermal = false;
    return c;
  }

  sim::Simulation sim_;
  platform::Cluster cluster_a_;
  platform::Cluster cluster_b_;
  EpaJsrmSolution solution_a_;
  EpaJsrmSolution solution_b_;
};

TEST_F(CoordinatorTest, FloorsAlwaysGuaranteed) {
  FacilityCoordinator::Config cfg;
  cfg.total_budget_watts = 3000.0;
  FacilityCoordinator coordinator(sim_, cfg);
  coordinator.add_member(solution_a_, 1000.0);
  coordinator.add_member(solution_b_, 1000.0);
  solution_a_.start();
  solution_b_.start();
  coordinator.start();
  sim_.run_until(5 * sim::kMinute);
  EXPECT_GE(coordinator.budget_of(0), 1000.0);
  EXPECT_GE(coordinator.budget_of(1), 1000.0);
  EXPECT_LE(coordinator.budget_of(0) + coordinator.budget_of(1),
            3000.0 + 1e-6);
  EXPECT_GT(coordinator.rebalances(), 0u);
}

TEST_F(CoordinatorTest, SurplusFollowsTheBusyMachine) {
  FacilityCoordinator::Config cfg;
  cfg.total_budget_watts = 3200.0;  // floors 2x900 + 1400 surplus
  FacilityCoordinator coordinator(sim_, cfg);
  coordinator.add_member(solution_a_, 900.0);
  coordinator.add_member(solution_b_, 900.0);
  // Only machine A has work.
  solution_a_.submit(job_spec(1, 8, 2 * sim::kHour));
  solution_a_.start();
  solution_b_.start();
  coordinator.start();
  sim_.run_until(30 * sim::kMinute);
  EXPECT_GT(coordinator.budget_of(0), coordinator.budget_of(1) + 500.0);
  EXPECT_GT(coordinator.demand_of(0), coordinator.demand_of(1));
}

TEST_F(CoordinatorTest, HardEnforceHoldsEachSlice) {
  FacilityCoordinator::Config cfg;
  cfg.total_budget_watts = 2600.0;
  cfg.hard_enforce = true;
  FacilityCoordinator coordinator(sim_, cfg);
  coordinator.add_member(solution_a_, 900.0);
  coordinator.add_member(solution_b_, 900.0);
  for (workload::JobId id = 1; id <= 8; ++id) {
    solution_a_.submit(job_spec(id, 1, sim::kHour));
    solution_b_.submit(job_spec(100 + id, 1, sim::kHour));
  }
  solution_a_.start();
  solution_b_.start();
  coordinator.start();
  sim_.run_until(30 * sim::kMinute);
  EXPECT_LE(cluster_a_.it_power_watts(), coordinator.budget_of(0) + 1e-6);
  EXPECT_LE(cluster_b_.it_power_watts(), coordinator.budget_of(1) + 1e-6);
  EXPECT_LE(cluster_a_.it_power_watts() + cluster_b_.it_power_watts(),
            2600.0 + 1e-6);
}

TEST_F(CoordinatorTest, BudgetReturnsWhenLoadEnds) {
  FacilityCoordinator::Config cfg;
  cfg.total_budget_watts = 3200.0;
  FacilityCoordinator coordinator(sim_, cfg);
  coordinator.add_member(solution_a_, 900.0);
  coordinator.add_member(solution_b_, 900.0);
  solution_a_.submit(job_spec(1, 8, 30 * sim::kMinute));
  // B's work arrives after A finishes.
  solution_b_.submit(job_spec(2, 8, 30 * sim::kMinute, 2 * sim::kHour));
  solution_a_.start();
  solution_b_.start();
  coordinator.start();

  sim_.run_until(20 * sim::kMinute);
  EXPECT_GT(coordinator.budget_of(0), coordinator.budget_of(1));
  // Mid-way through B's job (2:00-2:30): the surplus has moved to B.
  sim_.run_until(2 * sim::kHour + 15 * sim::kMinute);
  EXPECT_GT(coordinator.budget_of(1), coordinator.budget_of(0));

  sim_.run_until(12 * sim::kHour);
  EXPECT_EQ(solution_a_.find_job(1)->state(),
            workload::JobState::kCompleted);
  EXPECT_EQ(solution_b_.find_job(2)->state(),
            workload::JobState::kCompleted);
}

TEST_F(CoordinatorTest, AddMemberAfterStartThrows) {
  FacilityCoordinator::Config cfg;
  cfg.total_budget_watts = 3000.0;
  FacilityCoordinator coordinator(sim_, cfg);
  coordinator.add_member(solution_a_, 900.0);
  coordinator.start();
  EXPECT_THROW(coordinator.add_member(solution_b_, 900.0),
               std::logic_error);
}

TEST_F(CoordinatorTest, BadWeightRejected) {
  FacilityCoordinator::Config cfg;
  cfg.total_budget_watts = 3000.0;
  FacilityCoordinator coordinator(sim_, cfg);
  EXPECT_THROW(coordinator.add_member(solution_a_, 900.0, 0.0),
               std::invalid_argument);
}

TEST_F(CoordinatorTest, WeightsBiasTheSurplus) {
  FacilityCoordinator::Config cfg;
  cfg.total_budget_watts = 4000.0;
  cfg.hard_enforce = false;
  FacilityCoordinator coordinator(sim_, cfg);
  coordinator.add_member(solution_a_, 900.0, /*weight=*/3.0);
  coordinator.add_member(solution_b_, 900.0, /*weight=*/1.0);
  // Identical demand on both machines.
  solution_a_.submit(job_spec(1, 8, 2 * sim::kHour));
  solution_b_.submit(job_spec(2, 8, 2 * sim::kHour));
  solution_a_.start();
  solution_b_.start();
  coordinator.start();
  sim_.run_until(30 * sim::kMinute);
  EXPECT_GT(coordinator.budget_of(0), coordinator.budget_of(1));
}

}  // namespace
}  // namespace epajsrm::core
