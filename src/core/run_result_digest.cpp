#include "core/run_result_digest.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace epajsrm::core {

namespace {

void hex_u64(std::string& out, std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = digits[v & 0xf];
    v >>= 4;
  }
  out.append(buf, 16);
}

void field(std::string& out, const char* name, std::uint64_t v) {
  out += name;
  out += '=';
  hex_u64(out, v);
  out += '\n';
}

void field(std::string& out, const char* name, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  field(out, name, bits);
}

void dist(std::string& out, const char* name,
          const metrics::DistributionSummary& d) {
  out += name;
  out += ":\n";
  field(out, "  count", static_cast<std::uint64_t>(d.count));
  field(out, "  min", d.min);
  field(out, "  p10", d.p10);
  field(out, "  p25", d.p25);
  field(out, "  median", d.median);
  field(out, "  p75", d.p75);
  field(out, "  p90", d.p90);
  field(out, "  max", d.max);
  field(out, "  mean", d.mean);
}

}  // namespace

std::string run_result_digest(const RunResult& r, bool include_sim_events) {
  std::string out;
  out.reserve(4096 + r.job_reports.size() * 160);
  const metrics::RunReport& rep = r.report;
  out += "label=" + rep.label + "\n";
  field(out, "jobs_submitted", rep.jobs_submitted);
  field(out, "jobs_completed", rep.jobs_completed);
  field(out, "jobs_killed", rep.jobs_killed);
  dist(out, "wait_minutes", rep.wait_minutes);
  dist(out, "bounded_slowdown", rep.bounded_slowdown);
  dist(out, "job_node_counts", rep.job_node_counts);
  dist(out, "job_runtime_minutes", rep.job_runtime_minutes);
  field(out, "throughput_jobs_per_day", rep.throughput_jobs_per_day);
  field(out, "mean_it_watts", rep.mean_it_watts);
  field(out, "max_it_watts", rep.max_it_watts);
  field(out, "total_it_kwh", rep.total_it_kwh);
  field(out, "total_facility_kwh", rep.total_facility_kwh);
  field(out, "electricity_cost", rep.electricity_cost);
  field(out, "budget_watts", rep.budget_watts);
  field(out, "violation_samples", rep.violation_samples);
  field(out, "violation_fraction", rep.violation_fraction);
  field(out, "worst_violation_watts", rep.worst_violation_watts);
  field(out, "violation_kwh", rep.violation_kwh);
  field(out, "mean_core_utilization", rep.mean_core_utilization);
  field(out, "core_hours_per_mwh", rep.core_hours_per_mwh);
  field(out, "makespan", static_cast<std::uint64_t>(rep.makespan));

  field(out, "total_it_kwh_exact", r.total_it_kwh_exact);
  field(out, "overhead_kwh", r.overhead_kwh);
  field(out, "node_boots", r.node_boots);
  field(out, "node_shutdowns", r.node_shutdowns);
  field(out, "scheduling_passes", r.scheduling_passes);
  if (include_sim_events) field(out, "sim_events", r.sim_events);
  field(out, "node_crashes", r.node_crashes);
  field(out, "pdu_trips", r.pdu_trips);
  field(out, "jobs_requeued_on_fault", r.jobs_requeued_on_fault);
  field(out, "jobs_lost_on_fault", r.jobs_lost_on_fault);
  field(out, "node_quarantines", r.node_quarantines);
  field(out, "capmc_retries", r.capmc_retries);
  field(out, "capmc_failed_calls", r.capmc_failed_calls);
  field(out, "telemetry_dropped_samples", r.telemetry_dropped_samples);

  out += "job_reports:\n";
  for (const telemetry::JobEnergyReport& j : r.job_reports) {
    out += "  job=";
    hex_u64(out, static_cast<std::uint64_t>(j.job));
    out += " user=" + j.user + " tag=" + j.tag + " grade=";
    out += j.grade;
    out += " e=";
    std::uint64_t bits = 0;
    std::memcpy(&bits, &j.energy_kwh, sizeof(bits));
    hex_u64(out, bits);
    std::memcpy(&bits, &j.average_watts, sizeof(bits));
    out += " w=";
    hex_u64(out, bits);
    std::memcpy(&bits, &j.node_hours, sizeof(bits));
    out += " nh=";
    hex_u64(out, bits);
    std::memcpy(&bits, &j.kwh_per_node_hour, sizeof(bits));
    out += " eff=";
    hex_u64(out, bits);
    out += '\n';
  }

  // kills_by_reason is unordered; render in sorted-key order so the
  // digest is a pure function of the run, not of hashing.
  std::vector<std::pair<std::string, std::uint64_t>> kills(
      r.kills_by_reason.begin(), r.kills_by_reason.end());
  std::sort(kills.begin(), kills.end());
  out += "kills_by_reason:\n";
  for (const auto& [reason, count] : kills) {
    out += "  " + reason + "=";
    hex_u64(out, count);
    out += '\n';
  }
  return out;
}

}  // namespace epajsrm::core
