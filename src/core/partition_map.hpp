// PartitionMap: the static cluster -> partition assignment behind the
// lax-sync partitioned core (DESIGN.md §15). Partitions are PDU-aligned
// contiguous node ranges: the PDU is the smallest unit whose power
// aggregation the paper's Figure-1 control loop treats as one box, and
// contiguity is what lets ledger temperature shards be disjoint array
// slices and lets the fixed partition-index merge order equal node order.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/cluster.hpp"

namespace epajsrm::core {

class PartitionMap {
 public:
  /// Splits `cluster` into at most `partitions` PDU-aligned ranges,
  /// balanced by node count (each PDU lands in partition
  /// floor(first_node * P / node_count), which is monotone, so ranges
  /// stay contiguous). The count is clamped to [1, pdu_count]; wildly
  /// uneven PDU sizes may merge neighbours further. Throws
  /// std::invalid_argument if the cluster's PDU node sets are not
  /// contiguous ascending ranges (ClusterBuilder always lays them out
  /// that way).
  static PartitionMap build(const platform::Cluster& cluster,
                            std::uint32_t partitions);

  std::uint32_t count() const {
    return static_cast<std::uint32_t>(bounds_.size() - 1);
  }

  /// Node range owned by partition `p`: [node_begin(p), node_end(p)).
  /// Ranges tile [0, node_count) in ascending partition order.
  platform::NodeId node_begin(std::uint32_t p) const;
  platform::NodeId node_end(std::uint32_t p) const;
  std::uint32_t node_count(std::uint32_t p) const;

  std::uint32_t partition_of_node(platform::NodeId id) const;
  std::uint32_t partition_of_pdu(platform::PduId pdu) const;

  std::uint32_t total_nodes() const { return total_nodes_; }
  std::uint32_t pdu_count() const {
    return static_cast<std::uint32_t>(pdu_partition_.size());
  }

 private:
  /// count()+1 fenceposts: partition p owns [bounds_[p], bounds_[p+1]).
  std::vector<platform::NodeId> bounds_;
  std::vector<std::uint32_t> pdu_partition_;
  std::uint32_t total_nodes_ = 0;
};

}  // namespace epajsrm::core
