#include "survey/report.hpp"

#include <map>
#include <set>
#include <sstream>

#include "survey/activities.hpp"
#include "survey/centers.hpp"
#include "survey/questionnaire.hpp"

namespace epajsrm::survey {

namespace {

void emit_activities(std::ostringstream& out, const std::string& center,
                     Maturity maturity) {
  const auto items = activities_of(center, maturity);
  if (items.empty()) {
    out << "*(none reported)*\n\n";
    return;
  }
  for (const Activity& a : items) {
    out << "- " << a.description;
    if (!a.module.empty()) out << "  \n  _modelled by:_ `" << a.module << "`";
    out << "\n";
  }
  out << "\n";
}

}  // namespace

std::string render_center_section(const std::string& short_name) {
  const CenterProfile& c = center(short_name);
  std::ostringstream out;
  out << "## " << c.full_name << " (" << c.short_name << ")\n\n";
  out << "| | |\n|---|---|\n";
  out << "| Country / region | " << c.country << " / "
      << to_string(c.region) << " |\n";
  out << "| Headline system | " << c.machine_name << " |\n";
  out << "| Scale | " << c.machine_nodes << " nodes x "
      << c.cores_per_node << " cores |\n";
  out << "| Peak system power | ~" << c.peak_system_mw << " MW |\n";
  out << "| Site power capacity (Q2a) | ~" << c.site_power_capacity_mw
      << " MW |\n";
  out << "| JSRM stack | " << c.jsrm_software << " |\n";
  out << "| Workload orientation (Q3d) | "
      << (c.capability_oriented ? "capability" : "capacity") << " |\n\n";

  out << "### Research activities\n\n";
  emit_activities(out, short_name, Maturity::kResearch);
  out << "### Technology development with intent to deploy\n\n";
  emit_activities(out, short_name, Maturity::kTechDevelopment);
  out << "### Production deployment\n\n";
  emit_activities(out, short_name, Maturity::kProduction);
  return out.str();
}

std::string render_report(const ReportOptions& options) {
  std::ostringstream out;
  out << "# EPA JSRM survey corpus\n\n";
  out << "Reproduction of the EE HPC WG Energy and Power Aware Job "
         "Scheduling and Resource Management survey (Maiterth et al., "
         "IPDPSW 2018): the nine participating centers, the questionnaire, "
         "every Tables I/II activity, and the framework modules that model "
         "each technique.\n\n";

  out << "## Center selection (Section III)\n\n";
  out << "Selection required (1) a Top500 system, (2) deployed or "
         "in-development EPA JSRM technology headed for production, and "
         "(3) willingness to talk. Eleven centers qualified; nine "
         "participated:\n\n";
  for (std::size_t i = 0; i < all_centers().size(); ++i) {
    const CenterProfile& c = all_centers()[i];
    out << (i + 1) << ". **" << c.short_name << "** — " << c.full_name
        << ", " << c.country << "\n";
  }
  out << "\n";

  if (options.include_map) {
    out << "## Geography (Figure 2)\n\n```\n" << ascii_map() << "```\n\n";
  }

  if (options.include_questionnaire) {
    out << "## Questionnaire (Section IV)\n\n```\n"
        << format_questionnaire() << "```\n\n";
  }

  if (options.include_center_sections) {
    for (const CenterProfile& c : all_centers()) {
      out << render_center_section(c.short_name) << "\n";
    }
  }

  if (options.include_cross_site_analysis) {
    out << "## Cross-site analysis (the deferred Section V work)\n\n";
    out << "| Technique | Research | Tech. development | Production |\n";
    out << "|---|---|---|---|\n";
    for (Technique t :
         {Technique::kPowerCapping, Technique::kDynamicPowerSharing,
          Technique::kDvfsScheduling, Technique::kNodeShutdown,
          Technique::kEnergyReporting, Technique::kPowerPrediction,
          Technique::kEmergencyResponse, Technique::kSourceSelection,
          Technique::kLayoutAware, Technique::kThermalAware,
          Technique::kCostAwareOrdering, Technique::kMonitoring,
          Technique::kInterSystemCapping, Technique::kVmSplitting}) {
      out << "| " << to_string(t) << " | "
          << centers_with(t, Maturity::kResearch) << " | "
          << centers_with(t, Maturity::kTechDevelopment) << " | "
          << centers_with(t, Maturity::kProduction) << " |\n";
    }
    out << "\n";

    // Observations the tables support directly.
    out << "**Observations**\n\n";
    out << "- Every surveyed center has *some* production EPA JSRM "
           "deployment (the selection criterion), but no two production "
           "stacks are alike.\n";
    out << "- DVFS-aware scheduling is the busiest technology-development "
           "lane ("
        << centers_with(Technique::kDvfsScheduling,
                        Maturity::kTechDevelopment)
        << " centers) while production deployments still lean on simpler "
           "capping and shutdown mechanisms.\n";
    out << "- Energy reporting to users is production at "
        << centers_with(Technique::kEnergyReporting, Maturity::kProduction)
        << " centers — visibility precedes control.\n";
  }
  return out.str();
}

}  // namespace epajsrm::survey
