// EPA policy tests: static capping, budget+DVFS admission, dynamic power
// sharing, group caps.
#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/group_power_cap.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "epa/static_power_cap.hpp"

namespace epajsrm::epa {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 8) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .nodes_per_rack(4)
      .racks_per_pdu(1)
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 2;
  spec.submit_time = submit;
  spec.profile.freq_sensitive_fraction = 0.5;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

TEST(StaticCap, CapsTheConfiguredFraction) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::EpaJsrmSolution solution(sim, cluster);
  auto policy = std::make_unique<StaticPowerCapPolicy>(0.75, 180.0);
  StaticPowerCapPolicy* cap = policy.get();
  solution.add_policy(std::move(policy));
  solution.start();
  EXPECT_EQ(cap->capped_nodes(), 6u);
  EXPECT_DOUBLE_EQ(cluster.node(0).power_cap_watts(), 180.0);
  EXPECT_DOUBLE_EQ(cluster.node(5).power_cap_watts(), 180.0);
  EXPECT_DOUBLE_EQ(cluster.node(6).power_cap_watts(), 0.0);
  // Budget = 6 * 180 + 2 * 300 peak.
  EXPECT_DOUBLE_EQ(cap->power_budget_watts(0), 6 * 180.0 + 2 * 300.0);
}

TEST(StaticCap, CappedNodesRunSlowerButSystemStaysUnderWorstCase) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  solution.add_policy(std::make_unique<StaticPowerCapPolicy>(1.0, 200.0));
  solution.submit(job_spec(1, 8, sim::kHour));
  solution.run_until(12 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_GT(job->end_time() - job->start_time(), sim::kHour);  // slowed
  const core::RunResult result = solution.finalize();
  EXPECT_LE(result.report.max_it_watts, 8 * 200.0 + 1e-6);
}

TEST(BudgetDvfs, AdmitsAtFullSpeedWithHeadroom) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::EpaJsrmSolution solution(sim, cluster);
  solution.add_policy(std::make_unique<PowerBudgetDvfsPolicy>(5000.0));
  solution.submit(job_spec(1, 2, 30 * sim::kMinute));
  solution.run_until(4 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  EXPECT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_EQ(job->end_time() - job->start_time(), 30 * sim::kMinute);
}

TEST(BudgetDvfs, DegradesFrequencyWhenTight) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  // Idle floor = 800 W. A whole-machine job at full tilt adds 1600 W.
  // Budget 1600 leaves 800 headroom: jobs must degrade.
  auto policy = std::make_unique<PowerBudgetDvfsPolicy>(1600.0);
  PowerBudgetDvfsPolicy* dvfs = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 8, sim::kHour));
  solution.run_until(12 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_GT(dvfs->dvfs_degraded_starts(), 0u);
  EXPECT_GT(job->end_time() - job->start_time(), sim::kHour);
  const core::RunResult result = solution.finalize();
  EXPECT_LE(result.report.max_it_watts, 1600.0 + 1e-6);
}

TEST(BudgetDvfs, VetoesWhenNothingFits) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  // Budget below the idle floor: no dynamic headroom at all, and the
  // deepest P-state still adds power -> every start is vetoed.
  auto policy = std::make_unique<PowerBudgetDvfsPolicy>(700.0);
  PowerBudgetDvfsPolicy* dvfs = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 4, sim::kHour));
  solution.run_until(2 * sim::kHour);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kQueued);
  EXPECT_GT(dvfs->vetoed_starts(), 0u);
}

TEST(BudgetDvfs, DisallowedDvfsOnlyAdmitsFullSpeed) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  auto policy = std::make_unique<PowerBudgetDvfsPolicy>(1600.0, false);
  PowerBudgetDvfsPolicy* nodvfs = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 8, sim::kHour));
  solution.run_until(2 * sim::kHour);
  // 8-node job needs 1600 W dynamic, headroom 800 -> veto, never degrade.
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kQueued);
  EXPECT_EQ(nodvfs->dvfs_degraded_starts(), 0u);
}

TEST(DynamicShare, RedistributesBudgetTowardLoad) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  auto policy = std::make_unique<DynamicPowerSharePolicy>(1000.0);
  DynamicPowerSharePolicy* share = policy.get();
  solution.add_policy(std::move(policy));
  solution.submit(job_spec(1, 1, 2 * sim::kHour));  // one busy node
  solution.run_until(30 * sim::kMinute);
  EXPECT_GT(share->redistributions(), 0u);
  // The busy node's cap must exceed any idle node's cap.
  const double busy_cap = cluster.node(0).power_cap_watts();
  const double idle_cap = cluster.node(3).power_cap_watts();
  EXPECT_GT(busy_cap, idle_cap);
  // Sum of caps stays within the budget (idle floors permitting).
  double total = 0.0;
  for (const platform::Node& n : cluster.nodes()) {
    total += n.power_cap_watts();
  }
  EXPECT_LE(total, 1000.0 + 1e-6);
}

TEST(DynamicShare, SystemPowerStaysNearBudgetUnderLoad) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  solution.add_policy(std::make_unique<DynamicPowerSharePolicy>(800.0));
  for (workload::JobId id = 1; id <= 4; ++id) {
    solution.submit(job_spec(id, 1, sim::kHour));
  }
  solution.run_until(30 * sim::kMinute);
  EXPECT_LE(cluster.it_power_watts(), 800.0 + 1e-6);
}

TEST(GroupCap, UniformFractionCapsPerPdu) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);  // 2 PDUs of 4 nodes
  core::EpaJsrmSolution solution(sim, cluster);
  solution.add_policy(std::make_unique<GroupPowerCapPolicy>(
      GroupPowerCapPolicy::uniform_fraction(0.5)));
  solution.start();
  // Per PDU: 4 * 300 peak * 0.5 = 600 -> 150 W per node.
  for (const platform::Node& n : cluster.nodes()) {
    EXPECT_NEAR(n.power_cap_watts(), 150.0, 1e-9);
  }
}

TEST(GroupCap, ExplicitPerGroupCaps) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::EpaJsrmSolution solution(sim, cluster);
  auto policy = std::make_unique<GroupPowerCapPolicy>(
      std::vector<double>{800.0});  // only group 0 capped
  GroupPowerCapPolicy* caps = policy.get();
  solution.add_policy(std::move(policy));
  solution.start();
  EXPECT_NEAR(cluster.node(0).power_cap_watts(), 200.0, 1e-9);
  EXPECT_DOUBLE_EQ(cluster.node(4).power_cap_watts(), 0.0);
  // Budget: 800 for group 0 + 4*300 peak for group 1.
  EXPECT_DOUBLE_EQ(caps->power_budget_watts(0), 800.0 + 1200.0);

  // Manual admin re-cap of group 1.
  caps->set_group_cap(solution, 1, 400.0);
  EXPECT_NEAR(cluster.node(4).power_cap_watts(), 100.0, 1e-9);
}

}  // namespace
}  // namespace epajsrm::epa
