// Concurrency stress for the EnsembleEngine (tsan payload): many small
// replications hammering the ThreadPool fan-out, with the aggregation
// determinism asserted at the end. Under -fsanitize=thread (tsan preset)
// this is the race detector's main EnsembleEngine workload.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ensemble.hpp"
#include "core/scenario_builder.hpp"

namespace epajsrm {
namespace {

core::ScenarioConfig tiny_config(const char* label) {
  auto b = core::Scenario::builder()
               .label(label)
               .nodes(4)
               .job_count(3)
               .horizon(sim::kDay)
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = false;
               });
  return std::move(b).take_config();
}

TEST(EnsembleStress, ManyCellsOnOversubscribedPool) {
  core::EnsembleConfig config;
  config.replications = 6;
  config.base_seed = 31337;
  // Oversubscribe relative to the machine to force shard interleaving.
  config.threads =
      std::max<std::size_t>(4, std::thread::hardware_concurrency() * 2);
  core::EnsembleEngine engine(config);
  for (int p = 0; p < 4; ++p) {
    engine.add_point("stress", [](std::uint64_t) {
      return tiny_config("ens-stress");
    });
  }
  const core::EnsembleResult result = engine.run();
  ASSERT_EQ(result.cells.size(), 4u);
  ASSERT_EQ(result.observations.size(), 24u);
  for (const core::EnsembleCell& cell : result.cells) {
    EXPECT_EQ(cell.stats.replications, 6u);
    EXPECT_EQ(cell.stats.total_kwh.count, 6u);
    EXPECT_GT(cell.stats.total_kwh.mean, 0.0);
  }

  // Shard interleaving must not leak: a serial rerun agrees bit-for-bit.
  core::EnsembleConfig serial = config;
  serial.threads = 1;
  core::EnsembleEngine engine2(serial);
  for (int p = 0; p < 4; ++p) {
    engine2.add_point("stress", [](std::uint64_t) {
      return tiny_config("ens-stress");
    });
  }
  const core::EnsembleResult again = engine2.run();
  ASSERT_EQ(again.observations.size(), result.observations.size());
  for (std::size_t i = 0; i < result.observations.size(); ++i) {
    EXPECT_EQ(result.observations[i].seed, again.observations[i].seed);
    EXPECT_EQ(result.observations[i].total_kwh,
              again.observations[i].total_kwh);
    EXPECT_EQ(result.observations[i].sim_events,
              again.observations[i].sim_events);
  }
}

}  // namespace
}  // namespace epajsrm
