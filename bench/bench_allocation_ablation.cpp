// Experiment Q6-ALLOC — the paper's question 6: topology-aware task
// allocation as an *indirect* energy lever, plus variability-aware
// placement (Inadomi [25], Fraternali [20]).
//
// Part 1: a communication-heavy workload under first-fit vs. topology-
// aware allocation; compact placement shortens the communication fraction
// and therefore runtime and energy.
// Part 2: a machine with ±5 % manufacturing variability under a uniform
// node cap; variability-aware placement puts work on efficient silicon,
// which runs faster under the same cap.
#include <cstdio>

#include <memory>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "metrics/table.hpp"
#include "rm/allocator.hpp"

namespace {

using namespace epajsrm;

struct AblationResult {
  core::RunResult result;
  double mean_spread = 0.0;
};

AblationResult run_topology(bool topology_aware) {
  // Mid-size, strongly communication-bound jobs on a 64-leaf fat tree:
  // a job fits inside one or two switches when placed well, and pays up
  // to a 40 % communication stretch when scattered.
  sim::Simulation sim;
  platform::Cluster cluster =
      platform::ClusterBuilder()
          .name(topology_aware ? "topology-aware" : "first-fit")
          .node_count(64)
          .topology(std::make_unique<platform::FatTreeTopology>(8, 2))
          .build();
  core::SolutionConfig solution_config;
  solution_config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, solution_config);
  solution.metrics_collector().set_label(cluster.name());
  if (topology_aware) {
    solution.set_allocator(std::make_unique<rm::TopologyAwareAllocator>(16));
  }

  workload::AppCatalog catalog;
  catalog.add({.tag = "halo-exchange",
               .profile = {.freq_sensitive_fraction = 0.6,
                           .comm_fraction = 0.40, .power_intensity = 0.9},
               .weight = 1.0, .median_runtime = 60 * sim::kMinute,
               .runtime_sigma = 0.5, .min_nodes = 4, .max_nodes = 16});
  workload::GeneratorConfig gen;
  gen.machine_nodes = 64;
  gen.arrival_rate_per_hour = 4.0;  // ~50 % load: churn + choice
  workload::WorkloadGenerator generator(gen, std::move(catalog), 41);
  solution.submit_all(generator.generate(150));
  solution.run_until(30 * sim::kDay);

  AblationResult out;
  out.result = solution.finalize();
  double spread_sum = 0.0;
  std::size_t spread_count = 0;
  for (const workload::Job* job : solution.finished_jobs()) {
    if (job->allocated_nodes().size() >= 2) {
      spread_sum += job->placement_spread();
      ++spread_count;
    }
  }
  out.mean_spread = spread_count ? spread_sum / spread_count : 0.0;
  return out;
}

core::RunResult run_variability(bool variability_aware) {
  core::ScenarioConfig config;
  config.label = variability_aware ? "variability-aware" : "first-fit";
  config.nodes = 64;
  config.job_count = 120;
  config.horizon = 30 * sim::kDay;
  config.seed = 43;
  config.mix = core::WorkloadMix::kCapacity;
  config.target_utilization = 0.5;  // placement has real choices
  config.variability_sigma = 0.05;
  config.solution.enable_thermal = false;
  core::Scenario scenario(config);
  if (variability_aware) {
    scenario.solution().set_allocator(
        std::make_unique<rm::VariabilityAwareAllocator>());
  }
  // Uniform node cap at 80 % of nominal peak: inefficient parts must
  // clock down harder to fit under it.
  const double cap =
      0.8 * scenario.solution().power_model().peak_watts(
                scenario.cluster().node(0).config());
  scenario.solution().start();
  scenario.solution().set_system_cap(cap * 64);
  return scenario.run();
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_allocation_ablation");
  const AblationResult first = run_topology(false);
  const AblationResult topo = run_topology(true);
  summary.add_run(first.result);
  summary.add_run(topo.result);

  metrics::AsciiTable part1({"allocator", "mean placement spread",
                             "p50 runtime (min)", "energy", "p50 wait (min)",
                             "jobs done"});
  part1.set_title(
      "Q6-ALLOC part 1: topology-aware allocation, comm-bound 4-16 node "
      "jobs (8-ary fat tree, ~50 % load)");
  for (const AblationResult* r : {&first, &topo}) {
    part1.add_row(
        {r->result.report.label, metrics::format_double(r->mean_spread, 3),
         metrics::format_double(r->result.report.job_runtime_minutes.median,
                                1),
         metrics::format_kwh(r->result.total_it_kwh_exact),
         metrics::format_double(r->result.report.wait_minutes.median, 1),
         std::to_string(r->result.report.jobs_completed)});
  }
  std::printf("%s\n", part1.render().c_str());

  const core::RunResult ff = run_variability(false);
  const core::RunResult va = run_variability(true);
  summary.add_run(ff);
  summary.add_run(va);
  metrics::AsciiTable part2({"allocator", "p50 runtime (min)",
                             "makespan (h)", "energy", "jobs done"});
  part2.set_title(
      "Q6-ALLOC part 2: variability-aware placement under a uniform 80 % "
      "node cap (sigma = 5 %)");
  for (const core::RunResult* r : {&ff, &va}) {
    part2.add_row(
        {r->report.label,
         metrics::format_double(r->report.job_runtime_minutes.median, 1),
         metrics::format_double(sim::to_hours(r->report.makespan), 1),
         metrics::format_kwh(r->total_it_kwh_exact),
         std::to_string(r->report.jobs_completed)});
  }
  std::printf("%s\n", part2.render().c_str());
  std::printf(
      "shape check: compact placement cuts the communication stretch "
      "(indirect energy saving, Q6); efficient-silicon placement runs "
      "faster under the same cap (Inadomi).\n");
  return 0;
}
