file(REMOVE_RECURSE
  "libepajsrm_predict.a"
)
