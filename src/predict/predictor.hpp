// Job power/runtime prediction interfaces.
//
// The survey calls pre-execution knowledge of application behaviour "a very
// important aspect" of EPA JSRM: RIKEN estimates each job's power before it
// runs, LRZ characterises new applications on first run, CINECA builds
// predictive per-job power models (Borghesi [9]), Shoukourian [40] and
// Sîrbu [41] regress on job features. Predictors expose a common interface
// so policies can be evaluated with any of them (or with the conservative
// peak baseline).
#pragma once

#include <memory>
#include <string>

#include "workload/job.hpp"

namespace epajsrm::predict {

/// Predicts the average per-node power draw of a job before it runs and
/// learns from completed jobs.
class PowerPredictor {
 public:
  virtual ~PowerPredictor() = default;

  /// Predicted average watts per allocated node at reference frequency.
  virtual double predict_node_watts(const workload::JobSpec& spec) = 0;

  /// Feeds back a completed job's measured average per-node watts.
  virtual void observe(const workload::JobSpec& spec,
                       double actual_node_watts) = 0;

  /// Identifier for reports ("tag-history", "ridge", ...).
  virtual std::string name() const = 0;
};

/// Predicts job runtime (used by energy-to-solution and backfill quality
/// studies; schedulers otherwise plan with the user walltime estimate).
class RuntimePredictor {
 public:
  virtual ~RuntimePredictor() = default;
  virtual sim::SimTime predict_runtime(const workload::JobSpec& spec) = 0;
  virtual void observe(const workload::JobSpec& spec,
                       sim::SimTime actual_runtime) = 0;
  virtual std::string name() const = 0;
};

/// Conservative baseline: every job is assumed to draw `peak_node_watts`.
/// This is what a site without prediction must do to stay safe under a cap
/// — the gap between this and a learned predictor is the value of
/// prediction (bench S6-PRED).
class PeakPowerPredictor final : public PowerPredictor {
 public:
  explicit PeakPowerPredictor(double peak_node_watts)
      : peak_(peak_node_watts) {}
  double predict_node_watts(const workload::JobSpec&) override {
    return peak_;
  }
  void observe(const workload::JobSpec&, double) override {}
  std::string name() const override { return "peak-baseline"; }

 private:
  double peak_;
};

/// Walltime-estimate baseline for runtimes (what plain backfilling uses).
class WalltimeRuntimePredictor final : public RuntimePredictor {
 public:
  sim::SimTime predict_runtime(const workload::JobSpec& spec) override {
    return spec.walltime_estimate;
  }
  void observe(const workload::JobSpec&, sim::SimTime) override {}
  std::string name() const override { return "walltime-estimate"; }
};

}  // namespace epajsrm::predict
