// Power API-style hierarchical sensor registry.
//
// Sandia's Power API (Laros et al., used in the LANL+Sandia and STFC rows)
// names measurement points hierarchically (platform.cabinet.node.cpu …) and
// lets tools read individual points or aggregate subtrees. We reproduce
// that shape: sensors are dotted paths bound to read callbacks; prefix
// queries aggregate.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace epajsrm::telemetry {

/// Measurement kind (unit) of a sensor.
enum class SensorKind { kPowerWatts, kTemperatureC, kUtilization, kCustom };

/// One named measurement point.
struct Sensor {
  std::string path;  ///< dotted hierarchy, e.g. "machine.rack0.node3.power"
  SensorKind kind = SensorKind::kCustom;
  std::function<double()> read;
};

/// Registry with prefix aggregation. Paths are unique.
class SensorRegistry {
 public:
  /// Registers a sensor; throws on duplicate path.
  void add(Sensor sensor);

  /// True when `path` exists.
  bool contains(const std::string& path) const {
    return sensors_.contains(path);
  }

  /// Reads a single sensor; throws std::out_of_range when absent.
  double read(const std::string& path) const;

  /// All paths with the given prefix (a prefix matches whole components:
  /// "machine.rack1" matches "machine.rack1.node0.power" but not
  /// "machine.rack10...").
  std::vector<std::string> list(const std::string& prefix) const;

  /// Sum of readings of all sensors under `prefix` with matching `kind`.
  double aggregate(const std::string& prefix, SensorKind kind) const;

  /// Number of registered sensors.
  std::size_t size() const { return sensors_.size(); }

 private:
  static bool prefix_matches(const std::string& prefix,
                             const std::string& path);
  std::map<std::string, Sensor> sensors_;
};

}  // namespace epajsrm::telemetry
