file(REMOVE_RECURSE
  "libepajsrm_sched.a"
)
