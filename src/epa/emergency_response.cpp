#include "epa/emergency_response.hpp"

#include <algorithm>
#include <vector>

namespace epajsrm::epa {

void EmergencyResponsePolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr || config_.limit_watts <= 0.0) return;
  // Breach detection reads the *measured* power, not the ground truth:
  // under sensor dropout the monitor serves last-known-good with a safety
  // margin instead of garbage (in fault-free runs the control loop samples
  // right before this tick, so the two are identical). The kill loop below
  // still re-reads the live draw — killing acts on reality.
  const double draw = host_->monitor().measured_it_watts(now);

  if (draw <= config_.limit_watts) {
    breach_ticks_ = 0;
    // Manual caps are lifted once the situation clears well below the
    // limit (10 % hysteresis).
    if (manual_cap_active_ && draw < config_.limit_watts * 0.85) {
      host_->set_system_cap(0.0);
      manual_cap_active_ = false;
    }
    return;
  }

  ++breach_ticks_;
  if (breach_ticks_ < config_.confirm_ticks) return;

  if (config_.mode == Mode::kAutomatedKill) {
    ++emergencies_;
    automated_kill();
    breach_ticks_ = 0;
  } else {
    manual_response(now);
  }
}

void EmergencyResponsePolicy::automated_kill() {
  // Victims: lowest priority first, then youngest (least sunk work).
  std::vector<workload::Job*> victims = host_->running_jobs();
  std::sort(victims.begin(), victims.end(),
            [](const workload::Job* a, const workload::Job* b) {
              if (a->spec().priority != b->spec().priority) {
                return a->spec().priority < b->spec().priority;
              }
              return a->start_time() > b->start_time();
            });

  for (workload::Job* job : victims) {
    if (host_->ledger().it_power_watts() <= config_.limit_watts) break;
    if (config_.requeue_victims) {
      host_->requeue_job(job->id(), "emergency-power-limit");
    } else {
      host_->kill_job(job->id(), "emergency-power-limit");
    }
    ++killed_;
  }
}

void EmergencyResponsePolicy::manual_response(sim::SimTime) {
  if (admin_dispatched_ || manual_cap_active_) return;
  admin_dispatched_ = true;
  ++emergencies_;
  host_->simulation().schedule_in(
      config_.admin_latency,
      [this] {
        // The admin clamps the system; the cap stays until the draw
        // recovers.
        host_->set_system_cap(config_.limit_watts *
                              config_.manual_cap_fraction);
        manual_cap_active_ = true;
        admin_dispatched_ = false;
      },
      "epa.admin");
}

}  // namespace epajsrm::epa
