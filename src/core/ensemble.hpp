// EnsembleEngine: sharded seed×parameter sweeps over Scenario.
//
// The simulator is single-threaded per replication; throughput at study
// scale comes from running many replications at once. The engine takes a
// grid of parameter points, fans point×replication cells out on the
// ThreadPool, and aggregates per-point statistics in replication order —
// so the reported numbers are bit-identical no matter how many worker
// threads ran the sweep or how the shards interleaved.
//
// Seeds derive from the base seed with SplitMix64 (seed-stream scheme in
// DESIGN.md): seed(point, rep) = splitmix64(splitmix64(base + point) + rep).
// The derivation depends only on the cell's coordinates, never on shard
// order, so adding a point or raising the thread count cannot disturb any
// other cell's stream. The legacy kSequential stream (base + rep, shared
// across points) is kept for run_replicated compatibility.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "obs/metrics_registry.hpp"

namespace epajsrm::core {

/// How per-replication seeds derive from the base seed.
enum class SeedStream {
  /// splitmix64(splitmix64(base + point) + rep): decorrelated across both
  /// grid axes, shard-order independent. The default.
  kSplitMix,
  /// base + rep, identical across points — the historical run_replicated
  /// scheme, kept so its statistics stay reproducible.
  kSequential,
  /// The factory's returned config.seed is authoritative; the engine does
  /// not stamp a derived seed over it. For callers whose points are
  /// already-complete configs (the scenario service batches requests this
  /// way) — the cache key covers config.seed, so the engine must not
  /// perturb it. seed_for() degenerates to base_seed under this stream.
  kConfig,
};

/// Live sweep progress, delivered through EnsembleConfig::on_progress.
struct EnsembleProgress {
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
  /// Simulator events dispatched by the finished shards.
  std::uint64_t sim_events = 0;
  /// Wall-clock event throughput of the sweep so far (events/sec).
  double events_per_sec = 0.0;
  /// Naive remaining-shards estimate (seconds); 0 until one shard lands.
  double eta_seconds = 0.0;
};

/// Engine-wide knobs; per-point configuration lives in the point itself.
struct EnsembleConfig {
  std::size_t replications = 8;
  std::uint64_t base_seed = 1000;
  /// Worker threads (0 → hardware concurrency).
  std::size_t threads = 0;
  SeedStream seed_stream = SeedStream::kSplitMix;
  /// Merge every shard's metrics registry into EnsembleResult's
  /// merged_metrics. Forces observability on for each cell with wall
  /// instruments, event-loop profiling and log tracing off, so each
  /// shard's frame is a pure function of its simulated run and the merge
  /// (counters sum, gauges last-write in fixed shard order, histograms
  /// bucket-wise add — all associative) is bit-identical no matter how
  /// many threads ran the sweep.
  bool merge_metrics = false;
  /// Keep every cell's full RunResult in EnsembleResult::run_results
  /// (flat (point, replication) order). Off by default: study-scale sweeps
  /// only need the aggregated statistics, and per-cell job reports are the
  /// bulk of a result's footprint.
  bool keep_run_results = false;
  /// Rate-limited live progress callback. Invoked from worker threads
  /// under the engine's progress lock — keep it cheap and don't assume a
  /// particular thread. Never invoked concurrently with itself.
  std::function<void(const EnsembleProgress&)> on_progress;
  /// Minimum wall-clock spacing between on_progress calls; the final
  /// (shards_done == shards_total) call always fires.
  std::int64_t progress_interval_ms = 250;
};

/// One replication's headline metrics, kept for streaming output.
struct EnsembleObservation {
  std::size_t point = 0;
  std::size_t replication = 0;
  std::uint64_t seed = 0;
  std::uint64_t sim_events = 0;
  double total_kwh = 0.0;
  double mean_utilization = 0.0;
  double median_wait_minutes = 0.0;
  double violation_fraction = 0.0;
  double jobs_completed = 0.0;
  double makespan_hours = 0.0;
  /// Resilience-plane counters (nonzero only when faults were injected).
  std::uint64_t node_crashes = 0;
  std::uint64_t jobs_requeued = 0;
};

/// Across-seed statistics for one parameter point.
struct EnsembleCell {
  std::size_t point = 0;
  ReplicatedResult stats;
  /// The seeds used, in replication order (provenance for replays).
  std::vector<std::uint64_t> seeds;
};

/// Where one shard's slice of the merged metrics came from.
struct ShardMetricsProvenance {
  std::size_t point = 0;
  std::size_t replication = 0;
  std::uint64_t seed = 0;
  std::uint64_t sim_events = 0;
  /// Metrics the shard's frame contributed (counters + gauges +
  /// histograms).
  std::size_t metric_count = 0;
};

struct EnsembleResult {
  std::vector<EnsembleCell> cells;
  /// Every replication in (point, replication) order.
  std::vector<EnsembleObservation> observations;

  /// Full per-cell results in flat (point, replication) order; empty
  /// unless EnsembleConfig::keep_run_results was set.
  std::vector<RunResult> run_results;

  /// True when EnsembleConfig::merge_metrics produced merged_metrics.
  bool metrics_merged = false;
  /// Union of every shard's registry, merged in flat (point, replication)
  /// order regardless of which thread ran which shard.
  obs::MetricsFrame merged_metrics;
  /// One entry per shard, in the merge order.
  std::vector<ShardMetricsProvenance> metrics_provenance;

  /// Writes one JSON object per observation, in deterministic
  /// (point, replication) order.
  void write_jsonl(std::ostream& out) const;
};

/// Runs a seed×parameter grid. Usage:
///
///   EnsembleEngine engine({.replications = 32, .base_seed = 7});
///   engine.add_point("cap-3MW", [](std::uint64_t seed) { ... });
///   EnsembleResult r = engine.run();
///
/// add_point's factory receives the replication's derived seed and returns
/// the ScenarioConfig to run (the engine stamps config.seed afterwards, so
/// forgetting to copy it in is harmless — except under SeedStream::kConfig,
/// where the returned config's own seed is authoritative). The optional customize hook runs
/// on the built Scenario before run() — it executes on a worker thread and
/// must not share mutable state across replications.
class EnsembleEngine {
 public:
  using MakeConfig = std::function<ScenarioConfig(std::uint64_t seed)>;
  using Customize = std::function<void(Scenario&)>;

  explicit EnsembleEngine(EnsembleConfig config) : config_(config) {}

  /// Adds a parameter point; returns its index in the grid.
  std::size_t add_point(std::string label, MakeConfig make_config,
                        Customize customize = nullptr);

  /// Seed for (point, replication) under the configured stream. Pure.
  std::uint64_t seed_for(std::size_t point, std::size_t replication) const;

  std::size_t point_count() const { return points_.size(); }
  const EnsembleConfig& config() const { return config_; }

  /// Runs every (point, replication) cell on the pool and aggregates.
  /// May be called once per engine.
  EnsembleResult run();

 private:
  struct Point {
    std::string label;
    MakeConfig make_config;
    Customize customize;
  };

  EnsembleConfig config_;
  std::vector<Point> points_;
  bool ran_ = false;
};

}  // namespace epajsrm::core
