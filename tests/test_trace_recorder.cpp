#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "obs/observability.hpp"

namespace epajsrm::obs {
namespace {

/// Recorder with a hand-cranked wall clock: the lambda reads `now_ns`, so
/// tests control every timestamp and golden strings are deterministic.
struct FakeClockRecorder {
  std::int64_t now_ns = 0;
  TraceRecorder recorder;

  explicit FakeClockRecorder(std::size_t capacity = 64)
      : recorder(capacity, [this] { return now_ns; }) {}
};

TEST(TraceRecorder, RingEvictsOldestBeyondCapacity) {
  FakeClockRecorder f(4);
  for (int i = 0; i < 10; ++i) {
    f.recorder.instant("t", std::to_string(i));
  }
  EXPECT_EQ(f.recorder.capacity(), 4u);
  EXPECT_EQ(f.recorder.size(), 4u);
  EXPECT_EQ(f.recorder.recorded(), 10u);
  EXPECT_EQ(f.recorder.dropped(), 6u);

  const auto events = f.recorder.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "6");  // oldest retained
  EXPECT_EQ(events[3].name, "9");  // newest
}

TEST(TraceRecorder, ZeroCapacityClampsToOne) {
  FakeClockRecorder f(0);
  f.recorder.instant("t", "a");
  f.recorder.instant("t", "b");
  EXPECT_EQ(f.recorder.size(), 1u);
  EXPECT_EQ(f.recorder.events()[0].name, "b");
}

TEST(TraceRecorder, ClearResetsRingAndCounters) {
  FakeClockRecorder f(4);
  f.recorder.instant("t", "x");
  f.recorder.clear();
  EXPECT_EQ(f.recorder.size(), 0u);
  EXPECT_EQ(f.recorder.recorded(), 0u);
  EXPECT_TRUE(f.recorder.events().empty());
}

TEST(TraceRecorder, InstantCapturesSimClockAndIds) {
  FakeClockRecorder f;
  sim::SimTime sim_now = 42;
  f.recorder.set_sim_clock([&] { return sim_now; });
  f.now_ns = 1500;
  f.recorder.instant("sched", "job_start", 7, 3, {{"nodes", 4.0}});

  const auto events = f.recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sim_time, 42);
  EXPECT_EQ(events[0].wall_ns, 1500);
  EXPECT_EQ(events[0].job_id, 7);
  EXPECT_EQ(events[0].node_id, 3);
  EXPECT_EQ(events[0].kind, TraceKind::kInstant);
}

TEST(TraceRecorder, SpanRecordsWallDurationOnFinish) {
  FakeClockRecorder f;
  f.now_ns = 2000;
  ScopedSpan span = f.recorder.span("core", "pass");
  EXPECT_TRUE(span.active());
  span.attr("pending", 5.0);
  f.now_ns = 2600;
  span.finish();
  EXPECT_FALSE(span.active());
  span.finish();  // idempotent: no second event

  const auto events = f.recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kSpan);
  EXPECT_EQ(events[0].wall_ns, 2000);
  EXPECT_EQ(events[0].dur_ns, 600);
}

TEST(TraceRecorder, NestedSpansRecordDepth) {
  FakeClockRecorder f;
  {
    ScopedSpan outer = f.recorder.span("a", "outer");
    {
      ScopedSpan inner = f.recorder.span("a", "inner");
      f.recorder.instant("a", "tick");
    }
  }
  const auto events = f.recorder.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans land when they close: instant (depth 2), inner (1), outer (0).
  EXPECT_EQ(events[0].name, "tick");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
}

TEST(TraceRecorder, DefaultSpanIsInertNoOp) {
  ScopedSpan span;  // the disabled-observability path
  EXPECT_FALSE(span.active());
  span.attr("k", 1.0);
  span.attr("k", std::string("v"));
  span.set_job(1);
  span.set_node(2);
  span.finish();  // must not crash

  ScopedSpan via_null = span_of(nullptr, "sched", "pass");
  EXPECT_FALSE(via_null.active());
}

TEST(TraceRecorder, MovedFromSpanDoesNotDoubleRecord) {
  FakeClockRecorder f;
  {
    ScopedSpan a = f.recorder.span("m", "only");
    ScopedSpan b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(f.recorder.recorded(), 1u);
}

TEST(TraceRecorder, LogLineBecomesLogEventWithLevelAttr) {
  FakeClockRecorder f;
  f.recorder.log_line("rm", "allocated 4 nodes", "info");
  const auto events = f.recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kLog);
  ASSERT_EQ(events[0].attrs.size(), 2u);
  EXPECT_EQ(events[0].attrs[0].key, "level");
  EXPECT_EQ(events[0].attrs[0].str, "info");
  EXPECT_EQ(events[0].attrs[1].key, "message");
  EXPECT_EQ(events[0].attrs[1].str, "allocated 4 nodes");
}

TEST(TraceRecorder, JsonlExportGolden) {
  FakeClockRecorder f;
  f.now_ns = 1500;
  f.recorder.instant("sched", "job_start", 7, 3,
                     {{"nodes", 4.0}, {"reason", std::string("ok")}});
  f.now_ns = 2000;
  {
    ScopedSpan span = f.recorder.span("core", "pass");
    span.attr("pending", 5.0);
    f.now_ns = 2600;
  }

  std::ostringstream out;
  f.recorder.export_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"sim_time_us\":0,\"wall_ns\":1500,\"dur_ns\":0,\"depth\":0,"
            "\"kind\":\"instant\",\"component\":\"sched\","
            "\"name\":\"job_start\",\"job_id\":7,\"node_id\":3,"
            "\"attrs\":{\"nodes\":4,\"reason\":\"ok\"}}\n"
            "{\"sim_time_us\":0,\"wall_ns\":2000,\"dur_ns\":600,\"depth\":0,"
            "\"kind\":\"span\",\"component\":\"core\",\"name\":\"pass\","
            "\"attrs\":{\"pending\":5}}\n");
}

TEST(TraceRecorder, ChromeTraceExportGolden) {
  FakeClockRecorder f;
  f.now_ns = 1500;
  f.recorder.instant("sched", "job_start", 7, -1, {{"nodes", 4.0}});
  f.now_ns = 2000;
  {
    ScopedSpan span = f.recorder.span("core", "pass");
    f.now_ns = 2600;
  }

  std::ostringstream out;
  f.recorder.export_chrome_trace(out);
  EXPECT_EQ(out.str(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
            "{\"pid\":1,\"tid\":1,\"ph\":\"i\",\"s\":\"t\",\"ts\":1.500,"
            "\"cat\":\"sched\",\"name\":\"job_start\","
            "\"args\":{\"sim_time_us\":0,\"job_id\":7,\"nodes\":4}},\n"
            "{\"pid\":1,\"tid\":1,\"ph\":\"X\",\"ts\":2.000,\"dur\":0.600,"
            "\"cat\":\"core\",\"name\":\"pass\","
            "\"args\":{\"sim_time_us\":0}}\n"
            "]}\n");
}

TEST(TraceRecorder, JsonEscapingOfStringsAndControls) {
  FakeClockRecorder f;
  f.recorder.instant("c\"at", "line\nbreak", -1, -1,
                     {{"msg", std::string("tab\there \\ \"quote\"")}});
  std::ostringstream out;
  f.recorder.export_jsonl(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"component\":\"c\\\"at\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"line\\nbreak\""), std::string::npos);
  EXPECT_NE(s.find("tab\\there \\\\ \\\"quote\\\""), std::string::npos);
}

TEST(Observability, CreateIfRespectsEnabledFlag) {
  ObsConfig off;
  EXPECT_EQ(Observability::create_if(off), nullptr);

  ObsConfig on;
  on.enabled = true;
  on.trace_capacity = 128;
  const auto o = Observability::create_if(on);
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->trace().capacity(), 128u);
  EXPECT_TRUE(o->metrics().enabled());

  ScopedSpan span = span_of(o.get(), "sched", "pass");
  EXPECT_TRUE(span.active());
}

}  // namespace
}  // namespace epajsrm::obs
