file(REMOVE_RECURSE
  "libepajsrm_rm.a"
)
