# Empty dependencies file for bench_idle_shutdown.
# This may be replaced when dependencies are built.
