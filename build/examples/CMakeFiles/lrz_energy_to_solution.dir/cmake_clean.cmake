file(REMOVE_RECURSE
  "CMakeFiles/lrz_energy_to_solution.dir/lrz_energy_to_solution.cpp.o"
  "CMakeFiles/lrz_energy_to_solution.dir/lrz_energy_to_solution.cpp.o.d"
  "lrz_energy_to_solution"
  "lrz_energy_to_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrz_energy_to_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
