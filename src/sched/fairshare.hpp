// Fair-share usage tracking — the "fairness" scheduling goal of Q3(d).
//
// Consumed core-seconds per user decay with a configurable half-life; the
// queue comparator subtracts a usage penalty from job priority so heavy
// users sink. (SLURM's multifactor plugin shape, reduced to its core.)
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/time.hpp"

namespace epajsrm::sched {

/// Decayed per-user resource usage.
class FairShareTracker {
 public:
  /// `half_life` of historical usage (default one week).
  explicit FairShareTracker(sim::SimTime half_life = 7 * sim::kDay)
      : half_life_(half_life) {}

  /// Records `core_seconds` consumed by `user` at time `now`.
  void record_usage(const std::string& user, double core_seconds,
                    sim::SimTime now);

  /// Decayed usage of `user` as of `now` (core-seconds).
  double usage(const std::string& user, sim::SimTime now) const;

  /// Usage normalised to the heaviest user at `now`, in [0,1]; 0 for
  /// unknown users or when nobody has usage.
  double usage_factor(const std::string& user, sim::SimTime now) const;

 private:
  double decayed(double value, sim::SimTime from, sim::SimTime to) const;

  struct Entry {
    double core_seconds = 0.0;
    sim::SimTime as_of = 0;
  };
  sim::SimTime half_life_;
  /// Ordered so usage_factor's scan over all users (max + FP compares)
  /// visits entries in one canonical order on every run and partition.
  std::map<std::string, Entry> usage_;
};

/// Effective priority for queue ordering: static job priority minus the
/// fair-share penalty (`weight` priority units at factor 1).
double effective_priority(int job_priority, double usage_factor,
                          double weight = 2.0);

}  // namespace epajsrm::sched
