#pragma once

#include "a/x.hpp"

namespace fixture::a {
struct Y {};
}  // namespace fixture::a
