// Determinism-keyed LRU result cache.
//
// The key is core::scenario_hash(normalized config); the value is the
// response payload stored verbatim as lines. Because a run is a pure
// function of its config and the payload renderer is byte-stable, a cache
// hit returns exactly the bytes a recompute would produce — the svc test
// suite proves this by evicting an entry, recomputing, and comparing.
//
// Not thread-safe by itself; ScenarioService serializes access under its
// own lock.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace epajsrm::svc {

class ResultCache {
 public:
  /// `capacity` = maximum retained entries (>= 1 enforced; a zero-capacity
  /// cache would turn every insert into an immediate self-eviction).
  explicit ResultCache(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// Payload for `key`, or nullptr. A hit refreshes LRU recency. The
  /// pointer stays valid until the next insert().
  const std::vector<std::string>* find(const std::string& key);

  /// Stores (or refreshes) `key`, evicting the least-recently-used entry
  /// beyond capacity.
  void insert(const std::string& key, std::vector<std::string> payload);

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  using Entry = std::pair<std::string, std::vector<std::string>>;

  std::size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace epajsrm::svc
