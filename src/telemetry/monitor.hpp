// Periodic monitoring service: builds the sensor hierarchy for a cluster
// and samples the headline series every tick. This is the "monitoring"
// half of Figure 1; control policies subscribe as observers to close the
// loop.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "sim/simulation.hpp"
#include "telemetry/sensor.hpp"
#include "telemetry/time_series.hpp"

namespace epajsrm::telemetry {

/// Samples cluster sensors on a fixed period and retains key series.
class MonitoringService {
 public:
  /// Builds node/PDU/machine sensors under "<cluster name>." in `registry`.
  MonitoringService(sim::Simulation& sim, platform::Cluster& cluster,
                    sim::SimTime period = 10 * sim::kSecond,
                    std::size_t history = 16384);

  /// Begins periodic sampling (idempotent).
  void start();

  /// Stops sampling at the next tick.
  void stop() { running_ = false; }

  sim::SimTime period() const { return period_; }

  /// Registers an observer called on every tick after sampling; the hook
  /// is how control loops (Figure 1 "control") attach to monitoring.
  void add_observer(std::function<void(sim::SimTime)> observer) {
    observers_.push_back(std::move(observer));
  }

  /// The sensor hierarchy (Power API shape).
  const SensorRegistry& registry() const { return registry_; }

  // --- retained series ----------------------------------------------------

  const TimeSeries& machine_power() const { return machine_power_; }
  const TimeSeries& facility_power() const { return facility_power_; }
  const TimeSeries& utilization() const { return utilization_; }
  const TimeSeries& max_temperature() const { return max_temperature_; }
  /// Retained series for one PDU, or nullptr for a PDU the facility does
  /// not have — callers must handle the sentinel (telemetry quality varies
  /// by plant; an unknown sensor is data, not a crash).
  const TimeSeries* pdu_power(platform::PduId pdu) const {
    if (static_cast<std::size_t>(pdu) >= pdu_power_.size()) return nullptr;
    return pdu_power_[pdu].get();
  }

  /// Forces one sample now (also used by tests). Does not notify
  /// observers; use tick() for the full sampling + notification step.
  void sample(sim::SimTime now);

  /// One full monitoring step: sample, then notify every observer. This
  /// is what an external driver (core::EpaJsrmSolution's control loop)
  /// calls; start() drives it internally.
  void tick(sim::SimTime now) {
    sample(now);
    for (auto& observer : observers_) observer(now);
  }

  std::uint64_t tick_count() const { return ticks_; }

 private:
  void build_sensors();

  sim::Simulation* sim_;
  platform::Cluster* cluster_;
  sim::SimTime period_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;

  SensorRegistry registry_;
  TimeSeries machine_power_;
  TimeSeries facility_power_;
  TimeSeries utilization_;
  TimeSeries max_temperature_;
  std::vector<std::unique_ptr<TimeSeries>> pdu_power_;

  std::vector<std::function<void(sim::SimTime)>> observers_;
};

}  // namespace epajsrm::telemetry
