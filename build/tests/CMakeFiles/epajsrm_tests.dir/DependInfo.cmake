
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocator.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_allocator.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_allocator.cpp.o.d"
  "/root/repo/tests/test_capability_window.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_capability_window.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_capability_window.cpp.o.d"
  "/root/repo/tests/test_capmc.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_capmc.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_capmc.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_collector.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_collector.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_collector.cpp.o.d"
  "/root/repo/tests/test_coordinator.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_coordinator.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_coordinator.cpp.o.d"
  "/root/repo/tests/test_energy_accounting.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_energy_accounting.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_energy_accounting.cpp.o.d"
  "/root/repo/tests/test_energy_conservation.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_energy_conservation.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_energy_conservation.cpp.o.d"
  "/root/repo/tests/test_energy_source.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_energy_source.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_energy_source.cpp.o.d"
  "/root/repo/tests/test_epa_balancer.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_balancer.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_balancer.cpp.o.d"
  "/root/repo/tests/test_epa_capping.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_capping.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_capping.cpp.o.d"
  "/root/repo/tests/test_epa_lifecycle.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_lifecycle.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_lifecycle.cpp.o.d"
  "/root/repo/tests/test_epa_optimization.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_optimization.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_optimization.cpp.o.d"
  "/root/repo/tests/test_epa_response.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_response.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_epa_response.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_facility.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_facility.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_facility.cpp.o.d"
  "/root/repo/tests/test_fairshare.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_fairshare.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_fairshare.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_job.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_job.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_job.cpp.o.d"
  "/root/repo/tests/test_logger.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_logger.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_logger.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_policy_invariants.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_policy_invariants.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_policy_invariants.cpp.o.d"
  "/root/repo/tests/test_power_api.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_power_api.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_power_api.cpp.o.d"
  "/root/repo/tests/test_power_model.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_power_model.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_power_model.cpp.o.d"
  "/root/repo/tests/test_predict.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_predict.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_predict.cpp.o.d"
  "/root/repo/tests/test_pstate.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_pstate.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_pstate.cpp.o.d"
  "/root/repo/tests/test_ramp_and_experiment.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_ramp_and_experiment.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_ramp_and_experiment.cpp.o.d"
  "/root/repo/tests/test_rm.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_rm.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_rm.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_schedulers.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_schedulers.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_schedulers.cpp.o.d"
  "/root/repo/tests/test_scoreboard_report.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_scoreboard_report.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_scoreboard_report.cpp.o.d"
  "/root/repo/tests/test_sensor.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_sensor.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_sensor.cpp.o.d"
  "/root/repo/tests/test_sim_time.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_sim_time.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_sim_time.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_solution.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_solution.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_solution.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_survey.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_survey.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_survey.cpp.o.d"
  "/root/repo/tests/test_swf.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_swf.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_swf.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tariff.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_tariff.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_tariff.cpp.o.d"
  "/root/repo/tests/test_thermal.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_thermal.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_time_series.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_time_series.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_time_series.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/epajsrm_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/epajsrm_tests.dir/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/epajsrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/epajsrm_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/epa/CMakeFiles/epajsrm_epa.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/epajsrm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/epajsrm_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/epajsrm_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/epajsrm_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/epajsrm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/epajsrm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/epajsrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/epajsrm_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/epajsrm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
