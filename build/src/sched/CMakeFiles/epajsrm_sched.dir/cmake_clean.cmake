file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_sched.dir/backfill.cpp.o"
  "CMakeFiles/epajsrm_sched.dir/backfill.cpp.o.d"
  "CMakeFiles/epajsrm_sched.dir/fairshare.cpp.o"
  "CMakeFiles/epajsrm_sched.dir/fairshare.cpp.o.d"
  "CMakeFiles/epajsrm_sched.dir/fcfs.cpp.o"
  "CMakeFiles/epajsrm_sched.dir/fcfs.cpp.o.d"
  "CMakeFiles/epajsrm_sched.dir/scheduler.cpp.o"
  "CMakeFiles/epajsrm_sched.dir/scheduler.cpp.o.d"
  "libepajsrm_sched.a"
  "libepajsrm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
