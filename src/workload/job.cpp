#include "workload/job.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epajsrm::workload {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:    return "queued";
    case JobState::kStarting:  return "starting";
    case JobState::kRunning:   return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kKilled:    return "killed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

Job::Job(JobSpec spec) : spec_(std::move(spec)) {
  if (spec_.nodes == 0) throw std::invalid_argument("job needs >= 1 node");
  if (spec_.runtime_ref <= 0) {
    throw std::invalid_argument("job runtime must be positive");
  }
}

double Job::speed_at(double freq_ratio) const {
  freq_ratio = std::clamp(freq_ratio, 1e-6, 1.0);
  const double beta = spec_.profile.freq_sensitive_fraction;
  return 1.0 / (beta / freq_ratio + (1.0 - beta));
}

void Job::begin_execution(sim::SimTime now, double freq_ratio) {
  // Placement spread stretches the communication fraction linearly: a
  // maximally spread allocation doubles communication time.
  const double comm_stretch =
      1.0 + spec_.profile.comm_fraction * placement_spread_;
  work_total_ = sim::to_seconds(spec_.runtime_ref) * runtime_scale_ *
                comm_stretch;
  work_done_ = 0.0;
  speed_ = speed_at(freq_ratio);
  last_update_ = now;
  start_time_ = now;
  state_ = JobState::kRunning;
}

sim::SimTime Job::update_speed(sim::SimTime now, double freq_ratio) {
  if (now > last_update_) {
    work_done_ += sim::to_seconds(now - last_update_) * speed_;
    work_done_ = std::min(work_done_, work_total_);
    last_update_ = now;
  }
  speed_ = speed_at(freq_ratio);
  return remaining_time(now);
}

sim::SimTime Job::remaining_time(sim::SimTime now) const {
  double done = work_done_;
  if (now > last_update_) {
    done += sim::to_seconds(now - last_update_) * speed_;
  }
  const double remaining = std::max(0.0, work_total_ - done);
  return sim::from_seconds(remaining / speed_);
}

}  // namespace epajsrm::workload
