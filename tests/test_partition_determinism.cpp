// Lax-sync partitioned core determinism (tsan payload): the same seeded
// fault-storm scenario must produce a byte-identical RunResult — every
// double compared by bit pattern — at 1, 2, 4 and 8 partitions, and the
// power ledger must pass its exact-aggregate parity audit after each run.
// This is the executable form of the DESIGN.md §15 claim that partition
// count is an execution knob, not a model parameter.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "check/invariant_auditor.hpp"
#include "core/run_result_digest.hpp"
#include "core/scenario_builder.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"

namespace epajsrm {
namespace {

constexpr std::uint64_t kSeed = 99173;

// 256 nodes = 8 racks x 32-node PDUs under the default layout, so the
// 8-partition run gets one PDU per partition and the 2/4 runs exercise
// multi-PDU partitions.
core::ScenarioConfig storm_config(std::uint32_t partitions) {
  auto b = core::Scenario::builder()
               .label("partition-storm")
               .nodes(256)
               .job_count(40)
               .seed(kSeed)
               .horizon(2 * sim::kDay)
               .partitions(partitions)
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = true;
                 c.solution.resilience.checkpoint_interval =
                     10 * sim::kMinute;
               });
  return std::move(b).take_config();
}

void inject_storm(core::Scenario& scenario) {
  fault::FailureModel model;
  model.mtbf_hours = 12.0;  // storm: many crashes across the horizon
  model.repair_time = 20 * sim::kMinute;
  fault::FaultPlan plan = model.generate(
      scenario.config().nodes, scenario.config().horizon, kSeed);
  plan.sensor_dropout(2 * sim::kHour, sim::kHour, 0.8)
      .sensor_noise(6 * sim::kHour, 2 * sim::kHour, 0.05)
      .capmc_failure(4 * sim::kHour, sim::kHour, 0.7);
  fault::FaultInjector::Config config;
  config.seed = kSeed;
  fault::FaultInjector::install(scenario.solution(), plan, config);
}

struct StormRun {
  std::string digest;
  std::string ledger_parity;
  std::uint64_t node_crashes = 0;
};

StormRun run_storm(std::uint32_t partitions) {
  core::Scenario scenario(storm_config(partitions));
  inject_storm(scenario);
  const core::RunResult result = scenario.run();
  StormRun out;
  out.digest = core::run_result_digest(result);
  out.ledger_parity = scenario.solution().ledger().audit_parity();
  out.node_crashes = result.node_crashes;
  return out;
}

TEST(PartitionDeterminism, ByteIdenticalAcrossOneTwoFourEightPartitions) {
  const StormRun classic = run_storm(1);
  // The storm actually bites — a fault-free run would not validate the
  // epoch-coupled fault path.
  EXPECT_GT(classic.node_crashes, 0u);
  EXPECT_EQ(classic.ledger_parity, std::string{});

  for (const std::uint32_t partitions : {2u, 4u, 8u}) {
    const StormRun partitioned = run_storm(partitions);
    EXPECT_EQ(partitioned.digest, classic.digest)
        << partitions << " partitions diverged from the classic run";
    EXPECT_EQ(partitioned.ledger_parity, std::string{})
        << partitions << " partitions";
  }
}

TEST(PartitionDeterminism, AuditorConservationHoldsAtEveryEpochMerge) {
  core::Scenario scenario(storm_config(4));
  inject_storm(scenario);
  ASSERT_NE(scenario.partition_domain(), nullptr);
  check::AuditorConfig audit;
  // Every event: sparse sampling would see a crash-repair pair
  // (Off -> Booting -> Idle) as one illegal compound edge.
  audit.check_every_events = 1;
  audit.throw_on_violation = true;
  check::InvariantAuditor auditor(scenario.solution(), audit);
  auditor.watch(*scenario.partition_domain());
  const core::RunResult result = scenario.run();
  EXPECT_GT(result.node_crashes, 0u);
  EXPECT_GT(auditor.epoch_audits(), 0u);
  EXPECT_EQ(auditor.violation_count(), 0u);
}

TEST(PartitionDeterminism, WideSkewWindowDoesNotChangeResults) {
  const StormRun classic = run_storm(1);
  // A skew window spanning many control periods lets partitions run far
  // ahead of each other between epochs; results must not move.
  core::ScenarioConfig config = storm_config(4);
  config.skew_window = 6 * sim::kHour;
  core::Scenario scenario(std::move(config));
  inject_storm(scenario);
  const core::RunResult result = scenario.run();
  EXPECT_EQ(core::run_result_digest(result), classic.digest);
  EXPECT_EQ(scenario.solution().ledger().audit_parity(), std::string{});
}

}  // namespace
}  // namespace epajsrm
