#pragma once

#include "base/core.hpp"

namespace fixture::mid {
inline int a() { return fixture::base::unit(); }
}  // namespace fixture::mid
