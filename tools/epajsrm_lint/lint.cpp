// epajsrm_lint — project-specific correctness lint for the EPA JSRM tree.
//
// Rules (suppress a line with `// lint:allow(<rule>)`):
//
//   const-cast    src/**        `const_cast` is banned; const-correctness
//                               holes hide mutation the energy accounting
//                               must see.
//   wall-clock    src/** except src/obs/
//                               wall-clock reads (steady_clock, ...)
//                               break simulation determinism; only the
//                               observability plane may time real work.
//   rand          src/** except src/obs/
//                               nondeterministic randomness (rand(),
//                               random_device) breaks replayability;
//                               seeded engines are fine.
//   unit-suffix   src/**        double/float variables whose name speaks
//                               of power or energy must carry a unit
//                               suffix (_watts, _joules, _kwh, ...) so
//                               unit bugs are visible at the call site.
//   unguarded-at  src/sim, src/platform, src/power, src/telemetry,
//                 src/core      throwing `.at()` in hot dispatch paths;
//                               use checked contracts + operator[].
//   scenario-aggregate
//                 src/** except src/core/
//                               raw `ScenarioConfig{...}` aggregate
//                               initialization bypasses ScenarioBuilder's
//                               validation and defaulting; construct
//                               scenarios through core::ScenarioBuilder.
//   unbounded-series
//                 src/telemetry/
//                               push_back/emplace_back into containers
//                               named like retained sample stores
//                               (*series*, *samples*, *history*,
//                               *readings*) grows without bound over a
//                               run; retain telemetry in the fixed-budget
//                               obs::DownsamplingSeries ring store.
//   power-sweep   src/** except src/platform/ and src/power/ledger.*
//                               aggregating power by sweeping
//                               cluster.nodes() (reading current_watts()
//                               or power_cap_watts() inside a range-for
//                               over .nodes()) duplicates PowerLedger
//                               state O(n) per query; read the ledger's
//                               O(1) aggregates instead. A suppression on
//                               the loop header covers the whole loop
//                               body (the auditor's brute-force parity
//                               sweep is the sanctioned exception).
//   raw-socket    src/** except src/net/carrier.*
//                               raw socket(2) use — socket-header
//                               includes (<sys/socket.h>, <sys/un.h>,
//                               <netinet/*.h>, <arpa/inet.h>) or direct
//                               `socket(...)` calls — outside the shared
//                               carrier scatters transport concerns;
//                               every wire goes through net::LineChannel.
//
// Usage:
//   epajsrm_lint <src-dir>             lint the tree; exit 1 on violations
//   epajsrm_lint --self-test <dir>     verify each rule fires on its
//                                      bad_*.cpp fixture and stays silent
//                                      on clean.cpp; exit 1 on mismatch
//
// Plain line-based scanning over comment- and string-stripped text (the
// stripper is shared with epajsrm_analyze, see tools/support): no
// compiler, no regex engine, no dependencies, deterministic output.
// C++17.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "support/source_text.hpp"

namespace fs = std::filesystem;
namespace ts = epajsrm::toolsupport;

namespace {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string text;
};

// --- unit-suffix helpers ----------------------------------------------------

bool names_power_or_energy(const std::string& id_lower) {
  return id_lower.find("power") != std::string::npos ||
         id_lower.find("energy") != std::string::npos ||
         id_lower.find("watt") != std::string::npos ||
         id_lower.find("joule") != std::string::npos;
}

// A quantity name passes when, after trailing digits/underscores are
// stripped, it ends in a unit ("watts", "kwh", ...) or a semantic ending
// that marks a dimensionless derived value ("factor", "ratio", ...).
bool has_unit_or_semantic_suffix(const std::string& identifier) {
  static const std::vector<std::string> kEndings = {
      // units
      "watts", "watt", "_w", "mw", "kw", "gw",
      "joules", "joule", "_j", "kj", "mj", "gj",
      "wh", "kwh", "mwh",
      // dimensionless / derived quantities named after what they scale
      "alpha", "intensity", "weight", "factor", "ratio", "scale", "share",
      "fraction", "price", "cost", "error", "sigma", "rel", "margin",
  };
  std::string id = ts::to_lower(identifier);
  while (!id.empty() && (id.back() == '_' ||
                         (id.back() >= '0' && id.back() <= '9'))) {
    id.pop_back();
  }
  for (const std::string& ending : kEndings) {
    if (ts::ends_with(id, ending)) return true;
  }
  return false;
}

// --- hand-rolled matchers ---------------------------------------------------
//
// Each replaces a former std::regex. They scan the stripped code view,
// so literals and comments can never match; word searches respect
// identifier boundaries.

// True when the identifier immediately before `at` (skipping whitespace
// backwards) equals `word`.
bool preceded_by_word(const std::string& s, std::size_t at,
                      const std::string& word) {
  std::size_t i = at;
  while (i > 0 && (s[i - 1] == ' ' || s[i - 1] == '\t')) --i;
  const std::size_t b = ts::ident_start_before(s, i);
  return b < i && s.compare(b, i - b, word) == 0;
}

// True when `.` or `->` ends just before `at` (skipping whitespace);
// sets `*before` to the index in front of the accessor.
bool member_access_before(const std::string& s, std::size_t at,
                          std::size_t* before) {
  std::size_t i = at;
  while (i > 0 && (s[i - 1] == ' ' || s[i - 1] == '\t')) --i;
  if (i >= 2 && s[i - 1] == '>' && s[i - 2] == '-') {
    *before = i - 2;
    return true;
  }
  if (i >= 1 && s[i - 1] == '.') {
    *before = i - 1;
    return true;
  }
  return false;
}

// True when `s` continues, from `i`, with `( <ws> )` — an empty
// argument list.
bool empty_call_after(const std::string& s, std::size_t i) {
  i = ts::skip_ws(s, i);
  if (i >= s.size() || s[i] != '(') return false;
  i = ts::skip_ws(s, i + 1);
  return i < s.size() && s[i] == ')';
}

// steady_clock | system_clock | high_resolution_clock | gettimeofday |
// clock_gettime | time(nullptr|NULL|0)
bool hits_wall_clock(const std::string& code) {
  for (const char* id :
       {"steady_clock", "system_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime"}) {
    if (ts::contains_word(code, id)) return true;
  }
  std::size_t pos = 0;
  while ((pos = ts::find_word(code, "time", pos)) != std::string::npos) {
    std::size_t i = ts::skip_ws(code, pos + 4);
    pos += 4;
    if (i >= code.size() || code[i] != '(') continue;
    i = ts::skip_ws(code, i + 1);
    std::size_t end = i;
    if (ts::ident_at(code, i) == "nullptr" || ts::ident_at(code, i) == "NULL") {
      end = i + ts::ident_at(code, i).size();
    } else if (i < code.size() && code[i] == '0') {
      end = i + 1;
    } else {
      continue;
    }
    end = ts::skip_ws(code, end);
    if (end < code.size() && code[end] == ')') return true;
  }
  return false;
}

// rand( | srand( | random_device
bool hits_rand(const std::string& code) {
  if (ts::contains_word(code, "random_device")) return true;
  for (const char* fn : {"rand", "srand"}) {
    std::size_t pos = 0;
    while ((pos = ts::find_word(code, fn, pos)) != std::string::npos) {
      const std::size_t i = ts::skip_ws(code, pos + std::string(fn).size());
      pos += std::string(fn).size();
      if (i < code.size() && code[i] == '(') return true;
    }
  }
  return false;
}

// `.nodes ( )` / `-> nodes ( )` ending at or after `from`; returns the
// index of the accessor or npos.
std::size_t nodes_call_at(const std::string& code, std::size_t from) {
  std::size_t pos = from;
  while ((pos = ts::find_word(code, "nodes", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 5;
    std::size_t before = 0;
    if (!member_access_before(code, at, &before)) continue;
    if (!empty_call_after(code, at + 5)) continue;
    return at;
  }
  return std::string::npos;
}

// A line that opens (or is the continuation tail of) a range-for over
// cluster.nodes() / cluster_->nodes(). Two shapes: the whole header on
// one line (`for (... : x.nodes())`, no ';' between the for-paren and
// the call), or a wrapped header whose final line ends `...nodes()) {`.
// A range-for header contains no ';', which the caller exploits to
// detect brace-less single-statement bodies.
bool hits_nodes_sweep_header(const std::string& code) {
  std::size_t pos = 0;
  while ((pos = ts::find_word(code, "for", pos)) != std::string::npos) {
    const std::size_t open = ts::skip_ws(code, pos + 3);
    pos += 3;
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t call = nodes_call_at(code, open);
    if (call == std::string::npos) continue;
    if (code.find(';', open) < call) continue;  // classic for, not range
    return true;
  }
  // Wrapped tail: `... .nodes() ) {` at end of line.
  const std::size_t call = nodes_call_at(code, 0);
  if (call == std::string::npos) return false;
  std::size_t i = ts::skip_ws(code, call + 5);
  i = ts::skip_ws(code, code.find(')', i) + 1);  // close of nodes()
  if (i >= code.size() || code[i] != ')') return false;
  i = ts::skip_ws(code, i + 1);
  if (i < code.size() && code[i] == '{') i = ts::skip_ws(code, i + 1);
  return i >= code.size();
}

// Power-state getters whose per-node reads inside a sweep amount to
// re-aggregating what the ledger already holds. Getter calls only —
// `set_current_watts(...)` does not match.
bool hits_power_getter(const std::string& code) {
  for (const char* getter : {"current_watts", "power_cap_watts"}) {
    std::size_t pos = 0;
    while ((pos = ts::find_word(code, getter, pos)) != std::string::npos) {
      const std::size_t at = pos;
      const std::size_t len = std::string(getter).size();
      pos += len;
      std::size_t before = 0;
      if (!member_access_before(code, at, &before)) continue;
      if (empty_call_after(code, at + len)) return true;
    }
  }
  return false;
}

// Appending to a container whose name marks it as a retained sample
// store: over a long run that is unbounded telemetry growth. The ring
// store (obs::DownsamplingSeries) coarsens instead of growing; the
// receiver-name heuristic keeps transient output vectors (out, ids, ...)
// out of scope.
bool hits_unbounded_series(const std::string& code) {
  for (const char* method : {"push_back", "emplace_back"}) {
    std::size_t pos = 0;
    while ((pos = ts::find_word(code, method, pos)) != std::string::npos) {
      const std::size_t at = pos;
      const std::size_t len = std::string(method).size();
      pos += len;
      std::size_t i = ts::skip_ws(code, at + len);
      if (i >= code.size() || code[i] != '(') continue;
      std::size_t before = 0;
      if (!member_access_before(code, at, &before)) continue;
      std::size_t r = before;
      while (r > 0 && (code[r - 1] == ' ' || code[r - 1] == '\t')) --r;
      const std::size_t b = ts::ident_start_before(code, r);
      if (b >= r) continue;
      const std::string receiver = ts::to_lower(code.substr(b, r - b));
      if (receiver.find("series") != std::string::npos ||
          receiver.find("samples") != std::string::npos ||
          receiver.find("history") != std::string::npos ||
          receiver.find("readings") != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

// Socket-header include or a word-boundary `socket(` call. Includes are
// matched on the raw line (the code view of an #include directive is
// uninteresting either way); calls on the stripped view so comments and
// strings can never match.
bool hits_raw_socket(const std::string& code, const std::string& raw) {
  const std::string trimmed = ts::trim(raw);
  if (trimmed.rfind("#include", 0) == 0) {
    for (const char* header :
         {"sys/socket.h", "sys/un.h", "netinet/in.h", "netinet/tcp.h",
          "arpa/inet.h"}) {
      if (trimmed.find(header) != std::string::npos) return true;
    }
  }
  std::size_t pos = 0;
  while ((pos = ts::find_word(code, "socket", pos)) != std::string::npos) {
    const std::size_t i = ts::skip_ws(code, pos + 6);
    pos += 6;
    if (i < code.size() && code[i] == '(') return true;
  }
  return false;
}

// `ScenarioConfig{...}` / `ScenarioConfig name{...}` brace-init. Plain
// declarations (`ScenarioConfig c;`) and the struct's own definition
// (`struct ScenarioConfig {`) stay legal.
bool hits_scenario_aggregate(const std::string& code) {
  bool brace_init = false;
  std::size_t pos = 0;
  while ((pos = ts::find_word(code, "ScenarioConfig", pos)) !=
         std::string::npos) {
    const std::size_t at = pos;
    pos += 14;
    if (preceded_by_word(code, at, "struct") ||
        preceded_by_word(code, at, "class")) {
      return false;  // a line holding the type's own definition is legal
    }
    std::size_t i = ts::skip_ws(code, at + 14);
    const std::string name = ts::ident_at(code, i);
    if (!name.empty()) i = ts::skip_ws(code, i + name.size());
    if (i < code.size() && code[i] == '{') brace_init = true;
  }
  return brace_init;
}

// --- the linter -------------------------------------------------------------

class Linter {
 public:
  // `scope_by_path` = false in self-test mode: every rule applies to every
  // fixture regardless of directory layout.
  explicit Linter(bool scope_by_path) : scope_by_path_(scope_by_path) {}

  void lint_file(const fs::path& path, const std::string& rel) {
    const ts::SourceFile sf = ts::load_source(path);
    if (!sf.ok) {
      std::cerr << "epajsrm_lint: cannot read " << path << "\n";
      ++io_errors_;
      return;
    }
    const bool wallclock_scope = !scope_by_path_ || !in_dir(rel, "obs");
    const bool at_scope =
        !scope_by_path_ || in_dir(rel, "sim") || in_dir(rel, "platform") ||
        in_dir(rel, "power") || in_dir(rel, "telemetry") || in_dir(rel, "core");
    const bool aggregate_scope = !scope_by_path_ || !in_dir(rel, "core");
    const bool series_scope = !scope_by_path_ || in_dir(rel, "telemetry");
    const bool sweep_scope =
        !scope_by_path_ ||
        (!in_dir(rel, "platform") && rel.rfind("power/ledger.", 0) != 0);
    const bool socket_scope =
        !scope_by_path_ || rel.rfind("net/carrier.", 0) != 0;

    // power-sweep is the one context-sensitive rule: a range-for over
    // .nodes() opens a "sweep" region (tracked by brace depth) inside
    // which the power getters are banned. A suppression on the header
    // line covers the whole loop.
    int brace_depth = 0;
    int sweep_entry_depth = -1;   // -1: not inside a nodes() sweep
    bool sweep_allowed = false;   // header carried lint:allow(power-sweep)
    bool sweep_body_open = false; // saw the body's opening brace
    for (std::size_t li = 0; li < sf.code.size(); ++li) {
      const std::string& code = sf.code[li];
      const std::string& raw = sf.raw[li];
      const int line_no = static_cast<int>(li + 1);

      const auto flag = [&](const char* rule) {
        if (ts::has_allow_marker(raw, rule)) return;
        violations_.push_back({rel, line_no, rule, ts::trim(raw)});
      };

      if (ts::contains_word(code, "const_cast")) flag("const-cast");
      if (wallclock_scope && hits_wall_clock(code)) flag("wall-clock");
      if (wallclock_scope && hits_rand(code)) flag("rand");
      if (at_scope && code.find(".at(") != std::string::npos) {
        flag("unguarded-at");
      }
      if (aggregate_scope && hits_scenario_aggregate(code)) {
        flag("scenario-aggregate");
      }
      if (series_scope && hits_unbounded_series(code)) {
        flag("unbounded-series");
      }
      if (socket_scope && hits_raw_socket(code, raw)) {
        flag("raw-socket");
      }
      check_unit_suffix(code, raw, rel, line_no);

      if (sweep_scope) {
        if (sweep_entry_depth < 0 && hits_nodes_sweep_header(code)) {
          sweep_entry_depth = brace_depth;
          sweep_allowed = ts::has_allow_marker(raw, "power-sweep");
          sweep_body_open = false;
        }
        if (sweep_entry_depth >= 0 && !sweep_allowed &&
            hits_power_getter(code)) {
          flag("power-sweep");
        }
      }

      for (const char c : code) {
        if (c == '{') ++brace_depth;
        if (c == '}') --brace_depth;
      }
      if (sweep_entry_depth >= 0) {
        if (brace_depth > sweep_entry_depth) {
          sweep_body_open = true;
        } else if (sweep_body_open ||
                   code.find(';') != std::string::npos) {
          // Braced body closed, or a brace-less single-statement body
          // (no ';' can appear in a range-for header itself) ended.
          sweep_entry_depth = -1;
          sweep_allowed = false;
          sweep_body_open = false;
        }
      }
    }
  }

  const std::vector<Violation>& violations() const { return violations_; }
  int io_errors() const { return io_errors_; }

 private:
  static bool in_dir(const std::string& rel, const std::string& top) {
    return rel.rfind(top + "/", 0) == 0;
  }

  void check_unit_suffix(const std::string& code, const std::string& raw,
                         const std::string& rel, int line_no) {
    // `double`/`float`, optionally one `*`/`&`, then whitespace and the
    // declared identifier. Function declarations and qualified
    // definitions — identifier followed by `(`, `:` or `<` — are not
    // value-carrying variables and stay out of scope.
    for (const char* type : {"double", "float"}) {
      const std::size_t type_len = std::string(type).size();
      std::size_t pos = 0;
      while ((pos = ts::find_word(code, type, pos)) != std::string::npos) {
        std::size_t i = pos + type_len;
        pos += type_len;
        std::size_t j = ts::skip_ws(code, i);
        bool saw_ws = j > i;
        if (j < code.size() && (code[j] == '*' || code[j] == '&')) {
          i = j + 1;
          j = ts::skip_ws(code, i);
          saw_ws = j > i;
        }
        if (!saw_ws) continue;  // `double*x` / no separator: not a decl
        const std::string id = ts::ident_at(code, j);
        if (id.empty()) continue;
        const std::size_t after = ts::skip_ws(code, j + id.size());
        if (after < code.size() &&
            (code[after] == '(' || code[after] == ':' || code[after] == '<')) {
          continue;
        }
        if (!names_power_or_energy(ts::to_lower(id))) continue;
        if (has_unit_or_semantic_suffix(id)) continue;
        if (ts::has_allow_marker(raw, "unit-suffix")) continue;
        violations_.push_back({rel, line_no, "unit-suffix",
                               id + " lacks a unit suffix (_watts, _joules, "
                                    "_kwh, ...)"});
      }
    }
  }

  bool scope_by_path_;
  std::vector<Violation> violations_;
  int io_errors_ = 0;
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<fs::path> collect(const fs::path& root) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int lint_tree(const fs::path& root) {
  Linter linter(/*scope_by_path=*/true);
  for (const fs::path& file : collect(root)) {
    linter.lint_file(file, fs::relative(file, root).generic_string());
  }
  for (const Violation& v : linter.violations()) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.text
              << "\n";
  }
  if (!linter.violations().empty()) {
    std::cout << linter.violations().size() << " violation(s)\n";
    return 1;
  }
  if (linter.io_errors() > 0) return 1;
  std::cout << "epajsrm_lint: clean\n";
  return 0;
}

// Fixture contract: bad_<rule-with-underscores>.cpp must trip exactly its
// rule; clean.cpp (which exercises suppressions) must trip nothing.
int self_test(const fs::path& dir) {
  static const std::map<std::string, std::string> kExpected = {
      {"bad_const_cast.cpp", "const-cast"},
      {"bad_wallclock.cpp", "wall-clock"},
      {"bad_rand.cpp", "rand"},
      {"bad_unit_suffix.cpp", "unit-suffix"},
      {"bad_unguarded_at.cpp", "unguarded-at"},
      {"bad_scenario_aggregate.cpp", "scenario-aggregate"},
      {"bad_power_sweep.cpp", "power-sweep"},
      {"bad_unbounded_series.cpp", "unbounded-series"},
      {"bad_raw_socket.cpp", "raw-socket"},
  };
  int failures = 0;
  for (const auto& [name, rule] : kExpected) {
    const fs::path file = dir / name;
    Linter linter(/*scope_by_path=*/false);
    linter.lint_file(file, name);
    std::size_t expected_hits = 0;
    for (const Violation& v : linter.violations()) {
      if (v.rule == rule) {
        ++expected_hits;
      } else {
        std::cout << "FAIL " << name << ": stray [" << v.rule << "] at line "
                  << v.line << "\n";
        ++failures;
      }
    }
    if (expected_hits == 0) {
      std::cout << "FAIL " << name << ": rule [" << rule
                << "] did not fire\n";
      ++failures;
    } else {
      std::cout << "ok   " << name << ": [" << rule << "] fired "
                << expected_hits << "x\n";
    }
  }
  {
    Linter linter(/*scope_by_path=*/false);
    linter.lint_file(dir / "clean.cpp", "clean.cpp");
    for (const Violation& v : linter.violations()) {
      std::cout << "FAIL clean.cpp: unexpected [" << v.rule << "] at line "
                << v.line << "\n";
      ++failures;
    }
    if (linter.violations().empty()) std::cout << "ok   clean.cpp: silent\n";
  }
  if (failures > 0) {
    std::cout << failures << " self-test failure(s)\n";
    return 1;
  }
  std::cout << "epajsrm_lint: self-test passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--self-test") {
    return self_test(argv[2]);
  }
  if (argc == 2) {
    return lint_tree(argv[1]);
  }
  std::cerr << "usage: epajsrm_lint <src-dir> | epajsrm_lint --self-test "
               "<fixture-dir>\n";
  return 2;
}
