// Runtime metrics registry: named counters, gauges and log-bucketed
// histograms that components update on the hot path.
//
// Registration (name lookup, allocation) happens once, when a component
// attaches; after that the component holds a stable reference and updates
// are a single add/store — no hashing, no locks (the simulator is
// single-threaded). Snapshots copy values on demand, and a MetricsSampler
// turns periodic snapshots into a memory-bounded CSV time series.
//
// Histograms are HDR-style: a fixed grid of logarithmic buckets (16 linear
// sub-buckets per power of two) covering ~1e-6..1.7e13, so one layout
// serves nanoseconds and megawatts alike with <= 6.25 % relative bucket
// width. Quantile queries return exact bounds (the true pN lies inside the
// reported [lower, upper]); min/max are tracked exactly. The sum is
// accumulated in fixed-point 2^-16 quanta with wrapping uint64 arithmetic,
// so histogram merging (bucket-wise add) is fully associative and
// bit-exact — the property the ensemble's cross-shard metric merge needs
// to stay independent of thread count.
//
// A registry constructed disabled hands out shared scratch instruments and
// reports nothing: the no-op path for observability-off runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/series.hpp"
#include "sim/time.hpp"

namespace epajsrm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// The quantile answer a log-bucketed histogram can give exactly: the true
/// quantile lies in [lower, upper].
struct QuantileBounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// Log-bucketed (HDR-style) fixed-footprint histogram.
class Histogram {
 public:
  /// Linear sub-buckets per octave (power of two): bucket relative width
  /// is 1/kSubBuckets.
  static constexpr std::size_t kSubBuckets = 16;
  /// Octave range [2^kMinOctave, 2^(kMaxOctave+1)); values below land in
  /// the underflow bucket (with zero, negatives and NaN), values at or
  /// above in the overflow bucket.
  static constexpr int kMinOctave = -20;
  static constexpr int kMaxOctave = 43;
  static constexpr std::size_t kOctaves =
      static_cast<std::size_t>(kMaxOctave - kMinOctave + 1);
  /// Underflow + log grid + overflow.
  static constexpr std::size_t kBucketCount = kOctaves * kSubBuckets + 2;
  /// Fixed-point quantum of the sum accumulator.
  static constexpr double kSumQuantum = 1.0 / 65536.0;

  Histogram();

  void observe(double v);

  /// Bucket-wise accumulation of `other`. Associative and commutative
  /// bit-exact (counts and the fixed-point sum use wrapping uint64 adds;
  /// min/max are exact), so any merge tree over the same multiset of
  /// histograms produces identical bits.
  void merge_from(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const {
    return static_cast<double>(static_cast<std::int64_t>(sum_quanta_bits_)) *
           kSumQuantum;
  }
  double mean() const {
    return count_ > 0 ? sum() / static_cast<double>(count_) : 0.0;
  }
  double min() const { return minmax_count_ > 0 ? min_ : 0.0; }
  double max() const { return minmax_count_ > 0 ? max_ : 0.0; }
  /// Raw fixed-point sum bits (for bit-exact comparison and frames).
  std::uint64_t sum_quanta_bits() const { return sum_quanta_bits_; }
  std::uint64_t minmax_count() const { return minmax_count_; }

  /// Exact bounds containing the q-quantile (q in [0,1], clamped), further
  /// clamped to the exact [min, max]. {0, 0} when empty.
  QuantileBounds quantile_bounds(double q) const;
  /// Upper quantile bound — the conservative single-number answer.
  double quantile(double q) const { return quantile_bounds(q).upper; }

  /// Per-bucket counts; size kBucketCount, underflow first, overflow last.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Grid geometry: bucket i covers [lower, upper). Bucket 0 is
  /// (-inf, 2^kMinOctave), the last bucket [2^(kMaxOctave+1), +inf).
  static std::size_t bucket_index(double v);
  static double bucket_lower_bound(std::size_t i);
  static double bucket_upper_bound(std::size_t i);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  /// Sum in 2^-16 quanta, two's complement in a uint64 so accumulation
  /// wraps instead of hitting signed overflow UB.
  std::uint64_t sum_quanta_bits_ = 0;
  /// Observations that participated in min/max (non-NaN).
  std::uint64_t minmax_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One scalar of a snapshot. Histograms expand to `<name>.count`,
/// `<name>.sum`, `<name>.mean`, `<name>.max`, `<name>.p50`, `<name>.p90`
/// and `<name>.p99` samples.
struct MetricSample {
  std::string name;
  MetricKind kind;
  double value;
};

/// A histogram's mergeable state, detached from the registry. Buckets are
/// sparse (index, count) pairs sorted by index — only non-empty buckets
/// travel between shards.
struct FrameHistogram {
  std::uint64_t count = 0;
  std::uint64_t sum_quanta_bits = 0;
  std::uint64_t minmax_count = 0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  double sum() const {
    return static_cast<double>(static_cast<std::int64_t>(sum_quanta_bits)) *
           Histogram::kSumQuantum;
  }
  double mean() const {
    return count > 0 ? sum() / static_cast<double>(count) : 0.0;
  }
  QuantileBounds quantile_bounds(double q) const;
  double quantile(double q) const { return quantile_bounds(q).upper; }

  bool operator==(const FrameHistogram&) const = default;
};

/// A registry's exported state: plain sorted vectors, safe to move across
/// threads and to merge deterministically. This is the unit the ensemble
/// engine aggregates across shards and the exposition layer renders.
struct MetricsFrame {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, FrameHistogram>> histograms;

  std::size_t metric_count() const {
    return counters.size() + gauges.size() + histograms.size();
  }
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  bool operator==(const MetricsFrame&) const = default;
};

/// Merges `src` into `dst`: counters sum, gauges take `src`'s value when
/// present (so folding frames in fixed shard order gives last-write-by-
/// fixed-shard-index), histograms add bucket-wise. Associative — folding
/// left-to-right over any bracketing of the same frame sequence yields
/// bit-identical results.
void merge_frame(MetricsFrame& dst, const MetricsFrame& src);

/// Owner of all named instruments.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Gets or creates the named instrument. References stay valid for the
  /// registry's lifetime. On a disabled registry, a shared scratch
  /// instrument is returned and nothing is registered.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Number of registered instruments.
  std::size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Copies current values, sorted by name. Disabled registries return an
  /// empty snapshot.
  std::vector<MetricSample> snapshot() const;

  /// Exports the registry's full mergeable state (empty when disabled).
  MetricsFrame export_frame() const;

 private:
  bool enabled_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  Counter scratch_counter_;
  Gauge scratch_gauge_;
  Histogram scratch_histogram_;
};

/// Collects periodic registry snapshots into one DownsamplingSeries per
/// metric and renders them as a CSV time series (`time_s` column + one
/// column per metric). Memory is bounded: each column keeps at most
/// `budget_per_metric` buckets, and all columns coarsen in lockstep so
/// rows stay aligned. Metric names containing commas, quotes or newlines
/// are RFC 4180-escaped in the header; the header is the sorted union of
/// every metric ever sampled, so late-registered metrics get a stable
/// column (with empty cells for rows before their first sample).
class MetricsSampler {
 public:
  explicit MetricsSampler(const MetricsRegistry& registry,
                          std::size_t budget_per_metric = 1024)
      : registry_(&registry), budget_(budget_per_metric) {}

  /// Appends one row stamped at `now`. No-op on a disabled registry.
  void sample(sim::SimTime now);

  /// Rows sampled so far (CSV rows may be fewer after coarsening).
  std::size_t row_count() const {
    return static_cast<std::size_t>(samples_taken_);
  }

  void write_csv(std::ostream& out) const;

  /// The retained column for one snapshot scalar, or null if never seen.
  const DownsamplingSeries* series(const std::string& name) const;
  const std::map<std::string, DownsamplingSeries>& all_series() const {
    return series_;
  }

  /// Attaches the self-overhead meter: every sample() adds its own wall
  /// cost (ns) to `counter`. Null detaches.
  void set_overhead_counter(Counter* counter) { overhead_ns_ = counter; }

 private:
  const MetricsRegistry* registry_;
  std::size_t budget_;
  sim::SimTime width_ = 1;  // shared column bucket width (µs)
  std::map<std::string, DownsamplingSeries> series_;
  std::uint64_t samples_taken_ = 0;
  Counter* overhead_ns_ = nullptr;
};

}  // namespace epajsrm::obs
