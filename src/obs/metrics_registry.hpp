// Runtime metrics registry: named counters, gauges and fixed-bucket
// histograms that components update on the hot path.
//
// Registration (name lookup, allocation) happens once, when a component
// attaches; after that the component holds a stable reference and updates
// are a single add/store — no hashing, no locks (the simulator is
// single-threaded). Snapshots copy values on demand, and a MetricsSampler
// turns periodic snapshots into a time-series CSV.
//
// A registry constructed disabled hands out shared scratch instruments and
// reports nothing: the no-op path for observability-off runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: counts per (v <= bound) bucket plus an overflow
/// bucket, with running count/sum/min/max.
class Histogram {
 public:
  /// `upper_bounds` must be sorted ascending; an implicit +inf bucket is
  /// appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One scalar of a snapshot. Histograms expand to `<name>.count`,
/// `<name>.sum`, `<name>.mean` and `<name>.max` samples.
struct MetricSample {
  std::string name;
  MetricKind kind;
  double value;
};

/// Owner of all named instruments.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Gets or creates the named instrument. References stay valid for the
  /// registry's lifetime. On a disabled registry, a shared scratch
  /// instrument is returned and nothing is registered.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies on first registration only.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Number of registered instruments.
  std::size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Copies current values, sorted by name. Disabled registries return an
  /// empty snapshot.
  std::vector<MetricSample> snapshot() const;

 private:
  bool enabled_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  Counter scratch_counter_;
  Gauge scratch_gauge_;
  Histogram scratch_histogram_{{}};
};

/// Collects periodic registry snapshots and renders them as a CSV time
/// series (`time_s` column + one column per metric; metrics registered
/// after the first sample get empty cells in earlier rows).
class MetricsSampler {
 public:
  explicit MetricsSampler(const MetricsRegistry& registry)
      : registry_(&registry) {}

  /// Appends one row stamped at `now`. No-op on a disabled registry.
  void sample(sim::SimTime now);

  std::size_t row_count() const { return rows_.size(); }

  void write_csv(std::ostream& out) const;

 private:
  struct Row {
    sim::SimTime time;
    std::vector<MetricSample> samples;
  };
  const MetricsRegistry* registry_;
  std::vector<Row> rows_;
};

}  // namespace epajsrm::obs
