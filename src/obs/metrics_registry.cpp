#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace epajsrm::obs {

// --- Histogram ----------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {}

void Histogram::observe(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

// --- MetricsRegistry ----------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  if (!enabled_) return scratch_counter_;
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (!enabled_) return scratch_gauge_;
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  if (!enabled_) return scratch_histogram_;
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  if (!enabled_) return out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
  for (const auto& [name, c] : counters_) {
    out.push_back({name, MetricKind::kCounter,
                   static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, MetricKind::kGauge, g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name + ".count", MetricKind::kHistogram,
                   static_cast<double>(h->count())});
    out.push_back({name + ".sum", MetricKind::kHistogram, h->sum()});
    out.push_back({name + ".mean", MetricKind::kHistogram, h->mean()});
    out.push_back({name + ".max", MetricKind::kHistogram, h->max()});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

// --- MetricsSampler -----------------------------------------------------------

void MetricsSampler::sample(sim::SimTime now) {
  if (!registry_->enabled()) return;
  rows_.push_back({now, registry_->snapshot()});
}

void MetricsSampler::write_csv(std::ostream& out) const {
  // Column union across all rows (snapshots are name-sorted; late-registered
  // metrics appear in later rows only).
  std::vector<std::string> columns;
  for (const Row& row : rows_) {
    for (const MetricSample& s : row.samples) {
      const auto it =
          std::lower_bound(columns.begin(), columns.end(), s.name);
      if (it == columns.end() || *it != s.name) columns.insert(it, s.name);
    }
  }

  out << "time_s";
  for (const std::string& c : columns) out << ',' << c;
  out << '\n';

  char buf[64];
  for (const Row& row : rows_) {
    std::snprintf(buf, sizeof(buf), "%.3f", sim::to_seconds(row.time));
    out << buf;
    std::size_t cursor = 0;
    for (const std::string& c : columns) {
      out << ',';
      // Row samples are sorted by name too; advance a cursor instead of
      // searching from scratch.
      while (cursor < row.samples.size() && row.samples[cursor].name < c) {
        ++cursor;
      }
      if (cursor < row.samples.size() && row.samples[cursor].name == c) {
        std::snprintf(buf, sizeof(buf), "%g", row.samples[cursor].value);
        out << buf;
      }
    }
    out << '\n';
  }
}

}  // namespace epajsrm::obs
