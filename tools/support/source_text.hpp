// Shared source-text layer for the project's dependency-free analysis
// tools (epajsrm_lint, epajsrm_analyze).
//
// `load_source` reads a file and produces, next to the raw lines, a
// "code" view with comments, string literals, char literals, and raw
// string literals blanked out by spaces — same length per line, so
// column positions survive and word searches cannot match inside
// literals or commentary. Suppression markers (`lint:allow(...)`) are
// looked up in the raw lines because they live in comments.
//
// The matcher helpers below replace std::regex: identifier-boundary
// word search over the stripped text is both faster and more precise
// than regex alternation, and keeps the tools free of regex-engine
// startup cost on every scanned line.
//
// C++17, no dependencies beyond the standard library.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace epajsrm::toolsupport {

struct SourceFile {
  std::string path;                // as handed to load_source
  std::vector<std::string> raw;    // verbatim lines (no trailing newline)
  std::vector<std::string> code;   // comment/string-stripped lines
  bool ok = false;                 // false: file could not be read
};

/// Reads `path` and strips comments (`//`, `/*...*/`), string literals
/// (including raw strings `R"delim(...)delim"` and encoding-prefixed
/// forms), and character literals. Stripped characters become spaces;
/// newlines are preserved so raw/code line up index-for-index.
SourceFile load_source(const std::filesystem::path& path);

/// Strips `content` as load_source does; `path` only labels the result.
SourceFile strip_source(const std::string& content, std::string path);

// --- identifier-boundary matchers ------------------------------------------

inline bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// First occurrence of `word` in `s` at or after `from` where neither
/// neighbour is an identifier character; npos if absent.
std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t from = 0);

inline bool contains_word(const std::string& s, const std::string& word) {
  return find_word(s, word) != std::string::npos;
}

/// Index of the first non-space/tab character at or after `i`.
std::size_t skip_ws(const std::string& s, std::size_t i);

/// If an identifier ends at `end` (exclusive), returns its start index;
/// otherwise returns `end`.
std::size_t ident_start_before(const std::string& s, std::size_t end);

/// The identifier starting at `i` (empty if `s[i]` does not start one).
std::string ident_at(const std::string& s, std::size_t i);

/// True when the line carries `lint:allow(<rule>)` (checked on raw text,
/// where the marker lives inside a comment).
bool has_allow_marker(const std::string& raw_line, const std::string& rule);

std::string to_lower(std::string s);
bool ends_with(const std::string& s, const std::string& suffix);
std::string trim(const std::string& s);

}  // namespace epajsrm::toolsupport
