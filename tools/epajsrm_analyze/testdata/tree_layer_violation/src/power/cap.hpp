#pragma once

#include "sim/clock.hpp"

namespace fixture::power {
inline long cap_at() { return fixture::sim::now_ps(); }
}  // namespace fixture::power
