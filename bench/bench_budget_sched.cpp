// Kernel bench: the energy-budget scheduler family and the EDC boundary.
//
// Runs the same depleting-budget workload twice — the internal
// epa::EnergyBudgetScheduler, then the identical kernel behind the
// serialized loopback EDC transport — and reports job throughput plus the
// per-exchange decision latency distribution (p50/p99) of the boundary.
// The two runs must agree on every headline number (the EDC bit-identity
// contract); any mismatch exits non-zero, so the check runs wherever the
// bench runs.
//
// Flags:
//   --jobs=N   jobs per run (default 400)
//   --smoke    tiny sizes for CI smoke runs
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_summary.hpp"
#include "epajsrm.hpp"

namespace {

using namespace epajsrm;

epa::EnergyBudgetConfig bench_budget() {
  epa::EnergyBudgetConfig eb;
  eb.mode = epa::EnergyBudgetMode::kReducePowerCap;
  // Start full and accrue slower than the workload burns: the allowance
  // depletes over the run, tightening the cap and forcing the ranked
  // queue / emergency paths the bench is here to exercise.
  eb.window_budget_joules = 4.0e7;
  eb.window = sim::kHour;
  eb.initial_fraction = 1.0;
  eb.emergency_timeout = 20 * sim::kMinute;
  eb.cap_floor_fraction = 0.85;
  return eb;
}

core::ScenarioConfig bench_config(const char* label, std::size_t jobs) {
  auto b = core::Scenario::builder()
               .label(label)
               .nodes(32)
               .job_count(jobs)
               .mix(core::WorkloadMix::kCapacity)
               .seed(4242)
               .horizon(20 * sim::kDay)
               .energy_budget(bench_budget())
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = false;
               });
  return std::move(b).take_config();
}

/// Decorates any transport with wall-clock per-exchange timing.
class TimingTransport final : public edc::Transport {
 public:
  explicit TimingTransport(std::shared_ptr<edc::Transport> inner)
      : inner_(std::move(inner)) {}

  std::vector<std::string> exchange(
      const std::vector<std::string>& lines) override {
    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::string> replies = inner_->exchange(lines);
    const auto end = std::chrono::steady_clock::now();
    latencies_us_.push_back(
        std::chrono::duration<double, std::micro>(end - begin).count());
    return replies;
  }

  std::string describe() const override {
    return "timing:" + inner_->describe();
  }

  double percentile_us(double p) const {
    if (latencies_us_.empty()) return 0.0;
    std::vector<double> sorted = latencies_us_;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  }

  std::size_t exchanges() const { return latencies_us_.size(); }

 private:
  std::shared_ptr<edc::Transport> inner_;
  std::vector<double> latencies_us_;
};

struct Headline {
  std::uint64_t jobs_completed = 0;
  std::uint64_t scheduling_passes = 0;
  std::uint64_t sim_events = 0;
  double total_it_kwh = 0.0;
  sim::SimTime makespan = 0;
};

Headline headline_of(const core::RunResult& r) {
  return {r.report.jobs_completed, r.scheduling_passes, r.sim_events,
          r.report.total_it_kwh, r.report.makespan};
}

bool same_headline(const Headline& a, const Headline& b) {
  return a.jobs_completed == b.jobs_completed &&
         a.scheduling_passes == b.scheduling_passes &&
         a.sim_events == b.sim_events && a.total_it_kwh == b.total_it_kwh &&
         a.makespan == b.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::atoll(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      jobs = 40;
    }
  }

  bench::BenchSummary summary("budget_sched");

  // Internal run: the policy wired straight into the solution.
  const auto t0 = std::chrono::steady_clock::now();
  core::Scenario internal(bench_config("budget-internal", jobs));
  const core::RunResult internal_result = internal.run();
  const double internal_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  summary.add_run(internal_result);
  std::printf(
      "internal: %llu jobs in %.1f ms (%.0f jobs/sec), %llu passes\n",
      static_cast<unsigned long long>(internal_result.report.jobs_completed),
      internal_ms,
      internal_ms > 0.0
          ? static_cast<double>(internal_result.report.jobs_completed) /
                (internal_ms / 1000.0)
          : 0.0,
      static_cast<unsigned long long>(internal_result.scheduling_passes));

  // Loopback run: the same kernel behind the serialized EDC boundary.
  core::ScenarioConfig loopback_config = bench_config("budget-loopback", jobs);
  auto timing = std::make_shared<TimingTransport>(
      std::make_shared<edc::LoopbackTransport>(
          std::make_shared<edc::EnergyBudgetAgent>(bench_budget())));
  loopback_config.external_transport = timing;
  const auto t1 = std::chrono::steady_clock::now();
  core::Scenario loopback(std::move(loopback_config));
  const core::RunResult loopback_result = loopback.run();
  const double loopback_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t1)
          .count();
  summary.add_run(loopback_result);
  std::printf(
      "loopback: %llu jobs in %.1f ms (%.0f jobs/sec), %zu exchanges, "
      "decision latency p50 %.1f us, p99 %.1f us\n",
      static_cast<unsigned long long>(loopback_result.report.jobs_completed),
      loopback_ms,
      loopback_ms > 0.0
          ? static_cast<double>(loopback_result.report.jobs_completed) /
                (loopback_ms / 1000.0)
          : 0.0,
      timing->exchanges(), timing->percentile_us(0.5),
      timing->percentile_us(0.99));

  if (!same_headline(headline_of(internal_result),
                     headline_of(loopback_result))) {
    std::fprintf(stderr,
                 "FAIL: internal and loopback runs diverged — the EDC "
                 "bit-identity contract is broken\n");
    return 1;
  }
  std::printf("internal == loopback: headline numbers bit-identical\n");
  return 0;
}
