// Over-provisioned power-constrained scheduling — Sarood et al. [38] and
// Patki et al.'s RMAP [37]: the machine has more nodes than the power
// budget can run at full tilt, so the policy chooses, per job, the
// (node count, frequency) configuration that maximises throughput under
// the remaining headroom — run *more* jobs *slower*.
//
// Shape selection uses the job's moldable configurations (rigid jobs only
// get DVFS). Heuristic: prefer the configuration with the best predicted
// work-per-watt that still fits the headroom, favouring wider shapes when
// power is plentiful and narrower ones when tight.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Moldable-shape + DVFS co-selection under a system budget.
class OverprovisionPolicy final : public EpaPolicy {
 public:
  explicit OverprovisionPolicy(double budget_watts)
      : budget_(budget_watts) {}

  std::string name() const override { return "overprovision"; }

  bool plan_start(StartPlan& plan) override;

  double power_budget_watts(sim::SimTime) const override { return budget_; }

  std::uint64_t reshaped_starts() const { return reshaped_; }

 private:
  double budget_;
  std::uint64_t reshaped_ = 0;
};

}  // namespace epajsrm::epa
