#include "obs/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/profiler.hpp"
#include "sim/time.hpp"

namespace epajsrm::obs {
namespace {

TEST(MetricsRegistry, CounterIsStableAndMonotonic) {
  MetricsRegistry reg;
  Counter& c = reg.counter("sched.jobs_started");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("sched.jobs_started"), &c);
  EXPECT_EQ(reg.metric_count(), 1u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("sim.queue_depth");
  g.set(10.0);
  g.set(3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
}

TEST(MetricsRegistry, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("power.capmc_call_us", {1.0, 5.0, 25.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  EXPECT_DOUBLE_EQ(h.mean(), 34.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(MetricsRegistry, HistogramBoundsApplyOnFirstRegistrationOnly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(h.upper_bounds().size(), 2u);
}

TEST(MetricsRegistry, EmptyHistogramReportsZeros) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("empty", {1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(MetricsRegistry, DisabledRegistryHandsOutScratchAndStaysEmpty) {
  MetricsRegistry reg(false);
  EXPECT_FALSE(reg.enabled());
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");
  EXPECT_EQ(&a, &b);  // shared scratch, nothing registered
  a.add(100);
  EXPECT_EQ(reg.metric_count(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_EQ(&reg.gauge("g1"), &reg.gauge("g2"));
  EXPECT_EQ(&reg.histogram("h1", {1.0}), &reg.histogram("h2", {2.0}));
}

TEST(MetricsRegistry, SnapshotIsSortedAndExpandsHistograms) {
  MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.gauge("a.gauge").set(1.5);
  Histogram& h = reg.histogram("m.lat", {10.0});
  h.observe(4.0);
  h.observe(6.0);

  const auto snap = reg.snapshot();
  // 1 counter + 1 gauge + 4 histogram scalars.
  ASSERT_EQ(snap.size(), 6u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_DOUBLE_EQ(snap[0].value, 1.5);
  EXPECT_EQ(snap[1].name, "m.lat.count");
  EXPECT_DOUBLE_EQ(snap[1].value, 2.0);
  EXPECT_EQ(snap[2].name, "m.lat.max");
  EXPECT_DOUBLE_EQ(snap[2].value, 6.0);
  EXPECT_EQ(snap[3].name, "m.lat.mean");
  EXPECT_DOUBLE_EQ(snap[3].value, 5.0);
  EXPECT_EQ(snap[4].name, "m.lat.sum");
  EXPECT_DOUBLE_EQ(snap[4].value, 10.0);
  EXPECT_EQ(snap[5].name, "z.count");
  EXPECT_DOUBLE_EQ(snap[5].value, 2.0);
}

TEST(MetricsRegistry, SnapshotIsACopyNotALiveView) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(1);
  const auto snap = reg.snapshot();
  c.add(10);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.0);
}

TEST(MetricsSampler, WritesTimeSeriesCsv) {
  MetricsRegistry reg;
  MetricsSampler sampler(reg);
  reg.gauge("power.it_watts").set(1000.0);
  sampler.sample(0);
  reg.gauge("power.it_watts").set(1500.0);
  // A metric registered after the first sample gets empty earlier cells.
  reg.counter("sched.jobs_started").add(3);
  sampler.sample(2 * sim::kSecond);
  EXPECT_EQ(sampler.row_count(), 2u);

  std::ostringstream out;
  sampler.write_csv(out);
  EXPECT_EQ(out.str(),
            "time_s,power.it_watts,sched.jobs_started\n"
            "0.000,1000,\n"
            "2.000,1500,3\n");
}

TEST(MetricsSampler, DisabledRegistrySamplesNothing) {
  MetricsRegistry reg(false);
  MetricsSampler sampler(reg);
  sampler.sample(sim::kSecond);
  EXPECT_EQ(sampler.row_count(), 0u);
  std::ostringstream out;
  sampler.write_csv(out);
  EXPECT_EQ(out.str(), "time_s\n");
}

TEST(LoopProfiler, AggregatesPerCategory) {
  LoopProfiler p;
  constexpr sim::EventCategory kTick{"core.control"};
  p.record(kTick, 100);
  p.record(kTick, 300);
  p.record("sched.pass", 50);
  EXPECT_EQ(p.total_events(), 3u);
  EXPECT_EQ(p.total_wall_ns(), 450);

  const auto report = p.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].category, "core.control");  // most time first
  EXPECT_EQ(report[0].count, 2u);
  EXPECT_EQ(report[0].total_ns, 400);
  EXPECT_EQ(report[0].max_ns, 300);
  EXPECT_EQ(report[1].category, "sched.pass");
  EXPECT_GT(p.events_per_sec(), 0.0);
}

TEST(LoopProfiler, MergesEqualContentCategoriesByName) {
  LoopProfiler p;
  // Distinct pointers with equal content must merge at report time (the
  // hot path keys by pointer; literals can differ across TUs).
  static constexpr char a[] = "sim.tick";
  static constexpr char b[] = "sim.tick";
  p.record(sim::EventCategory(a), 10);
  p.record(sim::EventCategory(b), 20);
  const auto report = p.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].count, 2u);
  EXPECT_EQ(report[0].total_ns, 30);
}

TEST(LoopProfiler, ResetClearsEverything) {
  LoopProfiler p;
  p.record("x", 5);
  p.reset();
  EXPECT_EQ(p.total_events(), 0u);
  EXPECT_DOUBLE_EQ(p.events_per_sec(), 0.0);
  EXPECT_TRUE(p.report().empty());
}

TEST(LoopProfiler, FormatReportListsCategoriesAndTotals) {
  LoopProfiler p;
  p.record("core.control", 1000);
  const std::string text = p.format_report();
  EXPECT_NE(text.find("core.control"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
}

}  // namespace
}  // namespace epajsrm::obs
