// Emergency power response.
//
// Two production modes from the survey:
//  * RIKEN: "automated emergency job killing if power limit exceeded" —
//    the controller kills the cheapest victims until the draw is back
//    under the limit.
//  * JCAHPC: "manual emergency response, admin sets power cap" — a human
//    reacts after a latency by clamping the whole system.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Automated or manual last-line defence of a hard power limit.
class EmergencyResponsePolicy final : public EpaPolicy {
 public:
  enum class Mode { kAutomatedKill, kManualCap };

  struct Config {
    double limit_watts = 0.0;
    Mode mode = Mode::kAutomatedKill;
    /// Breach must persist this many consecutive ticks before acting
    /// (sensor glitch tolerance).
    std::uint32_t confirm_ticks = 2;
    /// Manual mode: how long the admin takes to react after confirmation.
    sim::SimTime admin_latency = 5 * sim::kMinute;
    /// Manual mode: the cap the admin sets, as a fraction of the limit.
    double manual_cap_fraction = 0.9;
    /// Automated mode: resubmit killed victims at the back of the queue
    /// (production-friendly — the work is lost but not the job).
    bool requeue_victims = false;
  };

  explicit EmergencyResponsePolicy(Config config) : config_(config) {}

  std::string name() const override { return "emergency-response"; }

  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime) const override {
    return config_.limit_watts;
  }

  std::uint64_t emergencies() const { return emergencies_; }
  std::uint64_t jobs_killed() const { return killed_; }
  bool manual_cap_active() const { return manual_cap_active_; }

 private:
  void automated_kill();
  void manual_response(sim::SimTime now);

  Config config_;
  std::uint32_t breach_ticks_ = 0;
  std::uint64_t emergencies_ = 0;
  std::uint64_t killed_ = 0;
  bool manual_cap_active_ = false;
  bool admin_dispatched_ = false;
};

}  // namespace epajsrm::epa
