#include "telemetry/energy_accounting.hpp"

#include <cmath>
#include <cstdio>

namespace epajsrm::telemetry {

void EnergyAccountant::checkpoint(sim::SimTime now) {
  if (now <= last_) {
    last_ = now;
    return;
  }
  const double dt = sim::to_seconds(now - last_);
  // Attribution is inherently O(nodes) per distinct checkpoint time (every
  // node banks P·dt), but the power values come from the ledger — exact
  // mirrors of the node sensor caches — so this stays lint-clean and the
  // cluster is never re-swept for power elsewhere in telemetry.
  for (const platform::Node& node : cluster_->nodes()) {
    const double joules = ledger_->node_watts(node.id()) * dt;
    node_energy_[node.id()] += joules;
    total_joules_ += joules;

    const auto& allocations = node.allocations();
    if (allocations.empty()) {
      overhead_joules_ += joules;
      continue;
    }
    // Split by allocated-core share; unallocated cores' share of the node
    // draw is overhead.
    const double total_cores = node.cores_total();
    double attributed = 0.0;
    for (const auto& [job_id, alloc] : allocations) {
      const double share = alloc.cores / total_cores;
      workload::Job* job = resolve_(job_id);
      if (job != nullptr) {
        job->add_energy_joules(joules * share);
        attributed += joules * share;
      }
    }
    overhead_joules_ += joules - attributed;
  }
  last_ = now;
  energy_series_.record(now, total_joules_);
}

JobEnergyReport make_energy_report(const workload::Job& job,
                                   double reference_node_watts) {
  JobEnergyReport r;
  r.job = job.id();
  r.user = job.spec().user;
  r.tag = job.spec().tag;
  r.energy_kwh = job.energy_joules() / 3.6e6;

  const sim::SimTime elapsed =
      (job.end_time() >= 0 && job.start_time() >= 0)
          ? job.end_time() - job.start_time()
          : 0;
  const double hours = sim::to_hours(elapsed);
  r.node_hours = hours * job.allocated_nodes().size();
  if (elapsed > 0) {
    r.average_watts = job.energy_joules() / sim::to_seconds(elapsed);
  }
  if (r.node_hours > 0) {
    r.kwh_per_node_hour = r.energy_kwh / r.node_hours;
  }

  // Grade: per-node average draw vs. the reference. C = within ±20 %.
  const double per_node_watts =
      job.allocated_nodes().empty()
          ? 0.0
          : r.average_watts / static_cast<double>(job.allocated_nodes().size());
  const double rel = reference_node_watts > 0
                         ? per_node_watts / reference_node_watts
                         : 1.0;
  if (rel < 0.6)      r.grade = 'A';
  else if (rel < 0.8) r.grade = 'B';
  else if (rel < 1.2) r.grade = 'C';
  else if (rel < 1.4) r.grade = 'D';
  else                r.grade = 'E';
  return r;
}

std::string format_energy_report(const JobEnergyReport& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "=== Job %llu energy report ===\n"
                "  user:            %s\n"
                "  application:     %s\n"
                "  energy:          %.3f kWh\n"
                "  average power:   %.1f W\n"
                "  node-hours:      %.2f\n"
                "  kWh/node-hour:   %.3f\n"
                "  efficiency mark: %c\n",
                static_cast<unsigned long long>(r.job), r.user.c_str(),
                r.tag.c_str(), r.energy_kwh, r.average_watts, r.node_hours,
                r.kwh_per_node_hour, r.grade);
  return buf;
}

}  // namespace epajsrm::telemetry
