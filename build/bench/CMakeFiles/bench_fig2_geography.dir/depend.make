# Empty dependencies file for bench_fig2_geography.
# This may be replaced when dependencies are built.
