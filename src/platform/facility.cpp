#include "platform/facility.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace epajsrm::platform {

double AmbientModel::temperature_c(sim::SimTime t) const {
  const double hours = sim::to_hours(t);
  const double hour_of_day = std::fmod(hours, 24.0);
  const double phase =
      (hour_of_day - peak_hour_) / 24.0 * 2.0 * std::numbers::pi;
  return mean_c_ + swing_c_ * std::cos(phase);
}

double Facility::pue(sim::SimTime t) const {
  const double outside = ambient_.temperature_c(t);
  const double excess =
      std::max(0.0, outside - config_.free_cooling_threshold_c);
  return config_.base_pue + config_.pue_slope_per_c * excess;
}

double Facility::it_watts_headroom(sim::SimTime t) const {
  if (config_.site_power_capacity_watts <= 0.0) {
    return std::numeric_limits<double>::max();
  }
  return config_.site_power_capacity_watts / pue(t);
}

PduId Facility::add_pdu(Pdu pdu) {
  pdu.id = static_cast<PduId>(pdus_.size());
  pdus_.push_back(std::move(pdu));
  return pdus_.back().id;
}

CoolingId Facility::add_cooling_loop(CoolingLoop loop) {
  loop.id = static_cast<CoolingId>(cooling_.size());
  cooling_.push_back(std::move(loop));
  return cooling_.back().id;
}

Pdu& Facility::pdu(PduId id) {
  if (id >= pdus_.size()) throw std::out_of_range("bad pdu id");
  return pdus_[id];
}
const Pdu& Facility::pdu(PduId id) const {
  if (id >= pdus_.size()) throw std::out_of_range("bad pdu id");
  return pdus_[id];
}

CoolingLoop& Facility::cooling_loop(CoolingId id) {
  if (id >= cooling_.size()) throw std::out_of_range("bad cooling id");
  return cooling_[id];
}
const CoolingLoop& Facility::cooling_loop(CoolingId id) const {
  if (id >= cooling_.size()) throw std::out_of_range("bad cooling id");
  return cooling_[id];
}

}  // namespace epajsrm::platform
