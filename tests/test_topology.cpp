#include "platform/topology.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace epajsrm::platform {
namespace {

TEST(FatTree, NodeCountIsArityPowLevels) {
  FatTreeTopology t(4, 3);
  EXPECT_EQ(t.node_count(), 64u);
  EXPECT_EQ(t.diameter(), 6u);
}

TEST(FatTree, SiblingsAreTwoHops) {
  FatTreeTopology t(4, 3);
  EXPECT_EQ(t.distance(0, 1), 2u);
  EXPECT_EQ(t.distance(0, 3), 2u);
}

TEST(FatTree, CrossSubtreeDistancesGrow) {
  FatTreeTopology t(4, 3);
  EXPECT_EQ(t.distance(0, 4), 4u);    // same level-2 subtree
  EXPECT_EQ(t.distance(0, 16), 6u);   // across the root
}

TEST(FatTree, RejectsDegenerateShape) {
  EXPECT_THROW(FatTreeTopology(1, 3), std::invalid_argument);
  EXPECT_THROW(FatTreeTopology(4, 0), std::invalid_argument);
}

TEST(Torus3D, CoordinateRoundTrip) {
  Torus3DTopology t(4, 3, 2);
  EXPECT_EQ(t.node_count(), 24u);
  const auto c = t.coord(0 + 4 * (2 + 3 * 1));  // 20 -> x=0, y=2, z=1
  EXPECT_EQ(c.x, 0u);
  EXPECT_EQ(c.y, 2u);
  EXPECT_EQ(c.z, 1u);
  const auto c2 = t.coord(13);  // 13 = 1 + 4*(3 = y + 3z) -> x=1,y=0,z=1
  EXPECT_EQ(c2.x, 1u);
  EXPECT_EQ(c2.y, 0u);
  EXPECT_EQ(c2.z, 1u);
}

TEST(Torus3D, WrapAroundShortensDistance) {
  Torus3DTopology t(8, 1, 1);
  EXPECT_EQ(t.distance(0, 7), 1u);  // ring wrap
  EXPECT_EQ(t.distance(0, 4), 4u);  // antipode
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Torus3D, ManhattanWithWrap) {
  Torus3DTopology t(4, 4, 4);
  EXPECT_EQ(t.distance(0, 0), 0u);
  // (0,0,0) -> (3,3,3): each axis wraps to 1 hop.
  const NodeId corner = 3 + 4 * (3 + 4 * 3);
  EXPECT_EQ(t.distance(0, corner), 3u);
}

TEST(Dragonfly, DistanceTiers) {
  DragonflyTopology t(4, 4, 4);
  EXPECT_EQ(t.node_count(), 64u);
  EXPECT_EQ(t.distance(0, 0), 0u);
  EXPECT_EQ(t.distance(0, 1), 1u);    // same router
  EXPECT_EQ(t.distance(0, 4), 2u);    // same group, different router
  EXPECT_EQ(t.distance(0, 16), 3u);   // different group
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(DefaultTopology, CoversRequestedNodes) {
  const auto t = make_default_topology(100);
  EXPECT_GE(t->node_count(), 100u);
}

TEST(AllocationSpread, SingleNodeIsZero) {
  FatTreeTopology t(4, 2);
  const std::vector<NodeId> one{3};
  EXPECT_DOUBLE_EQ(t.allocation_spread(one), 0.0);
}

TEST(AllocationSpread, CompactBeatsScattered) {
  FatTreeTopology t(4, 3);
  const std::vector<NodeId> compact{0, 1, 2, 3};
  const std::vector<NodeId> scattered{0, 16, 32, 48};
  EXPECT_LT(t.allocation_spread(compact), t.allocation_spread(scattered));
  EXPECT_DOUBLE_EQ(t.allocation_spread(scattered), 1.0);  // all at diameter
}

// --- metric properties across all topology families (property tests) -------

class TopologyMetricTest
    : public ::testing::TestWithParam<std::shared_ptr<Topology>> {};

TEST_P(TopologyMetricTest, IdentityOfIndiscernibles) {
  const auto& t = *GetParam();
  for (NodeId i = 0; i < t.node_count(); i += 7) {
    EXPECT_EQ(t.distance(i, i), 0u);
  }
}

TEST_P(TopologyMetricTest, Symmetry) {
  const auto& t = *GetParam();
  const NodeId n = t.node_count();
  for (NodeId a = 0; a < n; a += 5) {
    for (NodeId b = 0; b < n; b += 11) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    }
  }
}

TEST_P(TopologyMetricTest, BoundedByDiameter) {
  const auto& t = *GetParam();
  const NodeId n = t.node_count();
  for (NodeId a = 0; a < n; a += 5) {
    for (NodeId b = 0; b < n; b += 7) {
      EXPECT_LE(t.distance(a, b), t.diameter());
    }
  }
}

TEST_P(TopologyMetricTest, TriangleInequalitySampled) {
  const auto& t = *GetParam();
  const NodeId n = t.node_count();
  for (NodeId a = 0; a < n; a += 13) {
    for (NodeId b = 0; b < n; b += 17) {
      for (NodeId c = 0; c < n; c += 19) {
        EXPECT_LE(t.distance(a, c), t.distance(a, b) + t.distance(b, c));
      }
    }
  }
}

TEST_P(TopologyMetricTest, DescribeIsNonEmpty) {
  EXPECT_FALSE(GetParam()->describe().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, TopologyMetricTest,
    ::testing::Values(std::make_shared<FatTreeTopology>(4, 3),
                      std::make_shared<Torus3DTopology>(4, 4, 4),
                      std::make_shared<DragonflyTopology>(4, 4, 4)));

}  // namespace
}  // namespace epajsrm::platform
