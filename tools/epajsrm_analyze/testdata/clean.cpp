// Fixture: every rule's trigger pattern either suppressed with a
// justified lint:allow marker or rewritten the sanctioned way. The
// analyzer must stay silent on this file.
#include <iostream>
#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

// Sanctioned: merge into a sorted map first, so emission order is
// deterministic regardless of hash order.
class SortedReport {
 public:
  void dump() const {
    std::map<std::string, int> sorted;
    for (const auto& [node, watts] : draw_) {  // lint:allow(unordered-iter) merge into sorted map is order-independent
      sorted[node] = watts;
    }
    for (const auto& [node, watts] : sorted) {
      std::cout << node << " " << watts << "\n";
    }
  }

 private:
  std::unordered_map<std::string, int> draw_;
};

// Integer accumulation over an unordered container is commutative —
// no rule fires without an order-sensitive effect in the function.
long total_jobs(const std::unordered_map<std::string, long>& counts) {
  long total = 0;
  for (const auto& [node, n] : counts) {
    total += n;
  }
  return total;
}

// Kahan-style compensation is still order-dependent; this one carries a
// reviewed suppression instead of a rewrite.
double debug_sum(const std::unordered_map<std::string, double>& draw) {
  double approx_watts = 0.0;
  for (const auto& [node, watts] : draw) {
    approx_watts += watts;  // lint:allow(float-accum-unordered) debug-only estimate, never compared bit-exactly
  }
  return approx_watts;
}

struct Node {
  int id;
};

struct Tracker {
  // Keyed by stable id, not address: deterministic iteration order.
  std::map<int, int> pending_by_id;
  std::map<const Node*, int> scratch_by_addr;  // lint:allow(pointer-key-order) cleared before any ordered traversal
};

constexpr int kMaxRetries = 3;

int g_debug_hook_count = 0;  // lint:allow(mutable-global) test-only counter, reset per scenario

int next_ticket() {
  static int issued = 0;  // lint:allow(local-static) ticket ids are diagnostic labels, never replayed
  static const int kStride = 1;
  return issued += kStride;
}

// Lookup (no iteration) over an unordered container is always fine.
int lookup(const std::unordered_map<std::string, int>& draw,
           const std::string& node) {
  const auto it = draw.find(node);
  return it == draw.end() ? 0 : it->second;
}

}  // namespace fixture
