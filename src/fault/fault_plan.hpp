// FaultPlan: an ordered set of typed fault events, built programmatically
// or parsed from a small line-oriented spec, plus the stochastic
// FailureModel that generates crash plans from per-node MTBF
// distributions (exponential or Weibull) for reliability sweeps.
//
// Plans are plain data; the injector (injector.hpp) turns them into
// scheduled events. Everything here is deterministic from explicit seeds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sim/time.hpp"

namespace epajsrm::fault {

/// A deterministic schedule of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Appends one event (fluent).
  FaultPlan& add(FaultEvent event);

  /// Convenience adders for the common kinds.
  FaultPlan& crash_node(sim::SimTime at, std::int64_t node,
                        sim::SimTime repair_after = 0);
  FaultPlan& hang_node(sim::SimTime at, std::int64_t node,
                       sim::SimTime repair_after = 0);
  FaultPlan& trip_pdu(sim::SimTime at, std::int64_t pdu,
                      sim::SimTime repair_after = 0);
  FaultPlan& sensor_dropout(sim::SimTime at, sim::SimTime duration,
                            double drop_probability = 1.0);
  FaultPlan& sensor_stuck(sim::SimTime at, sim::SimTime duration);
  FaultPlan& sensor_noise(sim::SimTime at, sim::SimTime duration,
                          double sigma);
  FaultPlan& thermal_excursion(sim::SimTime at, std::int64_t node,
                               double delta_c);
  FaultPlan& capmc_failure(sim::SimTime at, sim::SimTime duration,
                           double failure_probability = 1.0);
  FaultPlan& capmc_latency(sim::SimTime at, sim::SimTime duration,
                           double added_us);

  /// Merges another plan's events into this one.
  FaultPlan& merge(const FaultPlan& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events sorted by injection time (stable, so same-time events keep
  /// plan order). Called by the injector; idempotent.
  std::vector<FaultEvent> sorted() const;

  /// Horizon an `every` line repeats to when it carries no `until` clause.
  static constexpr sim::SimTime kDefaultRepeatHorizon = 30 * sim::kDay;

  /// Parses the line-oriented spec format:
  ///
  ///   # comment
  ///   <time> <kind> <target> [magnitude] [duration_s]
  ///   every <n>[smhd] <time> <kind> <target> [magnitude] [duration_s]
  ///       [until <t>]
  ///
  /// e.g. "3600 node-crash 12 0 1800" or "7200 capmc-failure -1 0.5 600".
  /// The time field is absolute seconds by default; an s/m/h/d unit
  /// suffix scales it ("90m"), and a leading '+' makes it an offset from
  /// the previous event's time ("+90m", "+6h") so cadenced storm scripts
  /// need no running arithmetic. Kind names are the to_string(FaultKind)
  /// names.
  ///
  /// An `every` prefix repeats the event at the given period, expanded at
  /// parse time: occurrences land at first, first+period, ... up to and
  /// including the `until` time (absolute, or '+' relative to the first
  /// occurrence) — or up to first + `repeat_horizon` when no `until` is
  /// given. The period is a plain positive duration (no '+'), `until`
  /// must not precede the first occurrence, and the *first* occurrence is
  /// what the next line's '+' offset chains from, so cadences compose:
  ///
  ///   every 30m +10m sensor-noise -1 0.05 600 until 4h
  ///   +1h pdu-trip 0          # 10m (first occurrence) + 1h
  ///
  /// Malformed lines throw std::invalid_argument naming the line number
  /// (fault specs are small, hand-written files — failing loudly beats
  /// silently skipping faults).
  static FaultPlan parse(std::istream& in,
                         sim::SimTime repeat_horizon = kDefaultRepeatHorizon);
  static FaultPlan parse_string(
      const std::string& text,
      sim::SimTime repeat_horizon = kDefaultRepeatHorizon);
  static FaultPlan parse_file(
      const std::string& path,
      sim::SimTime repeat_horizon = kDefaultRepeatHorizon);

 private:
  std::vector<FaultEvent> events_;
};

/// Stochastic per-node failure generator for open-ended reliability
/// sweeps: samples inter-failure times per node from an exponential or
/// Weibull MTBF distribution and emits crash events (with a fixed repair
/// time) over a horizon. Deterministic from the seed — node i's stream is
/// splitmix64-derived, so the plan does not depend on node count changes
/// elsewhere.
struct FailureModel {
  enum class Distribution { kExponential, kWeibull };

  Distribution distribution = Distribution::kExponential;
  /// Mean time between failures per node, in hours.
  double mtbf_hours = 2000.0;
  /// Weibull shape (k > 1 = wear-out, k < 1 = infant mortality). The
  /// scale is derived so the mean stays mtbf_hours.
  double weibull_shape = 1.5;
  /// Crashed nodes are restored this long after each failure.
  sim::SimTime repair_time = 30 * sim::kMinute;

  /// Generates the crash plan for `nodes` nodes over [0, horizon].
  FaultPlan generate(std::uint32_t nodes, sim::SimTime horizon,
                     std::uint64_t seed) const;
};

}  // namespace epajsrm::fault
