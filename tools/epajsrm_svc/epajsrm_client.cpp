// epajsrm_client — command-line client for the epajsrmd scenario service.
//
// Speaks the svc wire protocol (one request line out, envelope +
// `payload_lines` payload lines back) over the shared net carrier:
//
//   epajsrm_client <endpoint> submit <template> [--seed N] [--nodes N]
//                  [--jobs N] [--label S] [--tenant S] [--report]
//                  [--no-wait]
//   epajsrm_client <endpoint> sweep <template> --seeds 1,2,3 [...]
//   epajsrm_client <endpoint> poll <id> | cancel <id>
//   epajsrm_client <endpoint> stats | templates | shutdown
//   epajsrm_client <endpoint> raw '<json request line>'
//
// <endpoint> is "PORT", "tcp:PORT" or "unix:PATH". Output: the envelope
// line, then the payload lines, verbatim — scripts can grep the bytes
// (the CI smoke job asserts "cached":1 on a repeated submit this way).
// Exit 0 on ok/queued/done/cancelled, 3 on rejected (backpressure:
// retry_after_ms is in the envelope), 1 on error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/carrier.hpp"
#include "svc/protocol.hpp"

namespace {

using epajsrm::svc::Request;

[[noreturn]] void usage(int exit_code) {
  std::cerr
      << "usage: epajsrm_client <endpoint> <command> [options]\n"
         "  submit <template> [--seed N] [--nodes N] [--jobs N] [--label S]\n"
         "                    [--tenant S] [--report] [--no-wait]\n"
         "  sweep <template> --seeds N,N,... [--nodes N] [--jobs N]\n"
         "                    [--label S] [--tenant S]\n"
         "  poll <id> | cancel <id> | stats | templates | shutdown\n"
         "  raw '<json request line>'\n";
  std::exit(exit_code);
}

std::uint64_t parse_u64(const std::string& what, const std::string& text) {
  if (text.empty()) usage(2);
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      std::cerr << "epajsrm_client: " << what << " wants a number, got '"
                << text << "'\n";
      std::exit(2);
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::vector<std::uint64_t> parse_seed_list(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      seeds.push_back(parse_u64("--seeds", current));
      current.clear();
    } else {
      current += c;
    }
  }
  seeds.push_back(parse_u64("--seeds", current));
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage(argc < 2 ? 2 : 2);
  const std::string endpoint = argv[1];
  const std::string command = argv[2];
  int i = 3;
  const auto value = [&]() -> std::string {
    if (i >= argc) usage(2);
    return argv[i++];
  };

  std::string request_line;
  Request request;
  if (command == "raw") {
    request_line = value();
  } else if (command == "submit" || command == "sweep") {
    request.op =
        command == "submit" ? Request::Op::kSubmit : Request::Op::kSweep;
    request.template_name = value();
    while (i < argc) {
      const std::string flag = argv[i++];
      if (flag == "--seed") {
        request.has_seed = true;
        request.seed = parse_u64(flag, value());
      } else if (flag == "--nodes") {
        request.has_nodes = true;
        request.nodes = static_cast<std::uint32_t>(parse_u64(flag, value()));
      } else if (flag == "--jobs") {
        request.has_job_count = true;
        request.job_count = parse_u64(flag, value());
      } else if (flag == "--label") {
        request.label = value();
      } else if (flag == "--tenant") {
        request.tenant = value();
      } else if (flag == "--report") {
        request.want_report = true;
      } else if (flag == "--no-wait") {
        request.wait = false;
      } else if (flag == "--seeds") {
        request.seeds = parse_seed_list(value());
      } else {
        std::cerr << "epajsrm_client: unknown flag '" << flag << "'\n";
        usage(2);
      }
    }
    if (request.op == Request::Op::kSweep && request.seeds.empty()) {
      std::cerr << "epajsrm_client: sweep needs --seeds\n";
      usage(2);
    }
  } else if (command == "poll" || command == "cancel") {
    request.op =
        command == "poll" ? Request::Op::kPoll : Request::Op::kCancel;
    request.id = parse_u64(command, value());
  } else if (command == "stats") {
    request.op = Request::Op::kStats;
  } else if (command == "templates") {
    request.op = Request::Op::kTemplates;
  } else if (command == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else if (command == "--help" || command == "-h") {
    usage(0);
  } else {
    std::cerr << "epajsrm_client: unknown command '" << command << "'\n";
    usage(2);
  }
  if (request_line.empty()) request_line = serialize_request(request);

  try {
    epajsrm::net::LineChannel channel =
        epajsrm::net::connect_endpoint(endpoint);
    channel.write_line(request_line);

    std::string line;
    if (!channel.read_line(line)) {
      std::cerr << "epajsrm_client: server closed without replying\n";
      return 1;
    }
    std::cout << line << "\n";
    const epajsrm::svc::Envelope envelope =
        epajsrm::svc::parse_envelope(line);
    for (std::uint64_t n = 0; n < envelope.payload_lines; ++n) {
      if (!channel.read_line(line)) {
        std::cerr << "epajsrm_client: truncated payload\n";
        return 1;
      }
      std::cout << line << "\n";
    }
    if (envelope.status == "rejected") return 3;
    if (envelope.status == "error") return 1;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "epajsrm_client: " << e.what() << "\n";
    return 1;
  }
}
