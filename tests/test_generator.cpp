#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace epajsrm::workload {
namespace {

GeneratorConfig config(std::uint32_t machine = 64) {
  GeneratorConfig cfg;
  cfg.machine_nodes = machine;
  cfg.arrival_rate_per_hour = 30.0;
  return cfg;
}

TEST(AppCatalog, StandardHasVariety) {
  const AppCatalog cat = AppCatalog::standard();
  EXPECT_GE(cat.archetypes().size(), 6u);
  // Spread of behaviour: at least one compute-bound and one memory-bound.
  bool compute = false, memory = false;
  for (const auto& a : cat.archetypes()) {
    compute |= a.profile.freq_sensitive_fraction > 0.8;
    memory |= a.profile.freq_sensitive_fraction < 0.4;
  }
  EXPECT_TRUE(compute);
  EXPECT_TRUE(memory);
}

TEST(AppCatalog, CapabilityMixHasHeroJobs) {
  const AppCatalog cat = AppCatalog::capability(128);
  bool full_machine = false;
  for (const auto& a : cat.archetypes()) {
    full_machine |= a.max_nodes == 128;
  }
  EXPECT_TRUE(full_machine);
}

TEST(AppCatalog, FindByTag) {
  const AppCatalog cat = AppCatalog::standard();
  EXPECT_TRUE(cat.find("cfd-solver").has_value());
  EXPECT_FALSE(cat.find("no-such-app").has_value());
}

TEST(AppCatalog, SampleRespectsWeightsDeterministically) {
  const AppCatalog cat = AppCatalog::standard();
  sim::Rng a(9), b(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(cat.sample(a).tag, cat.sample(b).tag);
  }
}

TEST(Generator, DeterministicFromSeed) {
  WorkloadGenerator g1(config(), AppCatalog::standard(), 77);
  WorkloadGenerator g2(config(), AppCatalog::standard(), 77);
  const auto a = g1.generate(50);
  const auto b = g2.generate(50);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].runtime_ref, b[i].runtime_ref);
    EXPECT_EQ(a[i].tag, b[i].tag);
  }
}

TEST(Generator, IdsAreSequentialAndUnique) {
  WorkloadGenerator g(config(), AppCatalog::standard(), 3);
  std::set<JobId> ids;
  for (const JobSpec& spec : g.generate(100)) ids.insert(spec.id);
  EXPECT_EQ(ids.size(), 100u);
  EXPECT_EQ(*ids.begin(), 1u);
  // A second batch continues numbering.
  const auto more = g.generate(10);
  EXPECT_EQ(more.front().id, 101u);
}

TEST(Generator, ArrivalsMonotone) {
  WorkloadGenerator g(config(), AppCatalog::standard(), 3);
  sim::SimTime last = -1;
  for (const JobSpec& spec : g.generate(200)) {
    EXPECT_GE(spec.submit_time, last);
    last = spec.submit_time;
  }
}

TEST(Generator, SizesClampToMachine) {
  WorkloadGenerator g(config(16), AppCatalog::standard(), 5);
  for (const JobSpec& spec : g.generate(300)) {
    EXPECT_GE(spec.nodes, 1u);
    EXPECT_LE(spec.nodes, 16u);
  }
}

TEST(Generator, WalltimeAlwaysCoversRuntime) {
  WorkloadGenerator g(config(), AppCatalog::standard(), 5);
  for (const JobSpec& spec : g.generate(300)) {
    EXPECT_GE(spec.walltime_estimate, spec.runtime_ref);
  }
}

TEST(Generator, WalltimeRoundedToFiveMinutes) {
  WorkloadGenerator g(config(), AppCatalog::standard(), 5);
  for (const JobSpec& spec : g.generate(100)) {
    EXPECT_EQ(spec.walltime_estimate % (5 * sim::kMinute), 0);
  }
}

TEST(Generator, DeferrableJobsGetDeadlines) {
  GeneratorConfig cfg = config();
  cfg.deferrable_fraction = 1.0;
  WorkloadGenerator g(cfg, AppCatalog::standard(), 5);
  for (const JobSpec& spec : g.generate(50)) {
    EXPECT_TRUE(spec.deferrable);
    EXPECT_GT(spec.deadline, spec.submit_time + spec.walltime_estimate);
  }
}

TEST(Generator, MoldableShapesIncludeBaseAndAreOrdered) {
  GeneratorConfig cfg = config();
  cfg.moldable_fraction = 1.0;
  WorkloadGenerator g(cfg, AppCatalog::standard(), 5);
  int moldable_count = 0;
  for (const JobSpec& spec : g.generate(200)) {
    if (spec.moldable.empty()) continue;  // small jobs stay rigid
    ++moldable_count;
    EXPECT_EQ(spec.moldable.front().nodes, spec.nodes);
    EXPECT_DOUBLE_EQ(spec.moldable.front().runtime_scale, 1.0);
    for (const MoldableConfig& m : spec.moldable) {
      // Imperfect scaling: fewer nodes -> more than proportionally slower
      // is not required, but total work (nodes * scale) must stay within
      // sane bounds.
      EXPECT_GE(m.nodes, 1u);
      EXPECT_GT(m.runtime_scale, 0.0);
    }
  }
  EXPECT_GT(moldable_count, 0);
}

TEST(Generator, RateRoughlyMatchesRequest) {
  GeneratorConfig cfg = config();
  cfg.arrival_rate_per_hour = 60.0;
  WorkloadGenerator g(cfg, AppCatalog::standard(), 21);
  const auto jobs = g.generate(3000);
  const double hours = sim::to_hours(jobs.back().submit_time);
  EXPECT_NEAR(3000.0 / hours, 60.0, 5.0);
}

TEST(Generator, GenerateUntilStopsAtHorizon) {
  WorkloadGenerator g(config(), AppCatalog::standard(), 5);
  const auto jobs = g.generate_until(0, 10 * sim::kHour);
  EXPECT_FALSE(jobs.empty());
  EXPECT_LE(jobs.back().submit_time, 10 * sim::kHour);
}

TEST(Generator, InvalidConfigRejected) {
  GeneratorConfig cfg = config();
  cfg.arrival_rate_per_hour = 0.0;
  EXPECT_THROW(WorkloadGenerator(cfg, AppCatalog::standard(), 1),
               std::invalid_argument);
  cfg = config();
  cfg.machine_nodes = 0;
  EXPECT_THROW(WorkloadGenerator(cfg, AppCatalog::standard(), 1),
               std::invalid_argument);
  EXPECT_THROW(WorkloadGenerator(config(), AppCatalog(), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace epajsrm::workload
