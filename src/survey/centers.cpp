#include "survey/centers.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace epajsrm::survey {

const char* to_string(Region r) {
  switch (r) {
    case Region::kAsia:         return "Asia";
    case Region::kEurope:       return "Europe";
    case Region::kMiddleEast:   return "Middle East";
    case Region::kNorthAmerica: return "North America";
  }
  return "?";
}

const std::vector<CenterProfile>& all_centers() {
  static const std::vector<CenterProfile> centers = {
      {.short_name = "RIKEN", .full_name = "RIKEN AICS", .country = "Japan",
       .region = Region::kAsia, .latitude = 34.65, .longitude = 135.22,
       .machine_name = "K computer", .machine_nodes = 82944,
       .cores_per_node = 8, .peak_system_mw = 12.7,
       .site_power_capacity_mw = 15.0,
       .jsrm_software = "Fujitsu parallel job scheduler",
       .node_idle_watts = 60.0, .node_peak_watts = 150.0,
       .sim_nodes = 128, .capability_oriented = true},
      {.short_name = "TokyoTech",
       .full_name = "Tokyo Institute of Technology GSIC", .country = "Japan",
       .region = Region::kAsia, .latitude = 35.60, .longitude = 139.68,
       .machine_name = "TSUBAME 2.5/3.0", .machine_nodes = 1980,
       .cores_per_node = 28, .peak_system_mw = 1.8,
       .site_power_capacity_mw = 2.0,
       .jsrm_software = "PBS Professional + NEC power management",
       .node_idle_watts = 120.0, .node_peak_watts = 900.0,
       .sim_nodes = 96, .capability_oriented = false},
      {.short_name = "CEA", .full_name = "CEA / TGCC", .country = "France",
       .region = Region::kEurope, .latitude = 48.71, .longitude = 2.18,
       .machine_name = "Curie / CCRT systems", .machine_nodes = 5040,
       .cores_per_node = 16, .peak_system_mw = 2.5,
       .site_power_capacity_mw = 4.0,
       .jsrm_software = "SLURM (with BULL power-adaptive extensions)",
       .node_idle_watts = 100.0, .node_peak_watts = 350.0,
       .sim_nodes = 96, .capability_oriented = false},
      {.short_name = "KAUST",
       .full_name = "King Abdullah University of Science and Technology",
       .country = "Saudi Arabia", .region = Region::kMiddleEast,
       .latitude = 22.31, .longitude = 39.10,
       .machine_name = "Shaheen II (Cray XC40)", .machine_nodes = 6174,
       .cores_per_node = 32, .peak_system_mw = 2.8,
       .site_power_capacity_mw = 3.2,
       .jsrm_software = "SLURM + Cray CAPMC (SDPM co-developed with SchedMD)",
       .node_idle_watts = 110.0, .node_peak_watts = 390.0,
       .sim_nodes = 128, .capability_oriented = false},
      {.short_name = "LRZ", .full_name = "Leibniz Supercomputing Centre",
       .country = "Germany", .region = Region::kEurope,
       .latitude = 48.26, .longitude = 11.67,
       .machine_name = "SuperMUC Phase 1+2", .machine_nodes = 9421,
       .cores_per_node = 28, .peak_system_mw = 3.0,
       .site_power_capacity_mw = 10.0,
       .jsrm_software = "IBM LoadLeveler EAS (ported to LSF)",
       .node_idle_watts = 100.0, .node_peak_watts = 380.0,
       .sim_nodes = 128, .capability_oriented = false},
      {.short_name = "STFC", .full_name = "STFC Hartree Centre",
       .country = "United Kingdom", .region = Region::kEurope,
       .latitude = 53.34, .longitude = -2.64,
       .machine_name = "Scafell Pike / 360-node EAS testbed",
       .machine_nodes = 846, .cores_per_node = 32, .peak_system_mw = 0.7,
       .site_power_capacity_mw = 1.5,
       .jsrm_software = "IBM LSF energy-aware scheduling + PowerAPI tools",
       .node_idle_watts = 105.0, .node_peak_watts = 400.0,
       .sim_nodes = 64, .capability_oriented = false},
      {.short_name = "Trinity", .full_name = "Trinity (LANL + Sandia, ACES)",
       .country = "United States", .region = Region::kNorthAmerica,
       .latitude = 35.88, .longitude = -106.30,
       .machine_name = "Trinity (Cray XC40)", .machine_nodes = 19420,
       .cores_per_node = 32, .peak_system_mw = 8.5,
       .site_power_capacity_mw = 12.0,
       .jsrm_software =
           "MOAB/Torque with Power API, later SLURM; Cray CAPMC",
       .node_idle_watts = 120.0, .node_peak_watts = 420.0,
       .sim_nodes = 160, .capability_oriented = true},
      {.short_name = "CINECA", .full_name = "CINECA", .country = "Italy",
       .region = Region::kEurope, .latitude = 44.50, .longitude = 11.34,
       .machine_name = "Eurora / Marconi", .machine_nodes = 7000,
       .cores_per_node = 36, .peak_system_mw = 3.0,
       .site_power_capacity_mw = 4.0,
       .jsrm_software = "PBS Professional (Eurora, with Altair), SLURM (E4)",
       .node_idle_watts = 95.0, .node_peak_watts = 360.0,
       .sim_nodes = 96, .capability_oriented = false},
      {.short_name = "JCAHPC",
       .full_name = "JCAHPC (U. Tsukuba + U. Tokyo)", .country = "Japan",
       .region = Region::kAsia, .latitude = 35.90, .longitude = 139.94,
       .machine_name = "Oakforest-PACS", .machine_nodes = 8208,
       .cores_per_node = 68, .peak_system_mw = 3.2,
       .site_power_capacity_mw = 4.2,
       .jsrm_software = "Fujitsu proprietary RM with group power caps",
       .node_idle_watts = 90.0, .node_peak_watts = 380.0,
       .sim_nodes = 128, .capability_oriented = true},
  };
  return centers;
}

const CenterProfile& center(const std::string& short_name) {
  for (const CenterProfile& c : all_centers()) {
    if (c.short_name == short_name) return c;
  }
  throw std::out_of_range("unknown center: " + short_name);
}

double distance_km(const CenterProfile& a, const CenterProfile& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double deg = std::numbers::pi / 180.0;
  const double lat1 = a.latitude * deg, lat2 = b.latitude * deg;
  const double dlat = (b.latitude - a.latitude) * deg;
  const double dlon = (b.longitude - a.longitude) * deg;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

std::string ascii_map(std::uint32_t width, std::uint32_t height) {
  std::vector<std::string> grid(height, std::string(width, '.'));
  const auto& centers = all_centers();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const CenterProfile& c = centers[i];
    // Equirectangular projection: lon [-180,180] -> x, lat [90,-90] -> y.
    const int x = static_cast<int>((c.longitude + 180.0) / 360.0 * width);
    const int y = static_cast<int>((90.0 - c.latitude) / 180.0 * height);
    const int cx = std::min<int>(std::max(0, x), static_cast<int>(width) - 1);
    const int cy =
        std::min<int>(std::max(0, y), static_cast<int>(height) - 1);
    grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] =
        static_cast<char>('1' + i);
  }
  std::ostringstream out;
  out << "Participating centers (equirectangular; 1-9 in listing order):\n";
  for (const std::string& row : grid) out << row << '\n';
  for (std::size_t i = 0; i < centers.size(); ++i) {
    out << (i + 1) << " = " << centers[i].short_name << " ("
        << centers[i].country << ", " << to_string(centers[i].region)
        << ")\n";
  }
  return out.str();
}

}  // namespace epajsrm::survey
