// The EDC boundary's load-bearing guarantee: a run driven through the
// serialized loopback transport is bit-identical to the same policy run
// internally — single runs and ensemble sweeps at any thread count — and
// rogue or malformed replies can be rejected without corrupting the core.
#include "edc/external_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/ensemble.hpp"
#include "core/scenario_builder.hpp"
#include "core/solution.hpp"
#include "edc/energy_budget_agent.hpp"
#include "edc/protocol.hpp"
#include "edc/transport.hpp"
#include "epa/energy_budget.hpp"
#include "platform/cluster.hpp"
#include "sim/simulation.hpp"

namespace epajsrm {
namespace {

// Sized so the budget binds on a 16-node machine: jobs queue against the
// accrual rate and the reduce-power-cap mode keeps moving the system cap.
epa::EnergyBudgetConfig study_budget() {
  epa::EnergyBudgetConfig eb;
  eb.mode = epa::EnergyBudgetMode::kReducePowerCap;
  eb.window_budget_joules = 5.0e6;
  eb.window = sim::kHour;
  eb.initial_fraction = 0.0;
  eb.emergency_timeout = 20 * sim::kMinute;
  // High floor: the cap still tracks the allowance (so set_power_cap
  // replies flow), but never throttles so hard that jobs overrun their
  // walltime and die instead of completing.
  eb.cap_floor_fraction = 0.85;
  return eb;
}

core::ScenarioConfig study_config(std::uint64_t seed) {
  auto b = core::Scenario::builder()
               .label("edc-study")
               .nodes(16)
               .job_count(16)
               .seed(seed)
               .horizon(sim::kDay)
               .energy_budget(study_budget())
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = false;
               });
  return std::move(b).take_config();
}

// The same experiment with the scheduling boundary externalized: the
// identical kernel, but reached through serialize -> loopback -> parse.
core::ScenarioConfig loopback_config(std::uint64_t seed) {
  core::ScenarioConfig config = study_config(seed);
  config.external_transport = std::make_shared<edc::LoopbackTransport>(
      std::make_shared<edc::EnergyBudgetAgent>(study_budget()));
  return config;
}

void expect_summary_identical(const metrics::DistributionSummary& a,
                              const metrics::DistributionSummary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.p10, b.p10);
  EXPECT_EQ(a.p25, b.p25);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p75, b.p75);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
}

// Every field, exact double equality: "bit-identical" is the contract,
// not "statistically close".
void expect_bit_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.report.jobs_submitted, b.report.jobs_submitted);
  EXPECT_EQ(a.report.jobs_completed, b.report.jobs_completed);
  EXPECT_EQ(a.report.jobs_killed, b.report.jobs_killed);
  expect_summary_identical(a.report.wait_minutes, b.report.wait_minutes);
  expect_summary_identical(a.report.bounded_slowdown,
                           b.report.bounded_slowdown);
  expect_summary_identical(a.report.job_node_counts, b.report.job_node_counts);
  expect_summary_identical(a.report.job_runtime_minutes,
                           b.report.job_runtime_minutes);
  EXPECT_EQ(a.report.throughput_jobs_per_day, b.report.throughput_jobs_per_day);
  EXPECT_EQ(a.report.mean_it_watts, b.report.mean_it_watts);
  EXPECT_EQ(a.report.max_it_watts, b.report.max_it_watts);
  EXPECT_EQ(a.report.total_it_kwh, b.report.total_it_kwh);
  EXPECT_EQ(a.report.total_facility_kwh, b.report.total_facility_kwh);
  EXPECT_EQ(a.report.electricity_cost, b.report.electricity_cost);
  EXPECT_EQ(a.report.budget_watts, b.report.budget_watts);
  EXPECT_EQ(a.report.violation_samples, b.report.violation_samples);
  EXPECT_EQ(a.report.violation_fraction, b.report.violation_fraction);
  EXPECT_EQ(a.report.worst_violation_watts, b.report.worst_violation_watts);
  EXPECT_EQ(a.report.violation_kwh, b.report.violation_kwh);
  EXPECT_EQ(a.report.mean_core_utilization, b.report.mean_core_utilization);
  EXPECT_EQ(a.report.core_hours_per_mwh, b.report.core_hours_per_mwh);
  EXPECT_EQ(a.report.makespan, b.report.makespan);

  EXPECT_EQ(a.total_it_kwh_exact, b.total_it_kwh_exact);
  EXPECT_EQ(a.overhead_kwh, b.overhead_kwh);
  EXPECT_EQ(a.node_boots, b.node_boots);
  EXPECT_EQ(a.node_shutdowns, b.node_shutdowns);
  EXPECT_EQ(a.scheduling_passes, b.scheduling_passes);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.kills_by_reason, b.kills_by_reason);

  ASSERT_EQ(a.job_reports.size(), b.job_reports.size());
  for (std::size_t i = 0; i < a.job_reports.size(); ++i) {
    EXPECT_EQ(a.job_reports[i].job, b.job_reports[i].job);
    EXPECT_EQ(a.job_reports[i].energy_kwh, b.job_reports[i].energy_kwh);
    EXPECT_EQ(a.job_reports[i].average_watts, b.job_reports[i].average_watts);
    EXPECT_EQ(a.job_reports[i].node_hours, b.job_reports[i].node_hours);
    EXPECT_EQ(a.job_reports[i].kwh_per_node_hour,
              b.job_reports[i].kwh_per_node_hour);
    EXPECT_EQ(a.job_reports[i].grade, b.job_reports[i].grade);
  }
}

TEST(EdcLoopback, InternalAndLoopbackRunsAreBitIdentical) {
  core::Scenario internal(study_config(42));
  const core::RunResult a = internal.run();

  core::Scenario loopback(loopback_config(42));
  const core::RunResult b = loopback.run();

  // The run must be non-trivial for the comparison to mean anything: jobs
  // completed, passes happened, and the budget actually made jobs wait.
  EXPECT_GT(a.report.jobs_completed, 0u);
  EXPECT_GT(a.scheduling_passes, 0u);
  EXPECT_GT(a.report.wait_minutes.mean, 0.0);

  expect_bit_identical(a, b);
}

core::EnsembleResult run_ensemble(bool loopback, std::size_t threads) {
  core::EnsembleConfig config;
  config.replications = 3;
  config.base_seed = 777;
  config.threads = threads;
  core::EnsembleEngine engine(config);
  // The agent holds per-run state, so every replication builds a fresh
  // transport+agent inside the factory — sharing one across cells would
  // bleed decisions between runs.
  engine.add_point("edc", [loopback](std::uint64_t seed) {
    return loopback ? loopback_config(seed) : study_config(seed);
  });
  return engine.run();
}

void expect_observations_identical(const core::EnsembleResult& a,
                                   const core::EnsembleResult& b) {
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    EXPECT_EQ(a.observations[i].seed, b.observations[i].seed);
    EXPECT_EQ(a.observations[i].sim_events, b.observations[i].sim_events);
    EXPECT_EQ(a.observations[i].total_kwh, b.observations[i].total_kwh);
    EXPECT_EQ(a.observations[i].mean_utilization,
              b.observations[i].mean_utilization);
    EXPECT_EQ(a.observations[i].median_wait_minutes,
              b.observations[i].median_wait_minutes);
    EXPECT_EQ(a.observations[i].violation_fraction,
              b.observations[i].violation_fraction);
    EXPECT_EQ(a.observations[i].jobs_completed,
              b.observations[i].jobs_completed);
    EXPECT_EQ(a.observations[i].makespan_hours,
              b.observations[i].makespan_hours);
  }
}

TEST(EdcLoopback, EnsembleBitIdenticalAcrossThreadCountsAndBoundary) {
  // Reference: the internal policy, serial.
  const core::EnsembleResult internal_serial = run_ensemble(false, 1);
  ASSERT_EQ(internal_serial.observations.size(), 3u);

  // The loopback boundary at 1, 4, and 8 worker threads all reproduce the
  // internal serial observations exactly.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    const core::EnsembleResult loopback = run_ensemble(true, threads);
    expect_observations_identical(internal_serial, loopback);
  }
  // And the internal family is itself thread-count invariant.
  const core::EnsembleResult internal_parallel = run_ensemble(false, 8);
  expect_observations_identical(internal_serial, internal_parallel);
}

// --- rogue replies: rejected, never UB ----------------------------------------

// Replies with unknown jobs, a duplicate start, and an unknown requeue —
// everything a buggy external component could throw at the core.
class RogueAgent final : public edc::Agent {
 public:
  std::vector<std::string> on_messages(
      const std::vector<std::string>& lines) override {
    bool pass = false;
    workload::JobId head = platform::kNoJob;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const edc::Message m = edc::parse_message(lines[i], i + 1);
      if (m.type == edc::Message::Type::kSchedulingPass) {
        pass = true;
        if (!m.pending.empty()) head = m.pending.front();
      }
    }
    std::vector<std::string> replies;
    if (!pass) return replies;
    edc::Reply reply;
    reply.type = edc::Reply::Type::kStartJob;
    reply.job = 999'999;  // never submitted
    replies.push_back(edc::serialize(reply));
    reply.type = edc::Reply::Type::kRequeue;
    reply.job = 888'888;  // unknown to the core
    replies.push_back(edc::serialize(reply));
    edc::Reply hold;
    hold.type = edc::Reply::Type::kHold;
    replies.push_back(edc::serialize(hold));
    if (head != platform::kNoJob) {
      edc::Reply start;
      start.type = edc::Reply::Type::kStartJob;
      start.job = head;
      replies.push_back(edc::serialize(start));
      // Stale duplicate: by the time it is applied the job already
      // started, so it must be rejected, not double-started.
      replies.push_back(edc::serialize(start));
    }
    return replies;
  }

  std::string name() const override { return "rogue"; }
};

TEST(EdcLoopback, RogueRepliesAreRejectedWithoutCorruptingTheRun) {
  sim::Simulation sim;
  platform::Cluster cluster = platform::ClusterBuilder().node_count(8).build();
  core::EpaJsrmSolution solution(sim, cluster);

  auto scheduler = std::make_unique<edc::ExternalScheduler>(
      std::make_shared<edc::LoopbackTransport>(std::make_shared<RogueAgent>()));
  const edc::ExternalScheduler* sched = scheduler.get();
  solution.set_scheduler(std::move(scheduler));

  for (workload::JobId id = 1; id <= 2; ++id) {
    workload::JobSpec spec;
    spec.id = id;
    spec.nodes = 2;
    spec.runtime_ref = 10 * sim::kMinute;
    spec.walltime_estimate = sim::kHour;
    solution.submit(spec);
  }
  solution.run_until(4 * sim::kHour);
  const core::RunResult result = solution.finalize();

  // Valid starts went through despite the noise; both jobs finished.
  EXPECT_EQ(result.report.jobs_completed, 2u);
  EXPECT_GT(sched->replies_applied(), 0u);
  // Unknown-job starts, unknown requeues, and the stale duplicate were
  // all counted out without disturbing core state.
  EXPECT_GT(sched->replies_rejected(), 0u);
}

// --- malformed replies: line-numbered ProtocolError ---------------------------

class GarbageAgent final : public edc::Agent {
 public:
  std::vector<std::string> on_messages(
      const std::vector<std::string>& lines) override {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const edc::Message m = edc::parse_message(lines[i], i + 1);
      if (m.type == edc::Message::Type::kSchedulingPass) {
        edc::Reply hold;
        hold.type = edc::Reply::Type::kHold;
        return {edc::serialize(hold), "this is not a reply"};
      }
    }
    return {};
  }

  std::string name() const override { return "garbage"; }
};

TEST(EdcLoopback, MalformedReplySurfacesLineNumberedProtocolError) {
  sim::Simulation sim;
  platform::Cluster cluster = platform::ClusterBuilder().node_count(4).build();
  core::EpaJsrmSolution solution(sim, cluster);
  solution.set_scheduler(std::make_unique<edc::ExternalScheduler>(
      std::make_shared<edc::LoopbackTransport>(
          std::make_shared<GarbageAgent>())));

  workload::JobSpec spec;
  spec.id = 1;
  spec.nodes = 1;
  spec.runtime_ref = sim::kMinute;
  solution.submit(spec);

  try {
    solution.run_until(sim::kHour);
    FAIL() << "expected edc::ProtocolError";
  } catch (const edc::ProtocolError& e) {
    EXPECT_EQ(e.line(), 2u);  // the garbage line, not the valid hold
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace epajsrm
