// The nine surveyed centers (Section III) as structured data.
//
// Machine parameters are approximate public descriptions of the systems
// the centers operated during the survey window (2016–2017); they seed the
// per-center simulation scenarios of the Table I/II benches. `sim_nodes`
// is the scaled-down node count actually simulated — the benches preserve
// per-node power fidelity and scale the facility numbers accordingly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace epajsrm::survey {

/// Geographic region grouping used in the paper's Figure 2 discussion.
enum class Region { kAsia, kEurope, kMiddleEast, kNorthAmerica };

const char* to_string(Region r);

/// One surveyed site and its headline machine (survey Q2).
struct CenterProfile {
  std::string short_name;   ///< key used across the framework
  std::string full_name;
  std::string country;
  Region region;
  double latitude = 0.0;
  double longitude = 0.0;

  std::string machine_name;
  std::uint32_t machine_nodes = 0;      ///< real system scale
  std::uint32_t cores_per_node = 0;
  double peak_system_mw = 0.0;          ///< approximate IT peak
  double site_power_capacity_mw = 0.0;  ///< Q2(a)
  std::string jsrm_software;            ///< scheduler / RM stack

  /// Node-level power model parameters for the simulated replica.
  double node_idle_watts = 0.0;
  double node_peak_watts = 0.0;  ///< idle + dynamic at full tilt

  /// Scaled-down replica size used by benches.
  std::uint32_t sim_nodes = 0;
  /// True when the center's typical workload is capability-dominated
  /// (Q3(d)); drives the synthetic mix.
  bool capability_oriented = false;
};

/// All nine surveyed centers, in the paper's listing order.
const std::vector<CenterProfile>& all_centers();

/// Lookup by short name ("RIKEN", "TokyoTech", "CEA", "KAUST", "LRZ",
/// "STFC", "Trinity", "CINECA", "JCAHPC"). Throws std::out_of_range when
/// unknown.
const CenterProfile& center(const std::string& short_name);

/// Great-circle distance between two centers in kilometres (spherical
/// earth, R = 6371 km).
double distance_km(const CenterProfile& a, const CenterProfile& b);

/// Renders an ASCII world map (equirectangular) with the centers marked by
/// index (1-9) — the reproduction of Figure 2's content.
std::string ascii_map(std::uint32_t width = 72, std::uint32_t height = 24);

}  // namespace epajsrm::survey
