#include "rm/allocator.hpp"

#include <algorithm>
#include <limits>

namespace epajsrm::rm {

std::uint32_t Allocator::available(const platform::Cluster& cluster,
                                   const EligibilityFn& eligible) {
  std::uint32_t count = 0;
  for (const platform::Node& node : cluster.nodes()) {
    if (eligible(node)) ++count;
  }
  return count;
}

std::vector<platform::NodeId> FirstFitAllocator::select(
    const platform::Cluster& cluster, std::uint32_t nodes,
    const EligibilityFn& eligible) const {
  std::vector<platform::NodeId> out;
  out.reserve(nodes);
  for (const platform::Node& node : cluster.nodes()) {
    if (!eligible(node)) continue;
    out.push_back(node.id());
    if (out.size() == nodes) return out;
  }
  return {};
}

std::vector<platform::NodeId> TopologyAwareAllocator::select(
    const platform::Cluster& cluster, std::uint32_t nodes,
    const EligibilityFn& eligible) const {
  std::vector<platform::NodeId> candidates;
  for (const platform::Node& node : cluster.nodes()) {
    if (eligible(node)) candidates.push_back(node.id());
  }
  if (candidates.size() < nodes) return {};
  if (nodes == candidates.size()) return candidates;

  const platform::Topology& topo = cluster.topology();
  const std::uint32_t seed_count =
      std::min<std::uint32_t>(seeds_, static_cast<std::uint32_t>(candidates.size()));

  std::vector<platform::NodeId> best;
  double best_spread = std::numeric_limits<double>::max();

  for (std::uint32_t s = 0; s < seed_count; ++s) {
    // Spread seeds evenly over the candidate list.
    const std::size_t seed_idx =
        static_cast<std::size_t>(s) * candidates.size() / seed_count;
    std::vector<platform::NodeId> chosen{candidates[seed_idx]};
    std::vector<bool> used(candidates.size(), false);
    used[seed_idx] = true;

    // Greedy growth: each step adds the candidate with the smallest total
    // distance to the already-chosen set.
    while (chosen.size() < nodes) {
      std::size_t best_idx = candidates.size();
      std::uint64_t best_dist = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (used[i]) continue;
        std::uint64_t dist = 0;
        for (platform::NodeId member : chosen) {
          dist += topo.distance(candidates[i], member);
        }
        if (dist < best_dist) {
          best_dist = dist;
          best_idx = i;
        }
      }
      used[best_idx] = true;
      chosen.push_back(candidates[best_idx]);
    }

    const double spread = topo.allocation_spread(chosen);
    if (spread < best_spread) {
      best_spread = spread;
      best = std::move(chosen);
    }
  }
  std::sort(best.begin(), best.end());
  return best;
}

std::vector<platform::NodeId> VariabilityAwareAllocator::select(
    const platform::Cluster& cluster, std::uint32_t nodes,
    const EligibilityFn& eligible) const {
  std::vector<platform::NodeId> candidates;
  for (const platform::Node& node : cluster.nodes()) {
    if (eligible(node)) candidates.push_back(node.id());
  }
  if (candidates.size() < nodes) return {};
  std::sort(candidates.begin(), candidates.end(),
            [&cluster](platform::NodeId a, platform::NodeId b) {
              const double va = cluster.node(a).config().variability;
              const double vb = cluster.node(b).config().variability;
              if (va != vb) return va < vb;
              return a < b;
            });
  candidates.resize(nodes);
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

}  // namespace epajsrm::rm
