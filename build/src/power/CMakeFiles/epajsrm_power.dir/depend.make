# Empty dependencies file for epajsrm_power.
# This may be replaced when dependencies are built.
