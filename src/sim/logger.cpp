#include "sim/logger.hpp"

#include <cctype>
#include <cstdio>

namespace epajsrm::sim {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  // kOff is a threshold, not a message severity: logging *at* kOff is
  // always dropped (previously such messages leaked through as "[OFF]").
  if (level >= LogLevel::kOff || level < threshold_) return;

  // Single emission point: the structured tap fires first, then the text
  // line is formatted once — identical with and without a clock, the only
  // difference being the timestamp rendering.
  const SimTime stamp_time = clock_ ? clock_() : -1;
  if (event_sink_) event_sink_(level, stamp_time, component, message);

  const std::string stamp =
      clock_ ? format_hms(stamp_time) : std::string("--:--:--");
  std::string line = "[" + stamp + "] [" + to_string(level) + "] [" +
                     component + "] " + message;
  if (sink_) {
    sink_(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace epajsrm::sim
