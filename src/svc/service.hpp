// ScenarioService: scenario-as-a-service execution engine.
//
// Requests (complete ScenarioConfigs, usually instantiated from warm
// templates) flow through:
//
//   submit -> normalize -> hash -> cache?  -- hit --> done (cached bytes)
//                                   | miss
//                                   v
//                      admission (tenant quota, bounded queue)
//                                   | admitted
//                                   v
//                        pending queue -> batcher thread
//
// The batcher coalesces up to `max_batch` pending requests into one
// core::EnsembleEngine grid (one point per request, one replication,
// SeedStream::kConfig so each request's own seed is authoritative) and
// fans the batch across the thread pool. Results are rendered to payload
// lines once, stored in the cache, and handed to waiters byte-for-byte.
//
// Soundness of the cache (DESIGN.md §14): runs are bit-deterministic in
// their config, configs are normalized before hashing so the key covers
// exactly the fields that can reach the payload, and the payload renderer
// is byte-stable. Hence cached bytes == recomputed bytes, which
// test_svc_service proves by evict-and-recompute.
//
// Thread model: one mutex guards every mutable member (entries, queue,
// cache, admission, obs plane — the obs registry itself is not
// thread-safe); the batcher drops the lock while the ensemble runs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "obs/observability.hpp"
#include "svc/admission.hpp"
#include "svc/cache.hpp"
#include "svc/templates.hpp"

namespace epajsrm::svc {

struct ServiceConfig {
  AdmissionConfig admission;
  /// Result-cache entries retained (LRU beyond this).
  std::size_t cache_capacity = 128;
  /// Pending requests coalesced into one ensemble batch.
  std::size_t max_batch = 8;
  /// Ensemble worker threads per batch (0 = hardware concurrency).
  std::size_t ensemble_threads = 0;
  /// Service-plane observability (svc.* metrics, per-request trace spans).
  obs::ObsConfig obs{.enabled = true,
                     .profile_event_loop = false,
                     .trace_log_lines = false,
                     .wall_instruments = false};
};

enum class RequestState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kCancelled,
  kFailed,
};

const char* to_string(RequestState state);

/// Snapshot of one request's lifecycle.
struct RequestStatus {
  std::uint64_t id = 0;
  RequestState state = RequestState::kQueued;
  bool known = false;   ///< false = the id was never issued (or was pruned)
  bool cached = false;  ///< payload came from the result cache
  std::string scenario_hash;
  std::string error;
  /// Response payload lines; filled when state == kDone.
  std::vector<std::string> payload;
};

/// Aggregate service counters (stats op / run exposition).
struct ServiceStats {
  std::size_t queue_depth = 0;
  std::size_t inflight = 0;
  std::size_t tenants = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_quota = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_size = 0;
  std::size_t cache_capacity = 0;
};

/// Serializes stats as one flat JSON payload line.
std::string serialize_stats(const ServiceStats& stats);

class ScenarioService {
 public:
  explicit ScenarioService(ServiceConfig config = {},
                           TemplateStore templates =
                               TemplateStore::with_builtins());
  ~ScenarioService();

  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  struct SubmitOutcome {
    AdmissionOutcome admission = AdmissionOutcome::kAdmitted;
    /// Issued request id; 0 when rejected.
    std::uint64_t id = 0;
    /// The request completed immediately from the cache.
    bool served_from_cache = false;
    /// Backpressure hint when rejected.
    std::int64_t retry_after_ms = 0;
  };

  /// Submits a complete config. Throws std::invalid_argument when the
  /// config is not a pure value (external_transport) or fails validation.
  SubmitOutcome submit(const std::string& tenant,
                       const core::ScenarioConfig& config,
                       bool want_report = false);

  /// Template + overrides convenience (the wire path). Throws
  /// std::invalid_argument on unknown template / invalid overrides.
  SubmitOutcome submit_template(const std::string& tenant,
                                const std::string& template_name,
                                const TemplateOverrides& overrides,
                                bool want_report = false);

  /// Non-blocking state snapshot.
  RequestStatus status(std::uint64_t id) const;

  /// Blocks until the request reaches a terminal state.
  RequestStatus wait(std::uint64_t id);

  /// True when the request was still queued and is now cancelled.
  bool cancel(std::uint64_t id);

  ServiceStats stats() const;
  const TemplateStore& templates() const { return templates_; }

  /// Normalization applied before hashing: strips fields that cannot
  /// influence the result payload (per-run obs plane, decision-log
  /// recording), so configs differing only there share a cache entry.
  static core::ScenarioConfig normalize(core::ScenarioConfig config);

  /// The service-plane obs (svc.* metrics, request spans); null when
  /// ServiceConfig::obs.enabled is false. Callers must not touch it while
  /// the service is live (it shares the service lock) — it is exposed for
  /// post-stop inspection and the server's exposition writer.
  obs::Observability* observability() { return obs_.get(); }

  /// Renders the service metrics registry in Prometheus text format.
  std::string prometheus_text() const;

  /// Stops the batcher; queued requests are failed. Idempotent.
  void stop();

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::string tenant;
    core::ScenarioConfig config;
    std::string hash;
    bool want_report = false;
    RequestState state = RequestState::kQueued;
    bool cached = false;
    std::string error;
    std::vector<std::string> payload;
    obs::ScopedSpan span;
  };

  void batcher_main();
  /// Runs one drained batch; called with the lock *held*, drops it for the
  /// ensemble run, reacquires to publish.
  void run_batch(std::vector<Entry*> batch, std::unique_lock<std::mutex>& lk);
  void finish_entry(Entry& entry, RequestState state);
  std::vector<std::string> render_payload(const Entry& entry,
                                          const core::RunResult& result) const;
  ServiceStats stats_locked() const;

  ServiceConfig config_;
  TemplateStore templates_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;        ///< waiters: request state changes
  std::condition_variable batch_cv_;  ///< batcher: queue/stop changes
  bool stopping_ = false;

  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Entry>> entries_;
  std::deque<std::uint64_t> pending_;
  ResultCache cache_;
  AdmissionController admission_;
  std::unique_ptr<obs::Observability> obs_;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_tenant_quota_ = 0;
  std::uint64_t batches_ = 0;

  std::thread batcher_;
};

}  // namespace epajsrm::svc
