// Experiment S6-IDLE — Mammela et al. [33] / Tokyo Tech idle-node
// shutdown: sweep the idle timeout and measure the energy saved against
// the wait-time cost of boot latencies, on a bursty (day/night) workload.
#include <cstdio>

#include <vector>

#include "center_bench.hpp"

namespace {

using namespace epajsrm;

core::RunResult run_with_timeout(sim::SimTime timeout, bool use_sleep) {
  core::Scenario scenario =
      core::Scenario::builder()
          .label(timeout == 0 ? "always-on" : "idle-shutdown")
          .nodes(48)
          .horizon(6 * sim::kDay)
          .seed(31)
          .mix(core::WorkloadMix::kCapacity)
          // Bursty load: low average utilisation creates real idle valleys.
          .target_utilization(0.35)
          .job_count(0)  // fill the horizon at that rate
          .configure([](core::ScenarioConfig& c) {
            c.solution.enable_thermal = false;
          })
          .build();
  if (timeout > 0) {
    epa::IdleShutdownPolicy::Config cfg;
    cfg.idle_timeout = timeout;
    cfg.min_idle_online = 2;
    cfg.use_sleep = use_sleep;
    scenario.solution().add_policy(
        std::make_unique<epa::IdleShutdownPolicy>(cfg));
  }
  return scenario.run();
}

}  // namespace

int main() {
  struct Point {
    sim::SimTime timeout;
    bool sleep;
    const char* label;
  };
  const std::vector<Point> points = {
      {0, false, "always-on (baseline)"},
      {60 * sim::kMinute, false, "off after 60 min"},
      {30 * sim::kMinute, false, "off after 30 min"},
      {10 * sim::kMinute, false, "off after 10 min"},
      {2 * sim::kMinute, false, "off after 2 min"},
      {10 * sim::kMinute, true, "sleep after 10 min"},
  };

  epajsrm::bench::BenchSummary summary("bench_idle_shutdown");
  std::vector<core::RunResult> results(points.size());
  sim::ThreadPool::parallel_for(points.size(), [&](std::size_t i) {
    results[i] = run_with_timeout(points[i].timeout, points[i].sleep);
  });
  for (const core::RunResult& r : results) summary.add_run(r);

  const double baseline_kwh = results[0].total_it_kwh_exact;
  metrics::AsciiTable table({"policy", "energy", "saved", "p50 wait (min)",
                             "p90 wait (min)", "boots", "jobs done"});
  table.set_title(
      "S6-IDLE: idle-timeout sweep on a bursty 48-node workload "
      "(~35 % average load)");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::RunResult& r = results[i];
    const double saved =
        (baseline_kwh - r.total_it_kwh_exact) / baseline_kwh;
    table.add_row({points[i].label,
                   metrics::format_kwh(r.total_it_kwh_exact),
                   metrics::format_percent(saved),
                   metrics::format_double(r.report.wait_minutes.median, 1),
                   metrics::format_double(r.report.wait_minutes.p90, 1),
                   std::to_string(r.node_boots),
                   std::to_string(r.report.jobs_completed)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: shorter timeouts save more energy but add boot-latency "
      "wait; sleep states trade a higher floor for faster resume.\n");
  return 0;
}
