// Fixture: unbounded-series must fire here (and only unbounded-series).
// Appending every tick into a growing vector named like a sample store is
// exactly the pattern the DownsamplingSeries ring store replaces.
#include <utility>
#include <vector>

struct TickSample {
  long t_us = 0;
  double node_watts = 0.0;
};

class NaiveRetention {
 public:
  void on_tick(long t_us, double node_watts) {
    samples_.push_back({t_us, node_watts});
    utilization_series_.emplace_back(t_us, 0.5);
    cap_history_->push_back({t_us, node_watts});
  }

 private:
  std::vector<TickSample> samples_;
  std::vector<std::pair<long, double>> utilization_series_;
  std::vector<TickSample>* cap_history_ = nullptr;
};
