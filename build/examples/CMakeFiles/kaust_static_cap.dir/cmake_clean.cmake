file(REMOVE_RECURSE
  "CMakeFiles/kaust_static_cap.dir/kaust_static_cap.cpp.o"
  "CMakeFiles/kaust_static_cap.dir/kaust_static_cap.cpp.o.d"
  "kaust_static_cap"
  "kaust_static_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kaust_static_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
