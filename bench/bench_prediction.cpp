// Experiment S6-PRED — the prediction line of Section VI (Borghesi [9],
// Shoukourian [40], Sîrbu [41]) and RIKEN's pre-run power estimates.
//
// Part 1: offline accuracy (MAPE/RMSE/bias) of the predictors on a
// workload stream whose ground-truth node power follows the power model.
// Part 2: the operational value of prediction — budgeted admission with
// each predictor; the conservative peak baseline wastes headroom (longer
// waits), a learned predictor recovers it, and violations stay bounded.
#include <cstdio>

#include <memory>
#include <vector>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "metrics/table.hpp"
#include "predict/accuracy.hpp"
#include "predict/ridge.hpp"
#include "predict/tag_history.hpp"
#include "workload/generator.hpp"

namespace {

using namespace epajsrm;

double true_node_watts(const workload::JobSpec& spec,
                       const platform::NodeConfig& node, double alpha) {
  (void)alpha;
  return node.idle_watts +
         node.dynamic_watts * spec.profile.power_intensity;
}

void offline_accuracy() {
  platform::NodeConfig node;
  node.idle_watts = 100.0;
  node.dynamic_watts = 200.0;
  const double peak = 300.0;

  workload::GeneratorConfig config;
  config.machine_nodes = 128;
  config.arrival_rate_per_hour = 50.0;
  workload::WorkloadGenerator generator(
      config, workload::AppCatalog::standard(), 77);
  const auto jobs = generator.generate(3000);

  std::vector<std::unique_ptr<predict::PowerPredictor>> predictors;
  predictors.push_back(std::make_unique<predict::PeakPowerPredictor>(peak));
  predictors.push_back(
      std::make_unique<predict::TagHistoryPowerPredictor>(peak));
  predictors.push_back(std::make_unique<predict::EwmaPowerPredictor>(peak));
  predictors.push_back(
      std::make_unique<predict::RidgePowerPredictor>(peak, 1.0, 16));

  metrics::AsciiTable table(
      {"predictor", "MAPE", "MAE (W)", "RMSE (W)", "bias (W)"});
  table.set_title(
      "S6-PRED part 1: per-node power prediction accuracy (3000 jobs, "
      "online predict-then-observe)");
  for (auto& predictor : predictors) {
    predict::AccuracyTracker acc;
    for (const auto& job : jobs) {
      const double actual = true_node_watts(job, node, 2.4);
      acc.add(actual, predictor->predict_node_watts(job));
      predictor->observe(job, actual);
    }
    table.add_row({predictor->name(),
                   metrics::format_percent(acc.mape()),
                   metrics::format_double(acc.mae(), 1),
                   metrics::format_double(acc.rmse(), 1),
                   metrics::format_double(acc.bias(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
}

core::RunResult run_with_predictor(
    std::unique_ptr<predict::PowerPredictor> predictor,
    const std::string& label) {
  core::ScenarioConfig config;
  config.label = label;
  config.nodes = 48;
  config.job_count = 150;
  config.horizon = 30 * sim::kDay;
  config.seed = 12;
  config.mix = core::WorkloadMix::kCapacity;
  config.solution.enable_thermal = false;
  core::Scenario scenario(config);
  const double peak = scenario.solution().power_model().peak_watts(
                          scenario.cluster().node(0).config()) *
                      config.nodes;
  const double budget = 0.7 * peak;
  scenario.solution().metrics_collector().set_budget_watts(budget);
  scenario.solution().set_power_predictor(std::move(predictor));
  scenario.solution().add_policy(
      std::make_unique<epa::PowerBudgetDvfsPolicy>(budget, false));
  return scenario.run();
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_prediction");
  offline_accuracy();

  const double node_peak = 290.0;  // default node: 90 + 200 at full tilt
  struct Variant {
    std::string name;
    std::unique_ptr<predict::PowerPredictor> predictor;
  };
  std::vector<Variant> variants;
  variants.push_back(
      {"peak-baseline",
       std::make_unique<predict::PeakPowerPredictor>(node_peak)});
  variants.push_back(
      {"tag-history",
       std::make_unique<predict::TagHistoryPowerPredictor>(node_peak)});
  variants.push_back(
      {"ridge", std::make_unique<predict::RidgePowerPredictor>(node_peak)});

  metrics::AsciiTable table({"predictor", "p50 wait (min)", "p90 wait (min)",
                             "mean util", "viol. time", "worst over",
                             "makespan (h)"});
  table.set_title(
      "S6-PRED part 2: budgeted admission (70 % budget, no DVFS) driven by "
      "each predictor");
  for (auto& variant : variants) {
    const core::RunResult r =
        run_with_predictor(std::move(variant.predictor), variant.name);
    summary.add_run(r);
    table.add_row({variant.name,
                   metrics::format_double(r.report.wait_minutes.median, 1),
                   metrics::format_double(r.report.wait_minutes.p90, 1),
                   metrics::format_percent(r.report.mean_core_utilization),
                   metrics::format_percent(r.report.violation_fraction),
                   metrics::format_watts(r.report.worst_violation_watts),
                   metrics::format_double(sim::to_hours(r.report.makespan),
                                          1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape check: the conservative peak predictor never violates but "
      "over-reserves headroom; learned predictors admit more work with "
      "small, bounded violation risk.\n");
  return 0;
}
