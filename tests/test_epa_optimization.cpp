// EPA policy tests: energy-to-solution (LRZ), overprovisioning/moldable,
// energy-cost ordering, source selection.
#include <gtest/gtest.h>

#include "core/solution.hpp"
#include "epa/energy_cost_order.hpp"
#include "epa/energy_to_solution.hpp"
#include "epa/overprovision.hpp"
#include "epa/source_selection.hpp"

namespace epajsrm::epa {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 8) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime, sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 3;
  spec.submit_time = submit;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

TEST(EnergyToSolution, FirstRunCharacterizesSecondRunOptimizes) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  auto policy = std::make_unique<EnergyToSolutionPolicy>(
      EnergyToSolutionPolicy::Goal::kEnergyToSolution, /*max_slowdown=*/2.0);
  EnergyToSolutionPolicy* eas = policy.get();
  solution.add_policy(std::move(policy));

  // Memory-bound app: slowing it barely stretches runtime, so the energy
  // optimum is a deep P-state.
  workload::JobSpec first = job_spec(1, 1, 30 * sim::kMinute);
  first.tag = "membound";
  first.profile.freq_sensitive_fraction = 0.1;
  solution.submit(first);
  solution.run_until(2 * sim::kHour);
  EXPECT_TRUE(eas->characterized("membound"));
  EXPECT_EQ(eas->optimized_starts(), 0u);  // first run at reference freq

  workload::JobSpec second = job_spec(2, 1, 30 * sim::kMinute,
                                      sim.now() + sim::kMinute);
  second.tag = "membound";
  second.profile.freq_sensitive_fraction = 0.1;
  solution.submit(second);
  solution.run_until(sim.now() + 4 * sim::kHour);
  EXPECT_EQ(eas->optimized_starts(), 1u);
  workload::Job* job2 = solution.find_job(2);
  ASSERT_EQ(job2->state(), workload::JobState::kCompleted);
  // Deep P-state: cheaper per node-second than the first run.
  workload::Job* job1 = solution.find_job(1);
  const double rate1 = job1->energy_joules() /
                       sim::to_seconds(job1->end_time() - job1->start_time());
  const double rate2 = job2->energy_joules() /
                       sim::to_seconds(job2->end_time() - job2->start_time());
  EXPECT_LT(rate2, rate1);
}

TEST(EnergyToSolution, PerformanceGoalKeepsFullSpeed) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster);
  auto policy = std::make_unique<EnergyToSolutionPolicy>(
      EnergyToSolutionPolicy::Goal::kBestPerformance);
  EnergyToSolutionPolicy* eas = policy.get();
  solution.add_policy(std::move(policy));
  workload::JobSpec spec = job_spec(1, 1, 20 * sim::kMinute);
  spec.tag = "x";
  solution.submit(spec);
  solution.run_until(2 * sim::kHour);
  workload::JobSpec again = job_spec(2, 1, 20 * sim::kMinute, sim.now());
  again.tag = "x";
  solution.submit(again);
  solution.run_until(sim.now() + 2 * sim::kHour);
  EXPECT_EQ(eas->optimized_starts(), 0u);
  EXPECT_EQ(solution.find_job(2)->end_time() -
                solution.find_job(2)->start_time(),
            20 * sim::kMinute);  // no stretch
}

TEST(EnergyToSolution, ComputeBoundStaysFast) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  auto policy = std::make_unique<EnergyToSolutionPolicy>(
      EnergyToSolutionPolicy::Goal::kEnergyToSolution, /*max_slowdown=*/1.2);
  EnergyToSolutionPolicy* eas = policy.get();
  solution.add_policy(std::move(policy));
  // Fully compute-bound: T(f) = 1/r; energy at idle-dominated nodes only
  // grows when slowing. Optimal stays near full speed within the slowdown
  // budget.
  workload::JobSpec first = job_spec(1, 1, 20 * sim::kMinute);
  first.tag = "compute";
  first.profile.freq_sensitive_fraction = 1.0;
  solution.submit(first);
  solution.run_until(3 * sim::kHour);
  workload::JobSpec second = job_spec(2, 1, 20 * sim::kMinute, sim.now());
  second.tag = "compute";
  second.profile.freq_sensitive_fraction = 1.0;
  solution.submit(second);
  solution.run_until(sim.now() + 3 * sim::kHour);
  workload::Job* job2 = solution.find_job(2);
  ASSERT_EQ(job2->state(), workload::JobState::kCompleted);
  // Runtime must respect the 1.2x slowdown cap.
  EXPECT_LE(job2->end_time() - job2->start_time(),
            static_cast<sim::SimTime>(20 * sim::kMinute * 1.25));
  (void)eas;
}

TEST(Overprovision, ReshapesMoldableJobUnderTightBudget) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  // Idle floor 800 W; budget leaves only 120 W dynamic headroom — the
  // 4-node shape cannot fit even at the deepest P-state (800 W dynamic
  // scaled by 0.5^2.4 is still ~151 W), so only the 2-node shape fits.
  auto policy = std::make_unique<OverprovisionPolicy>(920.0);
  OverprovisionPolicy* over = policy.get();
  solution.add_policy(std::move(policy));

  workload::JobSpec spec = job_spec(1, 4, 30 * sim::kMinute);
  spec.moldable = {{4, 1.0}, {2, 1.8}};
  // The narrow shape at a deep P-state stretches ~3x; leave walltime room.
  spec.walltime_estimate = 4 * sim::kHour;
  solution.submit(spec);
  solution.run_until(6 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_GT(over->reshaped_starts(), 0u);
  EXPECT_EQ(job->allocated_nodes().size(), 2u);
  const core::RunResult result = solution.finalize();
  EXPECT_LE(result.report.max_it_watts, 920.0 + 1e-6);
}

TEST(Overprovision, RigidJobFallsBackToDvfs) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  solution.add_policy(std::make_unique<OverprovisionPolicy>(1200.0));
  workload::JobSpec spec = job_spec(1, 4, 30 * sim::kMinute);  // rigid
  solution.submit(spec);
  solution.run_until(6 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_EQ(job->allocated_nodes().size(), 4u);
  // Started at a degraded P-state to fit 400 W headroom.
  EXPECT_GT(job->end_time() - job->start_time(), 30 * sim::kMinute);
}

TEST(CostOrder, DefersDeferrableWorkInPeakHours) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::peak_offpeak(0.40, 0.10, 8.0,
                                                           20.0),
                     .startup_time = 0, .dispatchable = false});
  solution.set_supply(std::move(supply));
  auto policy = std::make_unique<EnergyCostOrderPolicy>();
  EnergyCostOrderPolicy* order = policy.get();
  solution.add_policy(std::move(policy));

  // Submit at 09:00 (peak): deferrable job waits for 20:00, urgent runs.
  workload::JobSpec deferrable = job_spec(1, 1, sim::kHour,
                                          sim::from_hours(9.0));
  deferrable.deferrable = true;
  deferrable.deadline = sim::from_hours(9.0) + 2 * sim::kDay;
  workload::JobSpec urgent = job_spec(2, 1, sim::kHour, sim::from_hours(9.0));
  solution.submit(deferrable);
  solution.submit(urgent);
  solution.run_until(sim::from_hours(30.0));

  workload::Job* d = solution.find_job(1);
  workload::Job* u = solution.find_job(2);
  ASSERT_EQ(d->state(), workload::JobState::kCompleted);
  ASSERT_EQ(u->state(), workload::JobState::kCompleted);
  EXPECT_GT(order->deferrals(), 0u);
  EXPECT_LT(u->start_time(), sim::from_hours(9.5));
  EXPECT_GE(d->start_time(), sim::from_hours(20.0));  // off-peak start
}

TEST(CostOrder, DeadlinePressureOverridesPrice) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster);
  power::SupplyPortfolio supply;
  supply.add_source({.name = "grid", .capacity_watts = 0.0,
                     .tariff = power::Tariff::peak_offpeak(0.40, 0.10, 0.0,
                                                           24.0),
                     .startup_time = 0, .dispatchable = false});
  solution.set_supply(std::move(supply));
  solution.add_policy(std::make_unique<EnergyCostOrderPolicy>());
  // Always-peak tariff, but the deadline is tight: must run immediately.
  workload::JobSpec spec = job_spec(1, 1, sim::kHour, 0);
  spec.deferrable = true;
  spec.deadline = 5 * sim::kHour;  // slack < safety * walltime? walltime 3h
  solution.submit(spec);
  solution.run_until(12 * sim::kHour);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kCompleted);
}

TEST(CostOrder, NoSupplyMeansNoDeferral) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  core::EpaJsrmSolution solution(sim, cluster);
  auto policy = std::make_unique<EnergyCostOrderPolicy>();
  EnergyCostOrderPolicy* order = policy.get();
  solution.add_policy(std::move(policy));
  workload::JobSpec spec = job_spec(1, 1, sim::kHour);
  spec.deferrable = true;
  solution.submit(spec);
  solution.run_until(6 * sim::kHour);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kCompleted);
  EXPECT_EQ(order->deferrals(), 0u);
}

TEST(SourceSelection, BudgetsAgainstPortfolioCapacity) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(8);
  core::SolutionConfig config;
  config.enable_thermal = false;
  core::EpaJsrmSolution solution(sim, cluster, config);
  power::SupplyPortfolio supply;
  // PUE 1.25 default: grid 1500 W + turbine 500 W = 2000 facility
  // -> 1600 W IT deliverable.
  supply.add_source({.name = "grid", .capacity_watts = 1500.0,
                     .tariff = power::Tariff::flat(0.10), .startup_time = 0,
                     .dispatchable = false});
  supply.add_source({.name = "turbine", .capacity_watts = 500.0,
                     .tariff = power::Tariff::flat(0.30), .startup_time = 0,
                     .dispatchable = true});
  solution.set_supply(std::move(supply));
  auto policy = std::make_unique<SourceSelectionPolicy>();
  SourceSelectionPolicy* source = policy.get();
  solution.add_policy(std::move(policy));

  for (workload::JobId id = 1; id <= 8; ++id) {
    solution.submit(job_spec(id, 1, sim::kHour));
  }
  solution.run_until(8 * sim::kHour);
  // Admission respected the deliverable budget.
  const core::RunResult result = solution.finalize();
  const double budget = source->power_budget_watts(0);
  EXPECT_GT(budget, 0.0);
  EXPECT_LE(result.report.max_it_watts, budget + 1e-6);
  // The fleet's idle floor (800 W) exceeds the grid's IT share
  // (1500/1.25 = 1200)? No: 800 < 1200, so turbine engagement depends on
  // load; with jobs running the draw passes 1200 and the turbine fires.
  EXPECT_GT(source->dispatch_cost(), 0.0);
  EXPECT_GT(source->dispatchable_kwh(), 0.0);
  EXPECT_DOUBLE_EQ(source->unserved_joules(), 0.0);
}

}  // namespace
}  // namespace epajsrm::epa
