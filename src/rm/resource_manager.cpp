#include "rm/resource_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"
#include "obs/observability.hpp"

namespace epajsrm::rm {

ResourceManager::ResourceManager(sim::Simulation& sim,
                                 platform::Cluster& cluster,
                                 const power::NodePowerModel& model,
                                 std::unique_ptr<Allocator> allocator)
    : sim_(&sim), cluster_(&cluster), model_(&model),
      allocator_(std::move(allocator)), layout_(cluster),
      lifecycle_(sim, cluster) {
  if (!allocator_) throw std::invalid_argument("allocator required");
}

void ResourceManager::set_quarantine_policy(std::uint32_t threshold,
                                            sim::SimTime window,
                                            sim::SimTime duration) {
  EPAJSRM_REQUIRE(window >= 0 && duration >= 0,
                  "quarantine times cannot be negative");
  flap_threshold_ = threshold;
  flap_window_ = window;
  quarantine_duration_ = duration;
}

bool ResourceManager::record_crash(platform::NodeId node, sim::SimTime now) {
  if (flap_threshold_ == 0) return false;
  std::vector<sim::SimTime>& history = crash_history_[node];
  history.push_back(now);
  history.erase(std::remove_if(history.begin(), history.end(),
                               [this, now](sim::SimTime t) {
                                 return t + flap_window_ < now;
                               }),
                history.end());
  if (history.size() < flap_threshold_) return false;
  // Flapping: fence the node off so the scheduler stops feeding it jobs.
  history.clear();
  quarantine_until_[node] = now + quarantine_duration_;
  ++quarantines_;
  if (obs_ != nullptr) {
    obs_->metrics().counter("rm.quarantines").add(1);
    obs_->trace().instant(
        "rm", "quarantine", -1, static_cast<std::int64_t>(node),
        {{"until_s", sim::to_seconds(now + quarantine_duration_)}});
  }
  return true;
}

bool ResourceManager::quarantined(platform::NodeId node) const {
  const auto it = quarantine_until_.find(node);
  return it != quarantine_until_.end() && sim_->now() < it->second;
}

std::uint32_t ResourceManager::quarantined_count() const {
  std::uint32_t count = 0;
  for (const auto& [node, until] : quarantine_until_) {
    if (sim_->now() < until) ++count;
  }
  return count;
}

void ResourceManager::set_allocator(std::unique_ptr<Allocator> allocator) {
  if (!allocator) throw std::invalid_argument("allocator required");
  allocator_ = std::move(allocator);
}

EligibilityFn ResourceManager::eligibility() const {
  const LayoutService* layout = &layout_;
  const EligibilityFn extra = extra_eligibility_;
  return [this, layout, extra](const platform::Node& node) {
    if (!Allocator::default_eligible(node)) return false;
    if (!layout->plant_ok(node)) return false;
    // Quarantined flappers are fenced off; backfill sees them as
    // unavailable through allocatable_nodes()/try_start.
    if (quarantined(node.id())) return false;
    if (extra && !extra(node)) return false;
    return true;
  };
}

std::uint32_t ResourceManager::allocatable_nodes() const {
  return Allocator::available(*cluster_, eligibility());
}

std::vector<platform::NodeId> ResourceManager::allocate(workload::Job& job,
                                                        std::uint32_t nodes) {
  EPAJSRM_REQUIRE(nodes > 0, "allocations are at least one node");
  EPAJSRM_REQUIRE(job.allocated_nodes().empty(),
                  "job is already holding an allocation");
  obs::ScopedSpan span = obs::span_of(obs_, "rm", "allocate");
  if (span.active()) {
    span.set_job(static_cast<std::int64_t>(job.id()));
    span.attr("nodes_requested", static_cast<double>(nodes));
  }

  const std::vector<platform::NodeId> selected =
      allocator_->select(*cluster_, nodes, eligibility());
  EPAJSRM_ENSURE(selected.empty() || selected.size() == nodes,
                 "allocator must fill the request exactly or not at all");
  if (selected.empty()) {
    if (obs_ != nullptr) {
      span.attr("outcome", "no_nodes");
      obs_->metrics().counter("rm.alloc_failures").add(1);
    }
    return {};
  }

  const workload::JobSpec& spec = job.spec();
  for (platform::NodeId id : selected) {
    platform::Node& node = cluster_->node(id);
    const std::uint32_t cores = spec.cores_per_node == 0
                                    ? node.cores_total()
                                    : spec.cores_per_node;
    node.allocate(job.id(), cores, spec.profile.power_intensity);
    model_->apply(node);
  }

  job.set_allocated_nodes(selected);
  job.set_cores_per_node_allocated(
      spec.cores_per_node == 0 ? cluster_->node(selected.front()).cores_total()
                               : spec.cores_per_node);
  job.set_placement_spread(cluster_->topology().allocation_spread(selected));
  if (obs_ != nullptr) {
    span.attr("spread", job.placement_spread());
    obs_->metrics().counter("rm.allocations").add(1);
  }
  return selected;
}

void ResourceManager::release(workload::Job& job) {
  for (platform::NodeId id : job.allocated_nodes()) {
    platform::Node& node = cluster_->node(id);
    node.release(job.id());
    model_->apply(node);
  }
  if (obs_ != nullptr) {
    obs_->metrics().counter("rm.releases").add(1);
    obs_->trace().instant(
        "rm", "release", static_cast<std::int64_t>(job.id()), -1,
        {{"nodes", static_cast<double>(job.allocated_nodes().size())}});
  }
}

}  // namespace epajsrm::rm
