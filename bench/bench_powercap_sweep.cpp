// Experiment S6-CAP — the power-capping line of Section VI (Sarood [38],
// Patki [37], Ellsworth [17], Bodas [8]).
//
// Sweep the system power budget from loose to tight and compare four
// strategies on identical workloads:
//   * none        — no control (violations happen, work is fastest)
//   * static-even — CAPMC-style equal node caps (KAUST/Trinity shape)
//   * dvfs-admit  — Etinski/SDPM budgeted admission with DVFS
//   * dyn-share   — POWsched dynamic budget re-division
//   * overprov    — Sarood over-provisioning with moldable shapes
// Expected shape: everyone but "none" eliminates violations; dynamic
// sharing and overprovisioning keep more throughput at tight budgets than
// the static split.
#include <cstdio>

#include <functional>
#include <memory>
#include <vector>

#include "center_bench.hpp"

namespace {

using namespace epajsrm;

struct Variant {
  std::string name;
  std::function<void(core::EpaJsrmSolution&, double budget)> install;
};

struct Cell {
  core::RunResult result;
};

core::RunResult run_variant(const Variant& variant, double budget_fraction) {
  // Plenty of moldable work so overprovisioning has material.
  core::Scenario scenario = core::Scenario::builder()
                                .label(variant.name)
                                .nodes(64)
                                .job_count(150)
                                .horizon(30 * sim::kDay)
                                .seed(9)
                                .mix(core::WorkloadMix::kCapacity)
                                .build();
  const double peak =
      scenario.solution().power_model().peak_watts(
          scenario.cluster().node(0).config()) *
      scenario.config().nodes;
  const double budget = budget_fraction * peak;
  scenario.solution().metrics_collector().set_budget_watts(budget);
  variant.install(scenario.solution(), budget);
  return scenario.run();
}

}  // namespace

int main() {
  const std::vector<Variant> variants = {
      {"none", [](core::EpaJsrmSolution&, double) {}},
      {"static-even",
       [](core::EpaJsrmSolution& s, double budget) {
         s.add_policy(std::make_unique<epa::StaticPowerCapPolicy>(
             1.0, budget / 64.0));
       }},
      {"dvfs-admit",
       [](core::EpaJsrmSolution& s, double budget) {
         s.add_policy(std::make_unique<epa::PowerBudgetDvfsPolicy>(budget));
       }},
      {"dyn-share",
       [](core::EpaJsrmSolution& s, double budget) {
         s.add_policy(
             std::make_unique<epa::DynamicPowerSharePolicy>(budget));
       }},
      {"overprov",
       [](core::EpaJsrmSolution& s, double budget) {
         s.add_policy(std::make_unique<epa::OverprovisionPolicy>(budget));
         s.add_policy(std::make_unique<epa::PowerBudgetDvfsPolicy>(budget));
       }},
  };
  const std::vector<double> fractions = {0.95, 0.85, 0.75, 0.65, 0.55};

  // All (variant, fraction) cells are independent: run them on the pool.
  epajsrm::bench::BenchSummary summary("bench_powercap_sweep");
  std::vector<core::RunResult> cells(variants.size() * fractions.size());
  sim::ThreadPool::parallel_for(cells.size(), [&](std::size_t i) {
    const std::size_t v = i / fractions.size();
    const std::size_t f = i % fractions.size();
    cells[i] = run_variant(variants[v], fractions[f]);
  });
  for (const core::RunResult& r : cells) summary.add_run(r);

  metrics::AsciiTable table({"budget (of peak)", "strategy", "makespan (h)",
                             "p50 wait (min)", "viol. time", "worst over",
                             "energy", "jobs done"});
  table.set_title(
      "S6-CAP: power-cap strategy sweep (64 nodes, identical workload)");
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const core::RunResult& r = cells[v * fractions.size() + f];
      table.add_row(
          {metrics::format_percent(fractions[f], 0), variants[v].name,
           metrics::format_double(sim::to_hours(r.report.makespan), 1),
           metrics::format_double(r.report.wait_minutes.median, 1),
           metrics::format_percent(r.report.violation_fraction),
           metrics::format_watts(r.report.worst_violation_watts),
           metrics::format_kwh(r.total_it_kwh_exact),
           std::to_string(r.report.jobs_completed)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
