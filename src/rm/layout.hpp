// Layout logic — CEA's technology-development row: "be able to tell what
// PDUs/Chillers a node or rack depends on and avoid scheduling jobs on
// them when maintenance [is planned]".
//
// The service answers dependency queries over the facility wiring and
// contributes an eligibility veto to allocation.
#pragma once

#include <vector>

#include "platform/cluster.hpp"

namespace epajsrm::rm {

/// Facility-dependency queries and maintenance windows.
class LayoutService {
 public:
  explicit LayoutService(platform::Cluster& cluster) : cluster_(&cluster) {}

  /// Nodes that lose power when this PDU goes down.
  const std::vector<platform::NodeId>& nodes_on_pdu(platform::PduId id) const {
    return cluster_->facility().pdu(id).nodes;
  }

  /// Nodes that lose cooling when this loop goes down.
  const std::vector<platform::NodeId>& nodes_on_loop(
      platform::CoolingId id) const {
    return cluster_->facility().cooling_loop(id).nodes;
  }

  /// Flags a PDU for maintenance: dependent nodes become ineligible for
  /// new work (running jobs finish — the drain semantic).
  void set_pdu_maintenance(platform::PduId id, bool maintenance) {
    cluster_->facility().pdu(id).under_maintenance = maintenance;
  }

  void set_cooling_maintenance(platform::CoolingId id, bool maintenance) {
    cluster_->facility().cooling_loop(id).under_maintenance = maintenance;
  }

  /// True when the node's PDU and cooling loop are both serviceable.
  bool plant_ok(const platform::Node& node) const {
    const platform::Facility& f = cluster_->facility();
    return !f.pdu(node.pdu()).under_maintenance &&
           !f.cooling_loop(node.cooling_loop()).under_maintenance;
  }

  /// Nodes currently blocked by maintenance.
  std::vector<platform::NodeId> blocked_nodes() const;

  /// Count of running jobs that still occupy maintenance-flagged plant
  /// (they are draining; maintenance can begin once this reaches zero).
  std::uint32_t draining_job_count() const;

 private:
  platform::Cluster* cluster_;
};

}  // namespace epajsrm::rm
