// The resource manager: privileged owner of node allocation and release.
//
// Figure 1's "resource manager" box: the scheduler decides *which* job
// starts; this component turns that decision into node state — selecting
// nodes (allocator strategy), charging cores, refreshing the power model,
// and freezing the job's placement spread. It also bundles the layout
// service and the node lifecycle driver.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "platform/cluster.hpp"
#include "power/node_power_model.hpp"
#include "rm/allocator.hpp"
#include "rm/layout.hpp"
#include "rm/node_lifecycle.hpp"
#include "workload/job.hpp"

namespace epajsrm::obs {
class Observability;
}

namespace epajsrm::rm {

/// Allocation/release front-end over the cluster.
class ResourceManager {
 public:
  ResourceManager(sim::Simulation& sim, platform::Cluster& cluster,
                  const power::NodePowerModel& model,
                  std::unique_ptr<Allocator> allocator);

  /// Swaps the allocation strategy (e.g. topology-aware experiments).
  void set_allocator(std::unique_ptr<Allocator> allocator);
  const Allocator& allocator() const { return *allocator_; }

  /// Adds an extra eligibility veto on top of idle + layout checks (EPA
  /// policies use this, e.g. to fence off powered-down node pools).
  void set_extra_eligibility(EligibilityFn extra) {
    extra_eligibility_ = std::move(extra);
  }

  /// Combined eligibility: idle whole node + plant serviceable + extra.
  EligibilityFn eligibility() const;

  /// Nodes an allocation could use right now.
  std::uint32_t allocatable_nodes() const;

  /// Allocates `nodes` nodes to the job (cores per the spec, intensity per
  /// the profile), refreshes node power, freezes placement spread on the
  /// job. Empty result = could not allocate (nothing changed).
  std::vector<platform::NodeId> allocate(workload::Job& job,
                                         std::uint32_t nodes);

  /// Releases every node of `job` and refreshes node power.
  void release(workload::Job& job);

  LayoutService& layout() { return layout_; }
  const LayoutService& layout() const { return layout_; }
  NodeLifecycle& lifecycle() { return lifecycle_; }
  platform::Cluster& cluster() { return *cluster_; }
  const power::NodePowerModel& power_model() const { return *model_; }

  // --- crash quarantine (resilience plane, DESIGN.md §9) -------------------

  /// Flap-detection policy: a node that crashes `threshold` times within
  /// `window` is quarantined (ineligible for allocation) for `duration`.
  /// threshold 0 disables quarantining.
  void set_quarantine_policy(std::uint32_t threshold, sim::SimTime window,
                             sim::SimTime duration);

  /// Records one crash of `node` at `now`; returns true when this crash
  /// tripped the flap detector and the node is now quarantined.
  bool record_crash(platform::NodeId node, sim::SimTime now);

  /// True while `node` sits in quarantine (expiry is lazy against the
  /// simulation clock).
  bool quarantined(platform::NodeId node) const;

  /// Nodes currently quarantined.
  std::uint32_t quarantined_count() const;

  /// Total quarantines imposed over the run.
  std::uint64_t quarantines() const { return quarantines_; }

  /// Attaches (or with null, detaches) the observability plane; allocate/
  /// release then record spans, instants and rm.* counters.
  void set_observability(obs::Observability* o) { obs_ = o; }

 private:
  obs::Observability* obs_ = nullptr;
  sim::Simulation* sim_;
  platform::Cluster* cluster_;
  const power::NodePowerModel* model_;
  std::unique_ptr<Allocator> allocator_;
  LayoutService layout_;
  NodeLifecycle lifecycle_;
  EligibilityFn extra_eligibility_;

  std::uint32_t flap_threshold_ = 3;
  sim::SimTime flap_window_ = 1 * sim::kHour;
  sim::SimTime quarantine_duration_ = 8 * sim::kHour;
  /// Recent crash times per node (pruned to the flap window on record).
  std::map<platform::NodeId, std::vector<sim::SimTime>> crash_history_;
  /// node -> quarantine expiry time (expired entries are ignored lazily).
  std::map<platform::NodeId, sim::SimTime> quarantine_until_;
  std::uint64_t quarantines_ = 0;
};

}  // namespace epajsrm::rm
