#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace epajsrm::obs {

double LoopProfiler::events_per_sec() const {
  if (total_ns_ <= 0) return 0.0;
  return static_cast<double>(total_events_) /
         (static_cast<double>(total_ns_) / 1e9);
}

std::vector<LoopProfiler::CategoryStats> LoopProfiler::report() const {
  // Merge by name: the same literal text may live at different addresses
  // across translation units.
  std::map<std::string, CategoryStats> merged;
  // Sum/max per key commute, so hash order cannot leak into the output.
  for (const auto& [category, bucket] : buckets_) {  // lint:allow(unordered-iter) order-independent merge
    CategoryStats& s = merged[category];
    s.category = category;
    s.count += bucket.count;
    s.total_ns += bucket.total_ns;
    s.max_ns = std::max(s.max_ns, bucket.max_ns);
  }
  std::vector<CategoryStats> out;
  out.reserve(merged.size());
  for (auto& [name, stats] : merged) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(),
            [](const CategoryStats& a, const CategoryStats& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.category < b.category;
            });
  return out;
}

std::string LoopProfiler::format_report() const {
  std::string out = "event-loop profile (category: events, total, mean, max)\n";
  char buf[192];
  for (const CategoryStats& s : report()) {
    const double mean_us =
        s.count > 0 ? static_cast<double>(s.total_ns) / s.count / 1e3 : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "  %-20s %10llu  %9.3f ms  %8.2f us  %8.2f us\n",
                  s.category.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6, mean_us,
                  static_cast<double>(s.max_ns) / 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  total: %llu events in %.3f ms (%.0f events/sec)\n",
                static_cast<unsigned long long>(total_events_),
                static_cast<double>(total_ns_) / 1e6, events_per_sec());
  out += buf;
  if (stride_ > 1) {
    std::snprintf(buf, sizeof(buf),
                  "  sampled: every %u-th dispatched event\n", stride_);
    out += buf;
  }
  return out;
}

void LoopProfiler::reset() {
  buckets_.clear();
  total_events_ = 0;
  total_ns_ = 0;
}

}  // namespace epajsrm::obs
