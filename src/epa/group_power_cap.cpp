#include "epa/group_power_cap.hpp"

#include <algorithm>

namespace epajsrm::epa {

void GroupPowerCapPolicy::install(PolicyHost& host) {
  EpaPolicy::install(host);
  platform::Cluster& cluster = host.cluster();
  const auto& pdus = cluster.facility().pdus();

  budget_ = 0.0;
  for (const platform::Pdu& pdu : pdus) {
    double cap = 0.0;
    if (uniform_fraction_ > 0.0) {
      double peak = 0.0;
      for (platform::NodeId id : pdu.nodes) {
        peak += host.power_model().peak_watts(cluster.node(id).config());
      }
      cap = peak * uniform_fraction_;
    } else if (pdu.id < group_caps_.size()) {
      cap = group_caps_[pdu.id];
    }
    if (cap > 0.0 && !pdu.nodes.empty()) {
      host.set_group_cap(pdu.nodes,
                         cap / static_cast<double>(pdu.nodes.size()));
      budget_ += cap;
    } else {
      for (platform::NodeId id : pdu.nodes) {
        budget_ += host.power_model().peak_watts(cluster.node(id).config());
      }
    }
  }
}

void GroupPowerCapPolicy::set_group_cap(PolicyHost& host,
                                        platform::PduId group, double watts) {
  const platform::Pdu& pdu = host.cluster().facility().pdu(group);
  if (pdu.nodes.empty()) return;
  host.set_group_cap(pdu.nodes,
                     watts > 0.0
                         ? watts / static_cast<double>(pdu.nodes.size())
                         : 0.0);
}

}  // namespace epajsrm::epa
