// InvariantAuditor: zero violations on healthy runs (including busy
// multi-policy scenarios), and guaranteed detection when each audited
// invariant is deliberately broken.
#include "check/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include "core/facility_coordinator.hpp"
#include "core/scenario.hpp"
#include "epa/dynamic_power_share.hpp"
#include "epa/idle_shutdown.hpp"
#include "epa/power_budget_dvfs.hpp"
#include "power/ledger.hpp"

namespace epajsrm {
namespace {

core::ScenarioConfig small_scenario(std::uint64_t seed) {
  core::ScenarioConfig config;
  config.nodes = 8;
  config.job_count = 20;
  config.horizon = 4 * sim::kDay;
  config.seed = seed;
  config.mix = core::WorkloadMix::kCapacity;
  return config;
}

// Injects buggy power facts the way a buggy actuator would reach the
// system: through the node sensor caches AND the ledger together.
// (Tampering with only one side is the *mirror-break* bug class, covered
// by the ledger fidelity tests in test_power_ledger.cpp.)
void tamper_power(core::Scenario& scenario, platform::NodeId id,
                  double watts, double cap_watts) {
  platform::Node& node = scenario.cluster().node(id);
  node.set_power_cap_watts(cap_watts);
  node.set_current_watts(watts);
  power::PowerLedger::NodeSample sample;
  sample.watts = watts;
  sample.demand_watts = watts;
  sample.cap_watts = cap_watts;
  sample.state = node.state();
  sample.allocated = !node.allocations().empty();
  scenario.solution().ledger().post(id, sample);
}

TEST(InvariantAuditor, CleanRunReportsZeroViolations) {
  core::Scenario scenario(small_scenario(21));
  check::InvariantAuditor auditor(scenario.solution());
  scenario.run();
  EXPECT_GT(auditor.events_seen(), 0u);
  EXPECT_GT(auditor.audits(), 0u);
  EXPECT_EQ(auditor.violation_count(), 0u)
      << auditor.violations().front().invariant << ": "
      << auditor.violations().front().detail;
}

TEST(InvariantAuditor, CleanRunUnderCapsAndCyclingReportsZeroViolations) {
  // The adversarial healthy case: budgets admission, per-node cap
  // redistribution and node cycling all active at once.
  core::ScenarioConfig config = small_scenario(22);
  config.target_utilization = 0.4;
  core::Scenario scenario(config);
  const double budget_watts = 8 * 220.0;
  scenario.solution().add_policy(
      std::make_unique<epa::PowerBudgetDvfsPolicy>(budget_watts));
  scenario.solution().add_policy(
      std::make_unique<epa::DynamicPowerSharePolicy>(budget_watts));
  epa::IdleShutdownPolicy::Config idle;
  idle.idle_timeout = 5 * sim::kMinute;
  idle.min_idle_online = 1;
  scenario.solution().add_policy(
      std::make_unique<epa::IdleShutdownPolicy>(idle));

  check::InvariantAuditor auditor(scenario.solution());
  scenario.run();
  EXPECT_GT(auditor.audits(), 0u);
  EXPECT_EQ(auditor.violation_count(), 0u)
      << auditor.violations().front().invariant << ": "
      << auditor.violations().front().detail;
}

TEST(InvariantAuditor, SampledAuditsStillCoverTheRun) {
  core::Scenario scenario(small_scenario(23));
  check::AuditorConfig cfg;
  cfg.check_every_events = 64;
  check::InvariantAuditor auditor(scenario.solution(), cfg);
  scenario.run();
  EXPECT_GT(auditor.audits(), 0u);
  EXPECT_LT(auditor.audits(), auditor.events_seen());
  EXPECT_EQ(auditor.violation_count(), 0u);
}

TEST(InvariantAuditor, TripsOnCapViolation) {
  // Simulated buggy actuation: a capped node claims a draw above its
  // feasible cap. Legitimate paths always route through the power model,
  // which honours caps — so the injection bypasses it on purpose.
  core::Scenario scenario(small_scenario(24));
  check::InvariantAuditor auditor(scenario.solution());
  tamper_power(scenario, 0, /*watts=*/500.0, /*cap_watts=*/200.0);
  auditor.audit_now();
  ASSERT_GT(auditor.violation_count(), 0u);
  EXPECT_EQ(auditor.violations().front().invariant, "cap");
}

TEST(InvariantAuditor, HonoursBestEffortFloorOfInfeasibleCap) {
  // A cap below the idle floor cannot be met; the auditor must accept the
  // deepest-P-state best effort, not demand the impossible.
  core::Scenario scenario(small_scenario(25));
  check::InvariantAuditor auditor(scenario.solution());
  // Cap far below the idle floor; draw stays the modelled idle draw.
  tamper_power(scenario, 0, scenario.cluster().node(0).current_watts(),
               /*cap_watts=*/1.0);
  auditor.audit_now();
  EXPECT_EQ(auditor.violation_count(), 0u);
}

TEST(InvariantAuditor, TripsOnEnergyAttributionBreak) {
  core::Scenario scenario(small_scenario(26));
  check::InvariantAuditor auditor(scenario.solution());
  scenario.run();
  ASSERT_FALSE(scenario.solution().finished_jobs().empty());
  EXPECT_EQ(auditor.violation_count(), 0u);
  // Phantom energy appears on a job without the accountant seeing it.
  scenario.solution().finished_jobs().front()->add_energy_joules(1e6);
  auditor.audit_now();
  ASSERT_GT(auditor.violation_count(), 0u);
  EXPECT_EQ(auditor.violations().front().invariant, "energy");
}

TEST(InvariantAuditor, TripsOnIllegalLifecycleEdge) {
  core::Scenario scenario(small_scenario(27));
  check::InvariantAuditor auditor(scenario.solution());
  // Idle -> Off without passing through ShuttingDown.
  scenario.cluster().node(0).set_state(platform::NodeState::kOff);
  auditor.audit_now();
  ASSERT_GT(auditor.violation_count(), 0u);
  EXPECT_EQ(auditor.violations().front().invariant, "lifecycle");
}

TEST(InvariantAuditor, ThrowOnViolationFailsFast) {
  core::Scenario scenario(small_scenario(28));
  check::AuditorConfig cfg;
  cfg.throw_on_violation = true;
  check::InvariantAuditor auditor(scenario.solution(), cfg);
  platform::Node& node = scenario.cluster().node(0);
  node.set_power_cap_watts(200.0);
  node.set_current_watts(500.0);
  EXPECT_THROW(auditor.audit_now(), check::AuditFailure);
}

TEST(InvariantAuditor, RecordingIsBoundedButCountingIsNot) {
  core::Scenario scenario(small_scenario(29));
  check::AuditorConfig cfg;
  cfg.max_recorded = 2;
  check::InvariantAuditor auditor(scenario.solution(), cfg);
  tamper_power(scenario, 0, /*watts=*/500.0, /*cap_watts=*/200.0);
  for (int i = 0; i < 5; ++i) auditor.audit_now();
  EXPECT_EQ(auditor.violations().size(), 2u);
  EXPECT_EQ(auditor.violation_count(), 5u);
}

TEST(InvariantAuditor, WatchedCoordinatorStaysSane) {
  core::ScenarioConfig config = small_scenario(30);
  core::Scenario scenario(config);

  core::FacilityCoordinator::Config fc;
  fc.total_budget_watts = 8 * 250.0;
  core::FacilityCoordinator coordinator(scenario.simulation(), fc);
  coordinator.add_member(scenario.solution(), 8 * 110.0);

  check::InvariantAuditor auditor(scenario.solution());
  auditor.watch(coordinator);

  scenario.solution().start();
  coordinator.start();
  scenario.run();
  EXPECT_GT(coordinator.rebalances(), 0u);
  EXPECT_EQ(auditor.violation_count(), 0u)
      << auditor.violations().front().invariant << ": "
      << auditor.violations().front().detail;
}

}  // namespace
}  // namespace epajsrm
