// Warm scenario templates: named, pre-validated ScenarioConfig prototypes
// the service instantiates per request.
//
// The wire protocol is flat and small — clients name a template and
// override a handful of knobs (seed, nodes, job_count, label) rather than
// shipping a full config. Templates are validated at registration, so a
// submit can only fail validation through its overrides.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace epajsrm::svc {

/// Per-request knobs layered over a template's prototype config.
struct TemplateOverrides {
  std::optional<std::uint64_t> seed;
  std::optional<std::uint32_t> nodes;
  std::optional<std::size_t> job_count;
  /// Lax-sync partition count (execution knob; outside the result hash).
  std::optional<std::uint32_t> partitions;
  std::string label;  ///< empty = keep the template's label
};

class TemplateStore {
 public:
  /// The built-in warm set:
  ///   smoke         — 8 nodes / 12 jobs, thermal off; sized for smoke
  ///                   tests and the service bench.
  ///   study         — 16 nodes / 32 jobs, the default EASY stack.
  ///   energy-budget — 16 nodes / 16 jobs under reduce-power-cap budget
  ///                   accounting (mirrors the EDC study scenario).
  static TemplateStore with_builtins();

  /// Registers (or replaces) a template. Throws std::invalid_argument when
  /// the prototype fails core::validate or carries an external_transport.
  void put(const std::string& name, core::ScenarioConfig config);

  const core::ScenarioConfig* find(const std::string& name) const;

  /// Copies the prototype and applies overrides. Throws
  /// std::invalid_argument on an unknown template or when the overridden
  /// config fails validation.
  core::ScenarioConfig instantiate(const std::string& name,
                                   const TemplateOverrides& overrides) const;

  /// Template names in deterministic (sorted) order.
  std::vector<std::string> names() const;

  std::size_t size() const { return templates_.size(); }

 private:
  std::map<std::string, core::ScenarioConfig> templates_;
};

}  // namespace epajsrm::svc
