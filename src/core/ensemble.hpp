// EnsembleEngine: sharded seed×parameter sweeps over Scenario.
//
// The simulator is single-threaded per replication; throughput at study
// scale comes from running many replications at once. The engine takes a
// grid of parameter points, fans point×replication cells out on the
// ThreadPool, and aggregates per-point statistics in replication order —
// so the reported numbers are bit-identical no matter how many worker
// threads ran the sweep or how the shards interleaved.
//
// Seeds derive from the base seed with SplitMix64 (seed-stream scheme in
// DESIGN.md): seed(point, rep) = splitmix64(splitmix64(base + point) + rep).
// The derivation depends only on the cell's coordinates, never on shard
// order, so adding a point or raising the thread count cannot disturb any
// other cell's stream. The legacy kSequential stream (base + rep, shared
// across points) is kept for run_replicated compatibility.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace epajsrm::core {

/// How per-replication seeds derive from the base seed.
enum class SeedStream {
  /// splitmix64(splitmix64(base + point) + rep): decorrelated across both
  /// grid axes, shard-order independent. The default.
  kSplitMix,
  /// base + rep, identical across points — the historical run_replicated
  /// scheme, kept so its statistics stay reproducible.
  kSequential,
};

/// Engine-wide knobs; per-point configuration lives in the point itself.
struct EnsembleConfig {
  std::size_t replications = 8;
  std::uint64_t base_seed = 1000;
  /// Worker threads (0 → hardware concurrency).
  std::size_t threads = 0;
  SeedStream seed_stream = SeedStream::kSplitMix;
};

/// One replication's headline metrics, kept for streaming output.
struct EnsembleObservation {
  std::size_t point = 0;
  std::size_t replication = 0;
  std::uint64_t seed = 0;
  std::uint64_t sim_events = 0;
  double total_kwh = 0.0;
  double mean_utilization = 0.0;
  double median_wait_minutes = 0.0;
  double violation_fraction = 0.0;
  double jobs_completed = 0.0;
  double makespan_hours = 0.0;
  /// Resilience-plane counters (nonzero only when faults were injected).
  std::uint64_t node_crashes = 0;
  std::uint64_t jobs_requeued = 0;
};

/// Across-seed statistics for one parameter point.
struct EnsembleCell {
  std::size_t point = 0;
  ReplicatedResult stats;
  /// The seeds used, in replication order (provenance for replays).
  std::vector<std::uint64_t> seeds;
};

struct EnsembleResult {
  std::vector<EnsembleCell> cells;
  /// Every replication in (point, replication) order.
  std::vector<EnsembleObservation> observations;

  /// Writes one JSON object per observation, in deterministic
  /// (point, replication) order.
  void write_jsonl(std::ostream& out) const;
};

/// Runs a seed×parameter grid. Usage:
///
///   EnsembleEngine engine({.replications = 32, .base_seed = 7});
///   engine.add_point("cap-3MW", [](std::uint64_t seed) { ... });
///   EnsembleResult r = engine.run();
///
/// add_point's factory receives the replication's derived seed and returns
/// the ScenarioConfig to run (the engine stamps config.seed afterwards, so
/// forgetting to copy it in is harmless). The optional customize hook runs
/// on the built Scenario before run() — it executes on a worker thread and
/// must not share mutable state across replications.
class EnsembleEngine {
 public:
  using MakeConfig = std::function<ScenarioConfig(std::uint64_t seed)>;
  using Customize = std::function<void(Scenario&)>;

  explicit EnsembleEngine(EnsembleConfig config) : config_(config) {}

  /// Adds a parameter point; returns its index in the grid.
  std::size_t add_point(std::string label, MakeConfig make_config,
                        Customize customize = nullptr);

  /// Seed for (point, replication) under the configured stream. Pure.
  std::uint64_t seed_for(std::size_t point, std::size_t replication) const;

  std::size_t point_count() const { return points_.size(); }
  const EnsembleConfig& config() const { return config_; }

  /// Runs every (point, replication) cell on the pool and aggregates.
  /// May be called once per engine.
  EnsembleResult run();

 private:
  struct Point {
    std::string label;
    MakeConfig make_config;
    Customize customize;
  };

  EnsembleConfig config_;
  std::vector<Point> points_;
  bool ran_ = false;
};

}  // namespace epajsrm::core
