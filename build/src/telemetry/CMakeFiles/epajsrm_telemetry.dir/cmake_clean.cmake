file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_telemetry.dir/energy_accounting.cpp.o"
  "CMakeFiles/epajsrm_telemetry.dir/energy_accounting.cpp.o.d"
  "CMakeFiles/epajsrm_telemetry.dir/monitor.cpp.o"
  "CMakeFiles/epajsrm_telemetry.dir/monitor.cpp.o.d"
  "CMakeFiles/epajsrm_telemetry.dir/power_api.cpp.o"
  "CMakeFiles/epajsrm_telemetry.dir/power_api.cpp.o.d"
  "CMakeFiles/epajsrm_telemetry.dir/sensor.cpp.o"
  "CMakeFiles/epajsrm_telemetry.dir/sensor.cpp.o.d"
  "CMakeFiles/epajsrm_telemetry.dir/time_series.cpp.o"
  "CMakeFiles/epajsrm_telemetry.dir/time_series.cpp.o.d"
  "CMakeFiles/epajsrm_telemetry.dir/user_scoreboard.cpp.o"
  "CMakeFiles/epajsrm_telemetry.dir/user_scoreboard.cpp.o.d"
  "libepajsrm_telemetry.a"
  "libepajsrm_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
