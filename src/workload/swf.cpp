#include "workload/swf.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace epajsrm::workload {

std::vector<SwfRecord> parse_swf(std::istream& in, SwfParseStats* stats) {
  std::vector<SwfRecord> records;
  SwfParseStats local;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == ';') continue;  // comment/header

    ++local.data_lines;
    std::istringstream fields(line);
    SwfRecord r;
    if (!(fields >> r.job_number >> r.submit_time >> r.wait_time >>
          r.run_time >> r.allocated_processors >> r.avg_cpu_time >>
          r.used_memory >> r.requested_processors >> r.requested_time >>
          r.requested_memory >> r.status >> r.user_id >> r.group_id >>
          r.executable >> r.queue >> r.partition >> r.preceding_job >>
          r.think_time)) {
      // Archive traces routinely carry truncated tails and hand-edits;
      // skip and count rather than abort the whole load.
      ++local.skipped_lines;
      if (local.first_skipped_line == 0) local.first_skipped_line = line_no;
      continue;
    }
    records.push_back(r);
  }
  if (stats != nullptr) *stats = local;
  return records;
}

std::vector<SwfRecord> parse_swf_file(const std::string& path,
                                      SwfParseStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF file: " + path);
  return parse_swf(in, stats);
}

std::vector<JobSpec> to_jobs(const std::vector<SwfRecord>& records,
                             std::uint32_t cores_per_node,
                             std::uint32_t machine_nodes,
                             const AppProfile& profile) {
  if (cores_per_node == 0) {
    throw std::invalid_argument("cores_per_node must be positive");
  }
  std::vector<JobSpec> jobs;
  jobs.reserve(records.size());
  for (const SwfRecord& r : records) {
    const long long procs = r.allocated_processors > 0
                                ? r.allocated_processors
                                : r.requested_processors;
    if (procs <= 0 || r.run_time <= 0 || r.submit_time < 0) continue;

    JobSpec spec;
    spec.id = static_cast<JobId>(r.job_number > 0 ? r.job_number
                                                  : jobs.size() + 1);
    spec.user = "user" + std::to_string(std::max(0ll, r.user_id));
    spec.tag = "swf-app-" + std::to_string(std::max(0ll, r.executable));
    spec.nodes = static_cast<std::uint32_t>(std::clamp<long long>(
        (procs + cores_per_node - 1) / cores_per_node, 1, machine_nodes));
    spec.runtime_ref = r.run_time * sim::kSecond;
    spec.walltime_estimate = r.requested_time > 0
                                 ? r.requested_time * sim::kSecond
                                 : spec.runtime_ref * 2;
    spec.walltime_estimate =
        std::max(spec.walltime_estimate, spec.runtime_ref);
    spec.submit_time = r.submit_time * sim::kSecond;
    spec.profile = profile;
    jobs.push_back(std::move(spec));
  }
  std::sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    return a.submit_time < b.submit_time;
  });
  return jobs;
}

void write_swf(std::ostream& out, const std::vector<const Job*>& jobs,
               std::uint32_t cores_per_node) {
  out << "; SWF written by epajsrm\n";
  out << "; MaxProcs from cores_per_node=" << cores_per_node << "\n";
  for (const Job* job : jobs) {
    const JobSpec& s = job->spec();
    const long long submit = s.submit_time / sim::kSecond;
    const long long wait = job->start_time() >= 0
                               ? job->wait_time() / sim::kSecond
                               : -1;
    const long long run =
        (job->start_time() >= 0 && job->end_time() >= 0)
            ? (job->end_time() - job->start_time()) / sim::kSecond
            : -1;
    const long long procs =
        static_cast<long long>(s.nodes) * cores_per_node;
    const int status = job->state() == JobState::kCompleted ? 1 : 0;
    out << s.id << ' ' << submit << ' ' << wait << ' ' << run << ' ' << procs
        << " -1 -1 " << procs << ' '
        << s.walltime_estimate / sim::kSecond << " -1 " << status << ' '
        << 0 << " -1 " << 0 << " -1 -1 -1 -1\n";
  }
}

}  // namespace epajsrm::workload
