file(REMOVE_RECURSE
  "CMakeFiles/bench_intersystem_cap.dir/bench_intersystem_cap.cpp.o"
  "CMakeFiles/bench_intersystem_cap.dir/bench_intersystem_cap.cpp.o.d"
  "bench_intersystem_cap"
  "bench_intersystem_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intersystem_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
