file(REMOVE_RECURSE
  "CMakeFiles/bench_demand_response.dir/bench_demand_response.cpp.o"
  "CMakeFiles/bench_demand_response.dir/bench_demand_response.cpp.o.d"
  "bench_demand_response"
  "bench_demand_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_demand_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
