#include "platform/facility.hpp"

#include <gtest/gtest.h>

namespace epajsrm::platform {
namespace {

TEST(AmbientModel, PeaksAtPeakHour) {
  const AmbientModel ambient(20.0, 5.0, 15.0);
  EXPECT_NEAR(ambient.temperature_c(sim::from_hours(15.0)), 25.0, 1e-9);
  EXPECT_NEAR(ambient.temperature_c(sim::from_hours(3.0)), 15.0, 1e-9);
}

TEST(AmbientModel, DailyPeriodicity) {
  const AmbientModel ambient(18.0, 6.0);
  const double t1 = ambient.temperature_c(sim::from_hours(10.0));
  const double t2 = ambient.temperature_c(sim::from_hours(34.0));
  EXPECT_NEAR(t1, t2, 1e-9);
}

TEST(AmbientModel, MeanIsMean) {
  const AmbientModel ambient(22.0, 4.0);
  double sum = 0.0;
  for (int h = 0; h < 24; ++h) {
    sum += ambient.temperature_c(sim::from_hours(h + 0.5));
  }
  EXPECT_NEAR(sum / 24.0, 22.0, 0.1);
}

TEST(Facility, PueGrowsWithHeat) {
  Facility::Config cfg;
  cfg.base_pue = 1.2;
  cfg.pue_slope_per_c = 0.02;
  cfg.free_cooling_threshold_c = 16.0;
  Facility cold(cfg, AmbientModel(10.0, 0.0));
  Facility hot(cfg, AmbientModel(30.0, 0.0));
  EXPECT_DOUBLE_EQ(cold.pue(0), 1.2);
  EXPECT_NEAR(hot.pue(0), 1.2 + 0.02 * 14.0, 1e-9);
}

TEST(Facility, FacilityWattsApplyPue) {
  Facility f({.site_power_capacity_watts = 0, .cooling_capacity_watts = 0,
              .base_pue = 1.5, .pue_slope_per_c = 0.0,
              .free_cooling_threshold_c = 16.0},
             AmbientModel(10.0, 0.0));
  EXPECT_DOUBLE_EQ(f.facility_watts(1000.0, 0), 1500.0);
}

TEST(Facility, HeadroomUnlimitedWhenUncapacitated) {
  Facility f({});
  EXPECT_GT(f.it_watts_headroom(0), 1e12);
}

TEST(Facility, HeadroomDividesByPue) {
  Facility f({.site_power_capacity_watts = 3000.0,
              .cooling_capacity_watts = 0, .base_pue = 1.5,
              .pue_slope_per_c = 0.0, .free_cooling_threshold_c = 16.0},
             AmbientModel(10.0, 0.0));
  EXPECT_NEAR(f.it_watts_headroom(0), 2000.0, 1e-9);
}

TEST(Facility, PduRegistryAssignsIds) {
  Facility f({});
  const PduId a = f.add_pdu({.id = 99, .name = "a", .capacity_watts = 100,
                             .under_maintenance = false, .nodes = {}});
  const PduId b = f.add_pdu({.id = 99, .name = "b", .capacity_watts = 200,
                             .under_maintenance = false, .nodes = {}});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(f.pdu(1).name, "b");
  EXPECT_THROW(f.pdu(2), std::out_of_range);
}

TEST(Facility, CoolingRegistryAssignsIds) {
  Facility f({});
  f.add_cooling_loop({.id = 0, .name = "loop", .heat_capacity_watts = 1e4,
                      .supply_temp_c = 17.0, .under_maintenance = false,
                      .nodes = {}});
  EXPECT_EQ(f.cooling_loops().size(), 1u);
  EXPECT_DOUBLE_EQ(f.cooling_loop(0).supply_temp_c, 17.0);
  EXPECT_THROW(f.cooling_loop(1), std::out_of_range);
}

}  // namespace
}  // namespace epajsrm::platform
