#include "power/energy_source.hpp"

#include <gtest/gtest.h>

namespace epajsrm::power {
namespace {

SupplyPortfolio grid_plus_turbine() {
  SupplyPortfolio p;
  p.add_source({.name = "grid", .capacity_watts = 10000.0,
                .tariff = Tariff::flat(0.10), .startup_time = 0,
                .dispatchable = false});
  p.add_source({.name = "turbine", .capacity_watts = 5000.0,
                .tariff = Tariff::flat(0.25),
                .startup_time = 10 * sim::kMinute, .dispatchable = true});
  return p;
}

TEST(Supply, CheapSourceServesFirst) {
  SupplyPortfolio p = grid_plus_turbine();
  const auto d = p.dispatch(8000.0, 0);
  EXPECT_DOUBLE_EQ(d.watts[0], 8000.0);
  EXPECT_DOUBLE_EQ(d.watts[1], 0.0);
  EXPECT_DOUBLE_EQ(d.marginal_price, 0.10);
  EXPECT_DOUBLE_EQ(d.unserved_watts, 0.0);
}

TEST(Supply, OverflowSpillsToTurbine) {
  SupplyPortfolio p = grid_plus_turbine();
  const auto d = p.dispatch(12000.0, 0);
  EXPECT_DOUBLE_EQ(d.watts[0], 10000.0);
  EXPECT_DOUBLE_EQ(d.watts[1], 2000.0);
  EXPECT_DOUBLE_EQ(d.marginal_price, 0.25);
}

TEST(Supply, UnservedWhenEverythingFull) {
  SupplyPortfolio p = grid_plus_turbine();
  const auto d = p.dispatch(20000.0, 0);
  EXPECT_DOUBLE_EQ(d.unserved_watts, 5000.0);
}

TEST(Supply, CostPerHourSumsSources) {
  SupplyPortfolio p = grid_plus_turbine();
  const auto d = p.dispatch(12000.0, 0);
  // 10 kW at 0.10 + 2 kW at 0.25 = 1.0 + 0.5 per hour.
  EXPECT_NEAR(p.cost_per_hour(d, 0), 1.5, 1e-9);
}

TEST(Supply, DemandResponseCapsGrid) {
  SupplyPortfolio p = grid_plus_turbine();
  p.add_event({.start = sim::kHour, .duration = sim::kHour,
               .limit_watts = 4000.0, .notice = 0, .incentive_per_kwh = 0});
  const auto during = p.dispatch(8000.0, sim::kHour + sim::kMinute);
  EXPECT_DOUBLE_EQ(during.watts[0], 4000.0);  // grid held at DR limit
  EXPECT_DOUBLE_EQ(during.watts[1], 4000.0);  // turbine carries the rest
  const auto after = p.dispatch(8000.0, 3 * sim::kHour);
  EXPECT_DOUBLE_EQ(after.watts[0], 8000.0);
}

TEST(Supply, GridLimitReflectsDrWindow) {
  SupplyPortfolio p = grid_plus_turbine();
  p.add_event({.start = sim::kHour, .duration = sim::kHour,
               .limit_watts = 4000.0, .notice = 0, .incentive_per_kwh = 0});
  EXPECT_DOUBLE_EQ(p.grid_limit_watts(0), 10000.0);
  EXPECT_DOUBLE_EQ(p.grid_limit_watts(sim::kHour), 4000.0);
  EXPECT_DOUBLE_EQ(p.grid_limit_watts(2 * sim::kHour), 10000.0);
}

TEST(Supply, EventsSortAndQuery) {
  SupplyPortfolio p = grid_plus_turbine();
  p.add_event({.start = 5 * sim::kHour, .duration = sim::kHour,
               .limit_watts = 1.0, .notice = 0, .incentive_per_kwh = 0});
  p.add_event({.start = 2 * sim::kHour, .duration = sim::kHour,
               .limit_watts = 2.0, .notice = 0, .incentive_per_kwh = 0});
  EXPECT_DOUBLE_EQ(p.next_event(0)->limit_watts, 2.0);
  EXPECT_DOUBLE_EQ(p.next_event(3 * sim::kHour)->limit_watts, 1.0);
  EXPECT_EQ(p.next_event(7 * sim::kHour), nullptr);
  EXPECT_EQ(p.active_event(0), nullptr);
  EXPECT_NE(p.active_event(2 * sim::kHour + 1), nullptr);
}

TEST(Supply, EmptyPortfolioReportsUnserved) {
  SupplyPortfolio p;
  const auto d = p.dispatch(1000.0, 0);
  EXPECT_DOUBLE_EQ(d.unserved_watts, 1000.0);
  EXPECT_DOUBLE_EQ(p.grid_limit_watts(0), 0.0);
}

TEST(Supply, TimeOfUseChangesMeritOrder) {
  SupplyPortfolio p;
  p.add_source({.name = "grid", .capacity_watts = 10000.0,
                .tariff = Tariff::peak_offpeak(0.40, 0.08, 8.0, 20.0),
                .startup_time = 0, .dispatchable = false});
  p.add_source({.name = "turbine", .capacity_watts = 5000.0,
                .tariff = Tariff::flat(0.25), .startup_time = 0,
                .dispatchable = true});
  // Off-peak: grid first. Peak: turbine becomes the cheap source.
  const auto night = p.dispatch(4000.0, sim::from_hours(3.0));
  EXPECT_DOUBLE_EQ(night.watts[0], 4000.0);
  const auto noon = p.dispatch(4000.0, sim::from_hours(12.0));
  EXPECT_DOUBLE_EQ(noon.watts[1], 4000.0);
}

}  // namespace
}  // namespace epajsrm::power
