# Empty dependencies file for epajsrm_telemetry.
# This may be replaced when dependencies are built.
