// EPA policy framework: the pluggable "energy and power aware" brain that
// Figure 1 wires between monitoring and control.
//
// A policy participates at three points:
//   * plan_start — admission and shaping of every job launch (power
//     budgeting, DVFS selection, moldable-shape choice, caps);
//   * on_tick    — the periodic control loop (dynamic power sharing, node
//     cycling, thermal reaction, demand-response handling);
//   * job/queue hooks — ordering and lifecycle notifications.
//
// Policies act on the system exclusively through PolicyHost, which the
// core solution implements. The host funnels every power-relevant mutation
// through energy-accounting checkpoints and job-speed refreshes, so
// policies cannot corrupt the energy integrals.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "power/energy_source.hpp"
#include "power/ledger.hpp"
#include "power/node_power_model.hpp"
#include "rm/resource_manager.hpp"
#include "sim/simulation.hpp"
#include "telemetry/monitor.hpp"
#include "workload/job.hpp"

namespace epajsrm::obs {
class Observability;
}

namespace epajsrm::epa {

/// A job-launch plan a policy may veto or reshape.
struct StartPlan {
  workload::Job* job = nullptr;
  /// Nodes to allocate (mutable: moldable/overprovision policies change it).
  std::uint32_t nodes = 0;
  /// Runtime scale of the chosen shape (1.0 = base shape).
  double runtime_scale = 1.0;
  /// Initial P-state for the job's nodes (0 = fastest).
  std::uint32_t pstate = 0;
  /// Per-node power cap to set at launch; 0 = leave as is.
  double node_cap_watts = 0.0;
  /// Predictor's per-node draw at reference frequency for this job.
  double predicted_node_watts = 0.0;
  /// True when the plan is a feasibility probe, not an actual launch;
  /// policies must not update statistics on dry runs.
  bool dry_run = false;

  /// Predicted draw of the whole allocation at the planned P-state:
  /// per node, the idle floor stays and the dynamic remainder scales with
  /// ratio(pstate)^alpha. `idle_watts` is the node idle draw (clusters are
  /// homogeneous; pass any node's config value).
  double predicted_watts(double idle_watts,
                         const power::NodePowerModel& model,
                         const platform::PstateTable& pstates) const;
};

/// Services the core solution offers to policies. All mutations are
/// checkpointed and propagate to running-job progress automatically.
class PolicyHost {
 public:
  virtual ~PolicyHost() = default;

  virtual sim::Simulation& simulation() = 0;
  virtual platform::Cluster& cluster() = 0;
  virtual rm::ResourceManager& resource_manager() = 0;
  virtual const power::NodePowerModel& power_model() const = 0;
  /// The incremental power view (DESIGN.md §10): policies read cluster/
  /// rack/PDU totals, demand, worst-case and state censuses here in O(1)
  /// instead of sweeping cluster().nodes().
  virtual const power::PowerLedger& ledger() const = 0;
  virtual telemetry::MonitoringService& monitor() = 0;

  /// The supply portfolio (tariffs, sources, DR calendar); may be null
  /// when the scenario models none.
  virtual power::SupplyPortfolio* supply() = 0;

  virtual const std::vector<workload::Job*>& running_jobs() const = 0;
  virtual const std::vector<workload::Job*>& pending_jobs() const = 0;

  /// True while the host's partition-local phase is running on worker
  /// threads (lax-sync partitioned core, DESIGN.md §15). Policy
  /// actuation — group caps, emergency response, anything funnelled
  /// through the host — is pinned to coupling-epoch boundaries, where
  /// this is false. Hosts without a partition domain never enter the
  /// phase.
  virtual bool in_partition_local_phase() const { return false; }

  /// Predicted per-node draw (reference frequency) for a job.
  virtual double predict_node_watts(const workload::JobSpec& spec) = 0;

  /// Sum of node caps / peaks — the guaranteed worst-case draw.
  virtual double worst_case_it_watts() const = 0;

  // --- control actions (checkpointed) --------------------------------------

  virtual void set_node_cap(platform::NodeId node, double watts) = 0;
  virtual void set_group_cap(std::span<const platform::NodeId> nodes,
                             double watts) = 0;
  virtual void set_system_cap(double watts) = 0;
  virtual void set_node_pstate(platform::NodeId node,
                               std::uint32_t pstate) = 0;
  /// Sets the P-state of every node a running job occupies.
  virtual void set_job_pstate(workload::JobId job, std::uint32_t pstate) = 0;
  virtual bool power_off_node(platform::NodeId node) = 0;
  virtual bool power_on_node(platform::NodeId node) = 0;

  /// Terminates a running job (RIKEN's automated emergency response).
  virtual void kill_job(workload::JobId job, const std::string& reason) = 0;

  /// Terminates a running job and puts a fresh copy (new id, zero
  /// progress) back at the end of the queue — kill-with-requeue, the
  /// production-friendly emergency variant. Returns the requeued id, or
  /// kNoJob when the job was not running.
  virtual workload::JobId requeue_job(workload::JobId job,
                                      const std::string& reason) = 0;

  /// Requests a scheduling pass at the current time (after the current
  /// event cascade).
  virtual void request_schedule() = 0;

  /// Tells the core the effective power budget moved (set_budget_watts
  /// delegations, BudgetSource window crossings, EDC set_power_cap). The
  /// core emits a kPowerBudgetChanged decision point and fires a prompt
  /// scheduling pass — budget tightening no longer waits for the next
  /// periodic tick. Default no-op keeps bare test hosts working.
  virtual void notify_power_budget_changed(double watts) { (void)watts; }

  /// The run's observability plane (trace + metrics), or null when
  /// observability is disabled — policies must treat null as "record
  /// nothing".
  virtual obs::Observability* observability() { return nullptr; }
};

/// Base class for EPA policies. Default implementations are no-ops so a
/// policy overrides only the hooks it needs.
class EpaPolicy {
 public:
  virtual ~EpaPolicy() = default;
  virtual std::string name() const = 0;

  /// Called once when installed into a solution; schedule future events or
  /// set initial caps here.
  virtual void install(PolicyHost& host) { host_ = &host; }

  /// Launch admission/shaping. Must not mutate system state (it also runs
  /// in dry-run feasibility checks); reshape `plan` or return false to
  /// veto. Policies are consulted in installation order, each seeing the
  /// previous ones' reshaping.
  virtual bool plan_start(StartPlan& plan) {
    (void)plan;
    return true;
  }

  /// Periodic control-loop hook (monitoring period).
  virtual void on_tick(sim::SimTime now) { (void)now; }

  /// Queue-ordering hook, applied after priority sorting; policies may
  /// reorder/rotate pending jobs (cost-aware ordering).
  virtual void reorder_queue(std::vector<workload::Job*>& pending,
                             sim::SimTime now) {
    (void)pending;
    (void)now;
  }

  virtual void on_job_start(const workload::Job& job) { (void)job; }
  virtual void on_job_end(const workload::Job& job) { (void)job; }

  /// The IT power budget this policy enforces (0 = none). Metrics judge
  /// compliance against the tightest installed budget.
  virtual double power_budget_watts(sim::SimTime now) const {
    (void)now;
    return 0.0;
  }

  /// Earliest time this policy would admit `job` (>= now). Time-gating
  /// policies (capability windows, cost ordering) override this so
  /// backfilling schedulers place the job's reservation where it can
  /// actually start instead of blocking the machine "now".
  virtual sim::SimTime earliest_start_hint(const workload::Job& job,
                                           sim::SimTime now) const {
    (void)job;
    return now;
  }

 protected:
  PolicyHost* host_ = nullptr;
};

}  // namespace epajsrm::epa
