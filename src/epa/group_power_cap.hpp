// Group power caps — JCAHPC's production capability ("ability to set power
// caps for groups of nodes via the resource manager", a Fujitsu
// proprietary product on Oakforest-PACS). Groups here follow the
// facility's PDU membership; each group's cap defaults to a fraction of
// its PDU breaker capacity.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "epa/budget_source.hpp"
#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Per-PDU (node-group) power capping set via the resource-manager path.
///
/// Three construction modes:
///   * explicit per-group caps (the legacy vector constructor);
///   * uniform_fraction — every group capped at a fraction of its peak;
///   * from_source — a time-varying BudgetSource whose watts are divided
///     across groups proportionally to their peak sums, re-actuated on
///     every source movement (tariff windows, EDC set_power_cap).
class GroupPowerCapPolicy final : public EpaPolicy {
 public:
  /// `group_cap_watts[p]` caps the nodes of PDU p; groups beyond the
  /// vector (or entries <= 0) stay uncapped. Per-node cap = group cap /
  /// group size.
  explicit GroupPowerCapPolicy(std::vector<double> group_cap_watts)
      : group_caps_(std::move(group_cap_watts)) {}

  /// Uniform variant: every PDU group capped at `fraction` of the sum of
  /// its nodes' model peaks.
  static GroupPowerCapPolicy uniform_fraction(double fraction) {
    GroupPowerCapPolicy p({});
    p.uniform_fraction_ = fraction;
    return p;
  }

  /// Time-varying variant: divides source->watts_at(now) across PDU
  /// groups proportionally to their peak sums and re-caps whenever the
  /// source moves.
  static GroupPowerCapPolicy from_source(
      std::shared_ptr<BudgetSource> source) {
    GroupPowerCapPolicy p({});
    p.source_.emplace(std::move(source));
    return p;
  }

  std::string name() const override { return "group-power-cap"; }

  void install(PolicyHost& host) override;
  void on_tick(sim::SimTime now) override;

  /// Source-driven: the source's value at `now`. Legacy modes: the sum of
  /// installed group caps (0 before install — prefer from_source, which
  /// answers uniformly at any time).
  double power_budget_watts(sim::SimTime now) const override {
    if (source_.has_value()) return source_->watts_at(now);
    return budget_;
  }

  /// Re-caps one group at runtime (the manual admin knob). Deprecated for
  /// source-driven policies — mutate the BudgetSource instead (see
  /// budget_source.hpp migration notes).
  void set_group_cap(PolicyHost& host, platform::PduId group, double watts);

 private:
  void apply_source_caps(PolicyHost& host, double budget_watts);

  std::vector<double> group_caps_;
  double uniform_fraction_ = 0.0;
  std::optional<BudgetTracker> source_;
  double applied_source_watts_ = -1.0;
  double budget_ = 0.0;
};

}  // namespace epajsrm::epa
