file(REMOVE_RECURSE
  "CMakeFiles/bench_ms3_thermal.dir/bench_ms3_thermal.cpp.o"
  "CMakeFiles/bench_ms3_thermal.dir/bench_ms3_thermal.cpp.o.d"
  "bench_ms3_thermal"
  "bench_ms3_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ms3_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
