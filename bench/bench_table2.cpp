// Experiment T2 — reproduction of Table II ("Part 2 of the summary of the
// answers from each center"): STFC, Trinity (LANL+Sandia), CINECA, JCAHPC.
#include <cstdio>

#include "center_bench.hpp"
#include "sim/thread_pool.hpp"

int main() {
  using namespace epajsrm;
  const std::vector<std::string> centers = {"STFC", "Trinity", "CINECA",
                                            "JCAHPC"};

  std::printf("%s\n",
              bench::activity_matrix(
                  centers,
                  "TABLE II (reproduced): summary of the answers, part 2")
                  .c_str());

  bench::BenchSummary summary("bench_table2");
  std::vector<bench::CenterRow> rows(centers.size());
  sim::ThreadPool::parallel_for(centers.size(), [&](std::size_t i) {
    rows[i] = bench::run_center(centers[i]);
  });
  for (const bench::CenterRow& row : rows) {
    summary.add_run(row.baseline);
    summary.add_run(row.epa);
  }

  std::printf("%s\n",
              bench::quantitative_table(
                  rows,
                  "TABLE II (simulation): production EPA techniques vs. "
                  "baseline on each center's scaled replica")
                  .c_str());

  // Cross-site commonality counts (the analysis the paper defers to the
  // follow-up publication) for the full nine-center set.
  metrics::AsciiTable commonality(
      {"Technique", "Research", "Tech. development", "Production"});
  commonality.set_title(
      "Cross-site technique commonality (all nine centers)");
  using survey::Maturity;
  using survey::Technique;
  for (Technique t :
       {Technique::kPowerCapping, Technique::kDynamicPowerSharing,
        Technique::kDvfsScheduling, Technique::kNodeShutdown,
        Technique::kEnergyReporting, Technique::kPowerPrediction,
        Technique::kEmergencyResponse, Technique::kSourceSelection,
        Technique::kLayoutAware, Technique::kThermalAware,
        Technique::kMonitoring}) {
    commonality.add_row(
        {survey::to_string(t),
         std::to_string(survey::centers_with(t, Maturity::kResearch)),
         std::to_string(survey::centers_with(t, Maturity::kTechDevelopment)),
         std::to_string(survey::centers_with(t, Maturity::kProduction))});
  }
  std::printf("%s\n", commonality.render().c_str());
  return 0;
}
