#include "predict/ridge.hpp"

#include <algorithm>
#include <cmath>

namespace epajsrm::predict {

std::array<double, RidgePowerPredictor::kDim> RidgePowerPredictor::features(
    const workload::JobSpec& spec) {
  return {
      1.0,
      std::log(static_cast<double>(std::max(1u, spec.nodes))),
      std::log(std::max(0.01, sim::to_hours(spec.walltime_estimate))),
      spec.profile.freq_sensitive_fraction,
      spec.profile.comm_fraction,
      spec.profile.power_intensity,
  };
}

void RidgePowerPredictor::observe(const workload::JobSpec& spec,
                                  double actual_node_watts) {
  const auto x = features(spec);
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j < kDim; ++j) {
      xtx_[i * kDim + j] += x[i] * x[j];
    }
    xty_[i] += x[i] * actual_node_watts;
  }
  ++samples_;
  dirty_ = true;
}

bool RidgePowerPredictor::try_solve(double lambda) {
  // Cholesky factorisation of (XᵀX + lambda·I); kDim is tiny so this is
  // essentially free.
  std::array<double, kDim * kDim> a = xtx_;
  for (std::size_t i = 0; i < kDim; ++i) a[i * kDim + i] += lambda;

  std::array<double, kDim * kDim> l{};
  for (std::size_t i = 0; i < kDim; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * kDim + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l[i * kDim + k] * l[j * kDim + k];
      }
      if (i == j) {
        // A collapsed pivot means the normal matrix is (numerically)
        // singular at this penalty — report instead of dividing by zero.
        if (sum <= 0.0) return false;
        l[i * kDim + i] = std::sqrt(sum);
      } else {
        l[i * kDim + j] = sum / l[j * kDim + j];
      }
    }
  }

  // Forward substitution L z = Xᵀy, then back substitution Lᵀ w = z.
  std::array<double, kDim> z{};
  for (std::size_t i = 0; i < kDim; ++i) {
    double sum = xty_[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * kDim + k] * z[k];
    z[i] = sum / l[i * kDim + i];
  }
  for (std::size_t ii = kDim; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = ii + 1; k < kDim; ++k) {
      sum -= l[k * kDim + ii] * weights_[k];
    }
    weights_[ii] = sum / l[ii * kDim + ii];
  }
  return true;
}

void RidgePowerPredictor::solve() {
  // Degenerate data (duplicated samples, a constant feature column, or a
  // caller-supplied lambda of 0) can make XᵀX + lambda·I numerically
  // singular; boost the penalty instead of crashing, and fall back to the
  // prior if even a heavy penalty cannot stabilise the factorisation.
  double lambda = std::max(0.0, lambda_);
  for (int boost = 0; boost < 6; ++boost) {
    if (try_solve(lambda)) {
      degenerate_ = false;
      dirty_ = false;
      return;
    }
    lambda = lambda <= 0.0 ? 1e-6 : lambda * 1e3;
  }
  degenerate_ = true;
  dirty_ = false;
}

std::array<double, RidgePowerPredictor::kDim> RidgePowerPredictor::weights() {
  if (dirty_) solve();
  return weights_;
}

double RidgePowerPredictor::predict_node_watts(const workload::JobSpec& spec) {
  if (samples_ < min_samples_) return prior_;
  if (dirty_) solve();
  if (degenerate_) return prior_;
  const auto x = features(spec);
  double y = 0.0;
  for (std::size_t i = 0; i < kDim; ++i) y += weights_[i] * x[i];
  // Physical floor: a node never draws negative or absurdly low power.
  return std::max(1.0, y);
}

}  // namespace epajsrm::predict
