# Empty dependencies file for epajsrm_sched.
# This may be replaced when dependencies are built.
