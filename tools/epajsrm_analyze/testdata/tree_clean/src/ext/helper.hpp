#pragma once

namespace fixture::ext {
inline int helper() { return 7; }
}  // namespace fixture::ext
