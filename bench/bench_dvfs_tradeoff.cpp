// Experiment S6-DVFS — the DVFS line of Section VI (Freeh [21], Auweter
// [4], Etinski [18][19], Hsu&Feng [23]).
//
// Part 1: the energy-time trade-off curve per P-state for a compute-bound
// and a memory-bound application (single job on a fixed allocation) —
// the classic "slowing memory-bound codes is nearly free" result that
// motivates LRZ's energy-to-solution scheduling.
// Part 2: the LRZ policy end-to-end — energy-to-solution goal vs. best
// performance goal on a mixed workload.
#include <cstdio>

#include "center_bench.hpp"
#include "core/scenario.hpp"
#include "epa/energy_to_solution.hpp"
#include "metrics/table.hpp"

namespace {

using namespace epajsrm;

struct CurvePoint {
  double time_h;
  double energy_kwh;
  std::uint64_t sim_events = 0;
};

CurvePoint run_single_job(double beta, std::uint32_t pstate) {
  sim::Simulation sim;
  platform::NodeConfig node;
  node.cores = 32;
  node.idle_watts = 100.0;
  node.dynamic_watts = 200.0;
  platform::Cluster cluster = platform::ClusterBuilder()
                                  .node_count(4)
                                  .node_config(node)
                                  .pstates(platform::PstateTable::linear(
                                      2.6, 1.2, 8))
                                  .build();
  core::SolutionConfig config;
  config.enable_thermal = false;
  config.enforce_walltime = false;
  core::EpaJsrmSolution solution(sim, cluster, config);

  workload::JobSpec spec;
  spec.id = 1;
  spec.nodes = 4;
  spec.runtime_ref = 2 * sim::kHour;
  spec.walltime_estimate = 24 * sim::kHour;
  spec.profile.freq_sensitive_fraction = beta;
  spec.profile.comm_fraction = 0.0;
  spec.profile.power_intensity = 1.0;
  solution.submit(spec);
  solution.start();
  sim.run_until(sim::kSecond);
  solution.set_job_pstate(1, pstate);
  sim.run_until(48 * sim::kHour);

  workload::Job* job = solution.find_job(1);
  CurvePoint point;
  point.time_h = sim::to_hours(job->end_time() - job->start_time());
  point.energy_kwh = job->energy_joules() / 3.6e6;
  point.sim_events = sim.events_processed();
  return point;
}

core::RunResult run_lrz(epa::EnergyToSolutionPolicy::Goal goal) {
  core::ScenarioConfig config;
  config.label = goal == epa::EnergyToSolutionPolicy::Goal::kEnergyToSolution
                     ? "energy-to-solution"
                     : "best-performance";
  config.nodes = 32;
  config.job_count = 120;
  config.horizon = 30 * sim::kDay;
  config.seed = 5;
  config.mix = core::WorkloadMix::kStandard;
  config.solution.enable_thermal = false;
  core::Scenario scenario(config);
  scenario.solution().add_policy(
      std::make_unique<epa::EnergyToSolutionPolicy>(goal, 1.5));
  return scenario.run();
}

}  // namespace

int main() {
  epajsrm::bench::BenchSummary summary("bench_dvfs_tradeoff");
  const platform::PstateTable pstates =
      platform::PstateTable::linear(2.6, 1.2, 8);

  metrics::AsciiTable curve({"P-state", "GHz", "compute-bound t (h)",
                             "compute-bound E (kWh)", "memory-bound t (h)",
                             "memory-bound E (kWh)"});
  curve.set_title(
      "S6-DVFS part 1: energy-time trade-off per P-state (4-node job, "
      "2 h at reference frequency; beta = 0.95 vs 0.15)");
  for (std::uint32_t p = 0; p < pstates.size(); ++p) {
    const CurvePoint compute = run_single_job(0.95, p);
    const CurvePoint memory = run_single_job(0.15, p);
    summary.add_events(compute.sim_events + memory.sim_events);
    curve.add_row({std::to_string(p),
                   metrics::format_double(pstates.freq_ghz(p), 2),
                   metrics::format_double(compute.time_h, 2),
                   metrics::format_double(compute.energy_kwh, 3),
                   metrics::format_double(memory.time_h, 2),
                   metrics::format_double(memory.energy_kwh, 3)});
  }
  std::printf("%s\n", curve.render().c_str());

  const core::RunResult perf =
      run_lrz(epa::EnergyToSolutionPolicy::Goal::kBestPerformance);
  const core::RunResult energy =
      run_lrz(epa::EnergyToSolutionPolicy::Goal::kEnergyToSolution);
  summary.add_run(perf);
  summary.add_run(energy);

  metrics::AsciiTable lrz({"admin goal", "energy", "p50 wait (min)",
                           "p50 runtime (min)", "makespan (h)",
                           "jobs done"});
  lrz.set_title(
      "S6-DVFS part 2: LRZ LoadLeveler-style characterise-then-optimise "
      "(same workload, admin goal switched)");
  for (const core::RunResult* r : {&perf, &energy}) {
    lrz.add_row({r->report.label, metrics::format_kwh(r->total_it_kwh_exact),
                 metrics::format_double(r->report.wait_minutes.median, 1),
                 metrics::format_double(r->report.job_runtime_minutes.median, 1),
                 metrics::format_double(sim::to_hours(r->report.makespan), 1),
                 std::to_string(r->report.jobs_completed)});
  }
  std::printf("%s\n", lrz.render().c_str());

  const double saved = (perf.total_it_kwh_exact - energy.total_it_kwh_exact) /
                       perf.total_it_kwh_exact;
  std::printf("energy-to-solution goal saved %.1f %% energy vs. best "
              "performance\n",
              saved * 100.0);
  return 0;
}
