// Electricity tariffs: time-of-use pricing plus peak-demand charges.
//
// The survey's motivation section ties EPA JSRM to operational cost and to
// the ESP relationship studied in Bates et al. [6] / Patki et al. [36];
// job-order-only energy schedulers [4][7][28][29] optimise against exactly
// this structure.
#pragma once

#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace epajsrm::power {

/// Time-of-use electricity tariff over a 24-hour cycle.
class Tariff {
 public:
  /// One pricing band: [begin_hour, end_hour) at `price` currency per kWh.
  struct Band {
    double begin_hour;
    double end_hour;  ///< exclusive; must be > begin_hour, <= 24
    double price_per_kwh;
  };

  /// Flat price all day.
  static Tariff flat(double price_per_kwh);

  /// Classic peak/off-peak split: `peak_price` in [peak_begin, peak_end),
  /// `offpeak_price` elsewhere.
  static Tariff peak_offpeak(double peak_price, double offpeak_price,
                             double peak_begin = 8.0, double peak_end = 20.0);

  /// Builds from explicit bands, which must tile [0, 24) without overlap.
  explicit Tariff(std::vector<Band> bands);

  /// Price per kWh at simulation time t.
  double price_at(sim::SimTime t) const;

  /// Cost of drawing a constant `watts` across [begin, end).
  double cost(double watts, sim::SimTime begin, sim::SimTime end) const;

  /// Cheapest hour-of-day start for a constant-power run of `duration`
  /// beginning within the next 24 h after `earliest` (granularity 1 h).
  sim::SimTime cheapest_start(double watts, sim::SimTime earliest,
                              sim::SimTime duration) const;

  const std::vector<Band>& bands() const { return bands_; }

  /// Peak-demand charge per kW of the billing period's maximum demand;
  /// applied by metrics, not by cost().
  double demand_charge_per_kw = 0.0;

 private:
  std::vector<Band> bands_;
};

}  // namespace epajsrm::power
