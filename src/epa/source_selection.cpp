#include "epa/source_selection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace epajsrm::epa {

double SourceSelectionPolicy::deliverable_it_watts(sim::SimTime t) const {
  // host_ is a pointer member: the pointee stays mutable in const methods,
  // so the host services are reachable without casting.
  power::SupplyPortfolio* supply = host_->supply();
  if (supply == nullptr) return 0.0;

  double total = supply->grid_limit_watts(t);
  for (const power::EnergySource& s : supply->sources()) {
    if (!s.dispatchable) continue;
    if (s.capacity_watts <= 0.0) return 0.0;  // unlimited: no budget needed
    if (total != std::numeric_limits<double>::max()) {
      total += s.capacity_watts;
    }
  }
  if (total == std::numeric_limits<double>::max()) return 0.0;
  return total / host_->cluster().facility().pue(t);
}

double SourceSelectionPolicy::power_budget_watts(sim::SimTime now) const {
  if (host_ == nullptr) return 0.0;
  return deliverable_it_watts(now);
}

bool SourceSelectionPolicy::plan_start(StartPlan& plan) {
  if (host_ == nullptr || plan.job == nullptr) return true;
  const sim::SimTime now = host_->simulation().now();
  const double budget = deliverable_it_watts(now);
  if (budget <= 0.0) return true;  // no portfolio constraint

  const platform::Cluster& cluster = host_->cluster();
  const double idle = cluster.node(0).config().idle_watts;
  const double dyn =
      std::max(0.0, plan.predicted_node_watts - idle) * plan.nodes;
  const double ratio = cluster.pstates().ratio(plan.pstate);
  const double delta =
      dyn * std::pow(ratio, host_->power_model().alpha());
  return host_->ledger().it_power_watts() + delta <= budget;
}

void SourceSelectionPolicy::on_tick(sim::SimTime now) {
  if (host_ == nullptr) return;
  power::SupplyPortfolio* supply = host_->supply();
  if (supply == nullptr) return;

  const double it_watts = host_->ledger().it_power_watts();
  const double facility_watts =
      host_->cluster().facility().facility_watts(it_watts, now);
  const power::SupplyPortfolio::Dispatch dispatch =
      supply->dispatch(facility_watts, now);

  if (last_tick_ >= 0 && now > last_tick_) {
    const double dt = sim::to_seconds(now - last_tick_);
    cost_ += supply->cost_per_hour(dispatch, now) * (dt / 3600.0);
    for (std::size_t i = 0; i < supply->sources().size(); ++i) {
      if (supply->sources()[i].dispatchable) {
        dispatchable_joules_ += dispatch.watts[i] * dt;
      }
    }
    unserved_joules_ += dispatch.unserved_watts * dt;
  }
  last_tick_ = now;
}

}  // namespace epajsrm::epa
