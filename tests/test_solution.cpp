// Integration tests of the full EpaJsrmSolution stack.
#include "core/solution.hpp"

#include <gtest/gtest.h>

#include "sched/fcfs.hpp"

namespace epajsrm::core {
namespace {

platform::Cluster test_cluster(std::uint32_t nodes = 8) {
  platform::NodeConfig cfg;
  cfg.cores = 16;
  cfg.idle_watts = 100.0;
  cfg.dynamic_watts = 200.0;
  return platform::ClusterBuilder()
      .node_count(nodes)
      .node_config(cfg)
      .pstates(platform::PstateTable::linear(2.0, 1.0, 5))
      .build();
}

workload::JobSpec job_spec(workload::JobId id, std::uint32_t nodes,
                           sim::SimTime runtime,
                           sim::SimTime submit = 0) {
  workload::JobSpec spec;
  spec.id = id;
  spec.nodes = nodes;
  spec.runtime_ref = runtime;
  spec.walltime_estimate = runtime * 2;
  spec.submit_time = submit;
  spec.profile.freq_sensitive_fraction = 0.5;
  spec.profile.comm_fraction = 0.0;
  return spec;
}

TEST(Solution, SingleJobRunsToCompletion) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  EpaJsrmSolution solution(sim, cluster);
  solution.submit(job_spec(1, 2, 30 * sim::kMinute));
  solution.run_until(4 * sim::kHour);

  workload::Job* job = solution.find_job(1);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_EQ(job->end_time() - job->start_time(), 30 * sim::kMinute);
  EXPECT_GT(job->energy_joules(), 0.0);
  EXPECT_TRUE(solution.workload_drained());
}

TEST(Solution, ReportCountsAndEnergyConsistent) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  EpaJsrmSolution solution(sim, cluster);
  for (workload::JobId id = 1; id <= 5; ++id) {
    solution.submit(job_spec(id, 2, 20 * sim::kMinute,
                             (id - 1) * 5 * sim::kMinute));
  }
  solution.run_until(6 * sim::kHour);
  const RunResult result = solution.finalize();
  EXPECT_EQ(result.report.jobs_submitted, 5u);
  EXPECT_EQ(result.report.jobs_completed, 5u);
  EXPECT_EQ(result.report.jobs_killed, 0u);
  // Sampled energy tracks the exact accountant within a few percent.
  EXPECT_NEAR(result.report.total_it_kwh, result.total_it_kwh_exact,
              0.05 * result.total_it_kwh_exact + 0.05);
}

TEST(Solution, JobEnergyMatchesHandComputation) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  SolutionConfig config;
  config.enable_thermal = false;
  EpaJsrmSolution solution(sim, cluster, config);
  // Whole-node job, intensity 1, full frequency: node draws 300 W.
  workload::JobSpec spec = job_spec(1, 1, sim::kHour);
  spec.profile.power_intensity = 1.0;
  solution.submit(spec);
  solution.run_until(3 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kCompleted);
  EXPECT_NEAR(job->energy_joules(), 300.0 * 3600.0, 1.0);
}

TEST(Solution, WalltimeLimitKillsOverrunningJob) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  EpaJsrmSolution solution(sim, cluster);
  workload::JobSpec spec = job_spec(1, 1, 2 * sim::kHour);
  spec.walltime_estimate = sim::kHour;  // will overrun
  solution.submit(spec);
  solution.run_until(5 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  EXPECT_EQ(job->state(), workload::JobState::kKilled);
  EXPECT_EQ(job->end_time() - job->start_time(), sim::kHour);
  const RunResult result = solution.finalize();
  EXPECT_EQ(result.kills_by_reason.at("walltime-limit"), 1u);
}

TEST(Solution, QueuedJobsWaitForResources) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  EpaJsrmSolution solution(sim, cluster);
  solution.submit(job_spec(1, 4, sim::kHour));           // fills machine
  solution.submit(job_spec(2, 4, sim::kHour, sim::kMinute));
  solution.run_until(6 * sim::kHour);
  workload::Job* second = solution.find_job(2);
  ASSERT_EQ(second->state(), workload::JobState::kCompleted);
  EXPECT_GE(second->start_time(), sim::kHour);  // had to wait for job 1
}

TEST(Solution, PriorityOrdersQueue) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(4);
  EpaJsrmSolution solution(sim, cluster);
  solution.submit(job_spec(1, 4, sim::kHour));  // running
  workload::JobSpec low = job_spec(2, 4, sim::kHour, sim::kMinute);
  workload::JobSpec high = job_spec(3, 4, sim::kHour, 2 * sim::kMinute);
  high.priority = 2;
  solution.submit(low);
  solution.submit(high);
  solution.run_until(8 * sim::kHour);
  EXPECT_LT(solution.find_job(3)->start_time(),
            solution.find_job(2)->start_time());
}

TEST(Solution, KillJobOnQueuedCancels) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(2);
  EpaJsrmSolution solution(sim, cluster);
  solution.submit(job_spec(1, 2, sim::kHour));
  solution.submit(job_spec(2, 2, sim::kHour, sim::kMinute));
  solution.start();
  sim.run_until(10 * sim::kMinute);
  solution.kill_job(2, "operator");
  EXPECT_EQ(solution.find_job(2)->state(), workload::JobState::kCancelled);
  sim.run_until(2 * sim::kHour);
  EXPECT_EQ(solution.find_job(1)->state(), workload::JobState::kCompleted);
}

TEST(Solution, CapSlowsRunningJob) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(2);
  SolutionConfig config;
  config.enable_thermal = false;
  EpaJsrmSolution solution(sim, cluster, config);
  solution.submit(job_spec(1, 1, sim::kHour));  // beta 0.5
  solution.start();
  sim.run_until(10 * sim::kMinute);
  ASSERT_EQ(solution.find_job(1)->state(), workload::JobState::kRunning);
  // Clamp the whole machine hard: dynamic power must shrink ~8x.
  solution.set_system_cap(2 * 125.0);
  sim.run_until(10 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  EXPECT_EQ(job->state(), workload::JobState::kCompleted);
  // Ran 10 min at full speed; the rest slower -> total > 1 h.
  EXPECT_GT(job->end_time() - job->start_time(), sim::kHour);
}

TEST(Solution, PstateChangeStretchesRuntimePredictably) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster(2);
  SolutionConfig config;
  config.enable_thermal = false;
  config.enforce_walltime = false;
  EpaJsrmSolution solution(sim, cluster, config);
  workload::JobSpec spec = job_spec(1, 1, sim::kHour);
  spec.profile.freq_sensitive_fraction = 1.0;  // fully compute bound
  solution.submit(spec);
  solution.start();
  sim.run_until(sim::kSecond);
  solution.set_job_pstate(1, 4);  // ratio 0.5 -> speed 0.5
  sim.run_until(10 * sim::kHour);
  workload::Job* job = solution.find_job(1);
  ASSERT_EQ(job->state(), workload::JobState::kCompleted);
  // ~1 s at full speed then 2x stretch: just under 2 h total.
  EXPECT_NEAR(sim::to_seconds(job->end_time() - job->start_time()),
              2.0 * 3600.0, 5.0);
}

TEST(Solution, FcfsConvoyVsBackfillThroughput) {
  const auto run_with =
      [](std::unique_ptr<sched::SchedulerPolicy> sched) -> sim::SimTime {
    sim::Simulation sim;
    platform::Cluster cluster = test_cluster(8);
    EpaJsrmSolution solution(sim, cluster);
    solution.set_scheduler(std::move(sched));
    // A 6-node job leaves a 2-node hole; the wide job behind it blocks
    // FCFS, while EASY slips the short narrow jobs into the hole.
    solution.submit(job_spec(1, 6, sim::kHour));
    solution.submit(job_spec(2, 8, 2 * sim::kHour, sim::kMinute));
    for (workload::JobId id = 3; id <= 6; ++id) {
      solution.submit(job_spec(id, 1, 20 * sim::kMinute, 2 * sim::kMinute));
    }
    solution.run_until(24 * sim::kHour);
    sim::SimTime total_wait = 0;
    for (workload::JobId id = 3; id <= 6; ++id) {
      total_wait += solution.find_job(id)->wait_time();
    }
    return total_wait;
  };
  const sim::SimTime fcfs_wait =
      run_with(std::make_unique<sched::FcfsScheduler>());
  const sim::SimTime easy_wait =
      run_with(std::make_unique<sched::EasyBackfillScheduler>());
  EXPECT_LT(easy_wait, fcfs_wait);
}

TEST(Solution, DeterministicAcrossRuns) {
  const auto run_once = [] {
    sim::Simulation sim;
    platform::Cluster cluster = test_cluster(8);
    EpaJsrmSolution solution(sim, cluster);
    for (workload::JobId id = 1; id <= 10; ++id) {
      solution.submit(job_spec(id, 1 + id % 4, 20 * sim::kMinute,
                               id * 3 * sim::kMinute));
    }
    solution.run_until(12 * sim::kHour);
    return solution.finalize();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_DOUBLE_EQ(a.total_it_kwh_exact, b.total_it_kwh_exact);
  EXPECT_EQ(a.report.jobs_completed, b.report.jobs_completed);
  EXPECT_DOUBLE_EQ(a.report.wait_minutes.mean, b.report.wait_minutes.mean);
}

TEST(Solution, EnergyReportsProducedPerFinishedJob) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  EpaJsrmSolution solution(sim, cluster);
  for (workload::JobId id = 1; id <= 3; ++id) {
    solution.submit(job_spec(id, 1, 10 * sim::kMinute));
  }
  solution.run_until(4 * sim::kHour);
  const RunResult result = solution.finalize();
  EXPECT_EQ(result.job_reports.size(), 3u);
  for (const auto& report : result.job_reports) {
    EXPECT_GT(report.energy_kwh, 0.0);
    EXPECT_GE(report.grade, 'A');
    EXPECT_LE(report.grade, 'E');
  }
}

TEST(Solution, RejectsInvalidSubmissions) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  EpaJsrmSolution solution(sim, cluster);
  workload::JobSpec bad = job_spec(0, 1, sim::kHour);
  EXPECT_THROW(solution.submit(bad), std::invalid_argument);
  solution.submit(job_spec(1, 1, sim::kHour));
  EXPECT_THROW(solution.submit(job_spec(1, 1, sim::kHour)),
               std::invalid_argument);
}

TEST(Solution, PowerPredictorLearnsFromCompletions) {
  sim::Simulation sim;
  platform::Cluster cluster = test_cluster();
  EpaJsrmSolution solution(sim, cluster);
  workload::JobSpec spec = job_spec(1, 1, 30 * sim::kMinute);
  spec.tag = "learn-me";
  solution.submit(spec);
  solution.run_until(2 * sim::kHour);
  // After one completion the tag-history predictor should be close to the
  // actual ~300 W draw, far from the 300 W peak prior... the prior IS the
  // peak here; check it learned a plausible sub-peak value.
  workload::JobSpec probe = job_spec(99, 1, sim::kHour);
  probe.tag = "learn-me";
  const double predicted = solution.power_predictor().predict_node_watts(probe);
  EXPECT_GT(predicted, 100.0);
  EXPECT_LE(predicted, 301.0);
}

}  // namespace
}  // namespace epajsrm::core
