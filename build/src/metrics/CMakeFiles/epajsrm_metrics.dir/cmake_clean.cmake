file(REMOVE_RECURSE
  "CMakeFiles/epajsrm_metrics.dir/collector.cpp.o"
  "CMakeFiles/epajsrm_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/epajsrm_metrics.dir/stats.cpp.o"
  "CMakeFiles/epajsrm_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/epajsrm_metrics.dir/table.cpp.o"
  "CMakeFiles/epajsrm_metrics.dir/table.cpp.o.d"
  "libepajsrm_metrics.a"
  "libepajsrm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epajsrm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
