// Backfilling schedulers.
//
// EASY backfilling (Mu'alem & Feitelson [35]): the queue head gets a
// reservation at the earliest feasible time; any later job may jump ahead
// if starting it now cannot delay that reservation. Conservative
// backfilling gives *every* queued job a reservation and only allows jumps
// that delay none of them. Both plan with user walltime estimates (or the
// runtime predictor, when the solution installs one) via
// SchedulingContext::planned_end.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace epajsrm::sched {

/// EASY (aggressive) backfilling.
class EasyBackfillScheduler final : public SchedulerPolicy {
 public:
  /// `max_backfill_depth` bounds how many queued jobs are examined as
  /// backfill candidates per pass (0 = unlimited).
  explicit EasyBackfillScheduler(std::uint32_t max_backfill_depth = 0)
      : max_depth_(max_backfill_depth) {}

  void schedule(SchedulingContext& ctx) override;
  std::string name() const override { return "easy-backfill"; }

 private:
  std::uint32_t max_depth_;
};

/// Conservative backfilling: reservations for every queued job.
class ConservativeBackfillScheduler final : public SchedulerPolicy {
 public:
  void schedule(SchedulingContext& ctx) override;
  std::string name() const override { return "conservative-backfill"; }
};

}  // namespace epajsrm::sched
