// Facility-cap enforcement by booting/shutting nodes — Tokyo Tech's
// production mechanism (NEC-implemented, cooperating with PBS Pro):
// "resource manager dynamically boots or shuts down nodes to stay under
// power cap (summer only, enforced over ~30 min window). Interacts with
// job scheduler to avoid killing jobs."
//
// The controller watches the rolling mean of machine power over the
// enforcement window. Above the cap it drains capacity by powering off
// idle nodes (never killing jobs); comfortably below, it restores nodes.
#pragma once

#include "epa/policy.hpp"

namespace epajsrm::epa {

/// Rolling-window power cap enforced through node on/off cycling.
class NodeCyclingCapPolicy final : public EpaPolicy {
 public:
  struct Config {
    double cap_watts = 0.0;
    /// Rolling enforcement window (Tokyo Tech: ~30 minutes).
    sim::SimTime window = 30 * sim::kMinute;
    /// Hysteresis: power nodes back on only when the rolling mean is below
    /// cap × (1 − restore_margin).
    double restore_margin = 0.10;
    /// Seasonal gate: enforce only when the outside temperature is above
    /// this (Tokyo Tech caps in summer); set very low to always enforce.
    double enforce_above_ambient_c = -100.0;
  };

  explicit NodeCyclingCapPolicy(Config config) : config_(config) {}

  std::string name() const override { return "node-cycling-cap"; }

  void on_tick(sim::SimTime now) override;

  double power_budget_watts(sim::SimTime now) const override;

  std::uint64_t cycled_off() const { return cycled_off_; }
  std::uint64_t cycled_on() const { return cycled_on_; }

 private:
  bool enforcing(sim::SimTime now) const;

  Config config_;
  std::uint64_t cycled_off_ = 0;
  std::uint64_t cycled_on_ = 0;
};

}  // namespace epajsrm::epa
