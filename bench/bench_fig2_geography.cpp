// Experiment F2 — Figure 2: "Map of the geographic location of the
// participating centers."
//
// Prints the ASCII world map of the nine sites, the regional grouping the
// paper discusses (Asia / Europe / US), and the pairwise great-circle
// distance matrix.
#include <cstdio>

#include "center_bench.hpp"
#include "metrics/table.hpp"
#include "survey/centers.hpp"

int main() {
  using namespace epajsrm;
  // No simulation runs here — the summary still reports the wall time.
  bench::BenchSummary summary("bench_fig2_geography");

  std::printf("FIGURE 2 (reproduced)\n%s\n",
              survey::ascii_map().c_str());

  // Regional grouping.
  metrics::AsciiTable regions({"Region", "Centers"});
  regions.set_title("Regional grouping (Section III)");
  for (survey::Region region :
       {survey::Region::kAsia, survey::Region::kEurope,
        survey::Region::kMiddleEast, survey::Region::kNorthAmerica}) {
    std::string members;
    for (const auto& c : survey::all_centers()) {
      if (c.region == region) {
        if (!members.empty()) members += ", ";
        members += c.short_name;
      }
    }
    regions.add_row({survey::to_string(region), members});
  }
  std::printf("%s\n", regions.render().c_str());

  // Distance matrix (rounded to 100 km).
  const auto& centers = survey::all_centers();
  std::vector<std::string> headers{"km"};
  for (const auto& c : centers) headers.push_back(c.short_name);
  metrics::AsciiTable distances(headers);
  distances.set_title("Pairwise great-circle distances");
  for (const auto& a : centers) {
    std::vector<std::string> row{a.short_name};
    for (const auto& b : centers) {
      row.push_back(std::to_string(
          static_cast<long>(survey::distance_km(a, b) / 100.0 + 0.5) * 100));
    }
    distances.add_row(row);
  }
  std::printf("%s\n", distances.render().c_str());

  // Machine inventory (the Q2 hardware context per site).
  metrics::AsciiTable machines({"Center", "Machine", "Nodes", "Peak MW",
                                "Site MW", "JSRM stack"});
  machines.set_title("Surveyed systems (Q2 summary)");
  for (const auto& c : centers) {
    machines.add_row({c.short_name, c.machine_name,
                      std::to_string(c.machine_nodes),
                      metrics::format_double(c.peak_system_mw, 1),
                      metrics::format_double(c.site_power_capacity_mw, 1),
                      c.jsrm_software});
  }
  std::printf("%s\n", machines.render().c_str());
  return 0;
}
