#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hpp"

namespace epajsrm::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:        return "node-crash";
    case FaultKind::kNodeHang:         return "node-hang";
    case FaultKind::kPduTrip:          return "pdu-trip";
    case FaultKind::kSensorDropout:    return "sensor-dropout";
    case FaultKind::kSensorStuck:      return "sensor-stuck";
    case FaultKind::kSensorNoise:      return "sensor-noise";
    case FaultKind::kThermalExcursion: return "thermal-excursion";
    case FaultKind::kCapmcFailure:     return "capmc-failure";
    case FaultKind::kCapmcLatency:     return "capmc-latency";
  }
  return "?";
}

namespace {

// Parses the spec's time field. Plain numbers are absolute seconds; an
// optional s/m/h/d unit suffix scales the value; a leading '+' makes it
// an offset from the previous event's (absolute) time, so storm scripts
// read as a cadence: "+90m sensor-stuck ...". Throws std::invalid_argument
// without the line prefix — the caller adds the line number.
sim::SimTime parse_time_token(const std::string& token,
                              sim::SimTime previous) {
  std::string body = token;
  const bool relative = !body.empty() && body[0] == '+';
  if (relative) body.erase(0, 1);

  double unit_s = 1.0;
  if (!body.empty()) {
    switch (body.back()) {
      case 's': unit_s = 1.0;       body.pop_back(); break;
      case 'm': unit_s = 60.0;      body.pop_back(); break;
      case 'h': unit_s = 3600.0;    body.pop_back(); break;
      case 'd': unit_s = 86400.0;   body.pop_back(); break;
      default: break;
    }
  }

  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(body, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;  // fall through to the shared error
  }
  if (consumed != body.size() || body.empty()) {
    throw std::invalid_argument("bad time '" + token +
                                "' (want <seconds> or [+]<n>[s|m|h|d])");
  }
  if (value < 0.0) {
    throw std::invalid_argument(relative ? "offset must be >= 0"
                                         : "time must be >= 0");
  }
  const sim::SimTime t = sim::from_seconds(value * unit_s);
  return relative ? previous + t : t;
}

// Parses the period of an `every` line: a plain positive duration with an
// optional unit suffix. '+' is a chaining operator on event times, not a
// duration, so it is rejected here.
sim::SimTime parse_period_token(const std::string& token) {
  if (!token.empty() && token[0] == '+') {
    throw std::invalid_argument("period '" + token +
                                "' must be a plain <n>[s|m|h|d] duration");
  }
  const sim::SimTime period = parse_time_token(token, 0);
  if (period <= 0) {
    throw std::invalid_argument("period '" + token + "' must be > 0");
  }
  return period;
}

std::int64_t parse_target_token(const std::string& token) {
  std::size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(token, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;
  }
  if (consumed != token.size()) {
    throw std::invalid_argument("bad target '" + token +
                                "' (want a node/pdu id, or -1 for all)");
  }
  return value;
}

double parse_double_token(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;
  }
  if (consumed != token.size()) {
    throw std::invalid_argument(std::string("bad ") + what + " '" + token +
                                "'");
  }
  return value;
}

}  // namespace

FaultKind parse_fault_kind(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kNodeCrash, FaultKind::kNodeHang, FaultKind::kPduTrip,
        FaultKind::kSensorDropout, FaultKind::kSensorStuck,
        FaultKind::kSensorNoise, FaultKind::kThermalExcursion,
        FaultKind::kCapmcFailure, FaultKind::kCapmcLatency}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown fault kind: " + name);
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  if (event.at < 0) throw std::invalid_argument("fault time must be >= 0");
  if (event.duration < 0) {
    throw std::invalid_argument("fault duration must be >= 0");
  }
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::crash_node(sim::SimTime at, std::int64_t node,
                                 sim::SimTime repair_after) {
  return add({at, FaultKind::kNodeCrash, node, 0.0, repair_after});
}

FaultPlan& FaultPlan::hang_node(sim::SimTime at, std::int64_t node,
                                sim::SimTime repair_after) {
  return add({at, FaultKind::kNodeHang, node, 0.0, repair_after});
}

FaultPlan& FaultPlan::trip_pdu(sim::SimTime at, std::int64_t pdu,
                               sim::SimTime repair_after) {
  return add({at, FaultKind::kPduTrip, pdu, 0.0, repair_after});
}

FaultPlan& FaultPlan::sensor_dropout(sim::SimTime at, sim::SimTime duration,
                                     double drop_probability) {
  return add({at, FaultKind::kSensorDropout, -1, drop_probability, duration});
}

FaultPlan& FaultPlan::sensor_stuck(sim::SimTime at, sim::SimTime duration) {
  return add({at, FaultKind::kSensorStuck, -1, 0.0, duration});
}

FaultPlan& FaultPlan::sensor_noise(sim::SimTime at, sim::SimTime duration,
                                   double sigma) {
  return add({at, FaultKind::kSensorNoise, -1, sigma, duration});
}

FaultPlan& FaultPlan::thermal_excursion(sim::SimTime at, std::int64_t node,
                                        double delta_c) {
  return add({at, FaultKind::kThermalExcursion, node, delta_c, 0});
}

FaultPlan& FaultPlan::capmc_failure(sim::SimTime at, sim::SimTime duration,
                                    double failure_probability) {
  return add({at, FaultKind::kCapmcFailure, -1, failure_probability,
              duration});
}

FaultPlan& FaultPlan::capmc_latency(sim::SimTime at, sim::SimTime duration,
                                    double added_us) {
  return add({at, FaultKind::kCapmcLatency, -1, added_us, duration});
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  return *this;
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

FaultPlan FaultPlan::parse(std::istream& in, sim::SimTime repeat_horizon) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  sim::SimTime previous = 0;  // base for '+' relative offsets
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#' || line[first] == ';') continue;

    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(token);

    const auto fail = [line_no](const std::string& what) {
      return std::invalid_argument("fault spec line " +
                                   std::to_string(line_no) + ": " + what);
    };

    std::size_t i = 0;
    bool repeating = false;
    sim::SimTime period = 0;
    if (tokens[0] == "every") {
      repeating = true;
      if (tokens.size() < 2) throw fail("'every' needs a period");
      try {
        period = parse_period_token(tokens[1]);
      } catch (const std::invalid_argument& e) {
        throw fail(e.what());
      }
      i = 2;
    }
    if (tokens.size() - i < 3) throw fail("need <time> <kind> <target>");

    FaultEvent event;
    try {
      event.kind = parse_fault_kind(tokens[i + 1]);
      event.at = parse_time_token(tokens[i], previous);
      event.target = parse_target_token(tokens[i + 2]);
    } catch (const std::invalid_argument& e) {
      throw fail(e.what());
    }
    i += 3;

    try {
      if (i < tokens.size() && tokens[i] != "until") {
        event.magnitude = parse_double_token(tokens[i], "magnitude");
        ++i;
      }
      if (i < tokens.size() && tokens[i] != "until") {
        const double duration_s =
            parse_double_token(tokens[i], "duration");
        if (duration_s < 0.0) throw fail("duration must be >= 0");
        event.duration = sim::from_seconds(duration_s);
        ++i;
      }
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      throw what.rfind("fault spec line", 0) == 0 ? std::invalid_argument(e)
                                                  : fail(what);
    }

    bool has_until = false;
    sim::SimTime until_t = 0;
    if (i < tokens.size() && tokens[i] == "until") {
      if (!repeating) {
        throw fail("'until' needs an 'every' repeat on the same line");
      }
      if (i + 1 >= tokens.size()) throw fail("'until' needs a time");
      try {
        // '+' chains from the first occurrence, so "until +4h" bounds the
        // cadence relative to its own start.
        until_t = parse_time_token(tokens[i + 1], event.at);
      } catch (const std::invalid_argument& e) {
        throw fail(e.what());
      }
      has_until = true;
      i += 2;
    }
    if (i != tokens.size()) {
      throw fail("unexpected trailing token '" + tokens[i] + "'");
    }

    if (repeating) {
      if (!has_until) until_t = event.at + repeat_horizon;
      if (until_t < event.at) {
        throw fail("'until' precedes the first occurrence");
      }
      for (sim::SimTime t = event.at; t <= until_t; t += period) {
        FaultEvent occurrence = event;
        occurrence.at = t;
        plan.add(occurrence);
      }
    } else {
      plan.add(event);
    }
    // The next '+' offset chains from the first occurrence, so a cadence
    // line reads as "starting here, every N" without moving the cursor to
    // its far-future last repeat.
    previous = event.at;
  }
  return plan;
}

FaultPlan FaultPlan::parse_string(const std::string& text,
                                  sim::SimTime repeat_horizon) {
  std::istringstream in(text);
  return parse(in, repeat_horizon);
}

FaultPlan FaultPlan::parse_file(const std::string& path,
                                sim::SimTime repeat_horizon) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open fault spec: " + path);
  return parse(in, repeat_horizon);
}

FaultPlan FailureModel::generate(std::uint32_t nodes, sim::SimTime horizon,
                                 std::uint64_t seed) const {
  if (mtbf_hours <= 0.0) {
    throw std::invalid_argument("mtbf_hours must be positive");
  }
  if (weibull_shape <= 0.0) {
    throw std::invalid_argument("weibull_shape must be positive");
  }
  FaultPlan plan;
  const double mtbf_s = mtbf_hours * 3600.0;
  // Weibull scale such that the mean stays the MTBF:
  // mean = scale * Gamma(1 + 1/k).
  const double scale_s =
      mtbf_s / std::tgamma(1.0 + 1.0 / weibull_shape);
  for (std::uint32_t node = 0; node < nodes; ++node) {
    // Per-node stream, decorrelated from neighbours and stable under
    // changes to any other node's draw count.
    sim::Rng rng(sim::splitmix64(seed + 0x9e37u) ^
                 sim::splitmix64(node + 1));
    sim::SimTime t = 0;
    while (true) {
      const double gap_s =
          distribution == Distribution::kExponential
              ? rng.exponential(mtbf_s)
              : std::weibull_distribution<double>(weibull_shape,
                                                  scale_s)(rng.engine());
      t += sim::from_seconds(std::max(1.0, gap_s));
      // A node under repair cannot fail again before it is back.
      if (t > horizon) break;
      plan.crash_node(t, node, repair_time);
      t += repair_time;
    }
  }
  return plan;
}

}  // namespace epajsrm::fault
