#include "sim/time.hpp"

#include <cstdio>

namespace epajsrm::sim {

std::string format_hms(SimTime t) {
  const bool negative = t < 0;
  if (negative) t = -t;
  const SimTime total_seconds = t / kSecond;
  const SimTime days = total_seconds / (24 * 3600);
  const SimTime hours = (total_seconds / 3600) % 24;
  const SimTime minutes = (total_seconds / 60) % 60;
  const SimTime seconds = total_seconds % 60;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lld+%02lld:%02lld:%02lld",
                  negative ? "-" : "", static_cast<long long>(days),
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld",
                  negative ? "-" : "", static_cast<long long>(hours),
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds));
  }
  return buf;
}

}  // namespace epajsrm::sim
