// Fixture: the partition-merge hazard DESIGN.md §15 legislates against —
// folding per-partition shards by iterating an unordered container
// instead of fixed partition-index order. The stream below makes the
// effects order-sensitive. Must trip unordered-iter.
#include <cstdint>
#include <iostream>
#include <unordered_map>

namespace fixture {

struct Shard {
  std::uint64_t accepted = 0;
  double max_celsius = 0.0;
};

class EpochMerge {
 public:
  void merge() const {
    for (const auto& [partition, shard] : shards_) {
      std::cout << partition << " " << shard.accepted << " "
                << shard.max_celsius << "\n";
    }
  }

 private:
  std::unordered_map<std::uint32_t, Shard> shards_;
};

}  // namespace fixture
