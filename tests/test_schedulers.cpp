// Scheduler policy tests against a mock SchedulingContext: a machine of N
// whole-node slots with controllable power admission, no simulator needed.
#include "sched/backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

namespace epajsrm::sched {
namespace {

class MockContext final : public SchedulingContext {
 public:
  explicit MockContext(std::uint32_t nodes)
      : cluster_(platform::ClusterBuilder().node_count(nodes).build()),
        free_(nodes) {}

  workload::Job* add_pending(workload::JobId id, std::uint32_t nodes,
                             sim::SimTime walltime) {
    workload::JobSpec spec;
    spec.id = id;
    spec.nodes = nodes;
    spec.walltime_estimate = walltime;
    spec.runtime_ref = walltime;
    jobs_.push_back(std::make_unique<workload::Job>(spec));
    pending_.push_back(jobs_.back().get());
    return jobs_.back().get();
  }

  void add_running(workload::JobId id, std::uint32_t nodes,
                   sim::SimTime ends_in) {
    workload::Job* job = add_pending(id, nodes, ends_in);
    pending_.pop_back();
    std::vector<platform::NodeId> ids(nodes);
    job->set_allocated_nodes(ids);
    job->set_start_time(0);
    job->set_state(workload::JobState::kRunning);
    planned_ends_[id] = now_ + ends_in;
    running_.push_back(job);
    free_ -= nodes;
  }

  // --- SchedulingContext ---------------------------------------------------
  sim::SimTime now() const override { return now_; }
  const std::vector<workload::Job*>& pending() const override {
    return pending_;
  }
  const std::vector<workload::Job*>& running() const override {
    return running_;
  }
  const platform::Cluster& cluster() const override { return cluster_; }
  std::uint32_t allocatable_nodes() const override { return free_; }
  bool power_feasible(workload::Job&, std::uint32_t) override {
    return power_ok_;
  }
  bool try_start(workload::Job& job,
                 const workload::MoldableConfig* shape) override {
    const std::uint32_t nodes =
        shape != nullptr ? shape->nodes : job.spec().nodes;
    if (!power_ok_) return false;
    if (earliest_admission(job) > now_) return false;  // policy gate
    if (nodes > free_) return false;
    free_ -= nodes;
    started_.push_back(job.id());
    pending_.erase(std::find(pending_.begin(), pending_.end(), &job));
    job.set_state(workload::JobState::kRunning);
    running_.push_back(&job);
    planned_ends_[job.id()] = now_ + job.spec().walltime_estimate;
    std::vector<platform::NodeId> ids(nodes);
    job.set_allocated_nodes(ids);
    return true;
  }
  sim::SimTime planned_end(const workload::Job& job) const override {
    return planned_ends_.at(job.id());
  }
  sim::SimTime earliest_admission(const workload::Job& job) const override {
    const auto it = admission_hints_.find(job.id());
    return it == admission_hints_.end() ? now_ : it->second;
  }
  std::map<workload::JobId, sim::SimTime> admission_hints_;

  platform::Cluster cluster_;
  std::vector<std::unique_ptr<workload::Job>> jobs_;
  std::vector<workload::Job*> pending_;
  std::vector<workload::Job*> running_;
  std::map<workload::JobId, sim::SimTime> planned_ends_;
  std::vector<workload::JobId> started_;
  std::uint32_t free_;
  sim::SimTime now_ = 0;
  bool power_ok_ = true;
};

TEST(Fcfs, StartsInOrderUntilBlocked) {
  MockContext ctx(10);
  ctx.add_pending(1, 4, sim::kHour);
  ctx.add_pending(2, 4, sim::kHour);
  ctx.add_pending(3, 4, sim::kHour);  // does not fit (only 2 left)
  ctx.add_pending(4, 1, sim::kHour);  // would fit but FCFS blocks
  FcfsScheduler fcfs;
  fcfs.schedule(ctx);
  EXPECT_EQ(ctx.started_, (std::vector<workload::JobId>{1, 2}));
}

TEST(Fcfs, PowerVetoBlocksHead) {
  MockContext ctx(10);
  ctx.power_ok_ = false;
  ctx.add_pending(1, 1, sim::kHour);
  FcfsScheduler fcfs;
  fcfs.schedule(ctx);
  EXPECT_TRUE(ctx.started_.empty());
}

TEST(EasyBackfill, FillsHolesWithoutDelayingHead) {
  MockContext ctx(10);
  // 8 nodes busy for 1 h; head job wants all 10 -> reservation at t=1h.
  ctx.add_running(100, 8, sim::kHour);
  ctx.add_pending(1, 10, 2 * sim::kHour);
  // Short small job: fits the 2 free nodes and finishes before 1 h.
  ctx.add_pending(2, 2, 30 * sim::kMinute);
  // Long small job: would still hold nodes at t=1h -> must NOT start.
  ctx.add_pending(3, 2, 3 * sim::kHour);
  EasyBackfillScheduler easy;
  easy.schedule(ctx);
  EXPECT_EQ(ctx.started_, (std::vector<workload::JobId>{2}));
}

TEST(EasyBackfill, BackfillOnSpareNodesOutsideReservation) {
  MockContext ctx(10);
  ctx.add_running(100, 4, sim::kHour);
  // Head needs 8 -> can start at t=1h using 8 of 10; 2 nodes stay spare.
  ctx.add_pending(1, 8, 4 * sim::kHour);
  // Long 2-node job fits the spare nodes even across the reservation.
  ctx.add_pending(2, 2, 10 * sim::kHour);
  EasyBackfillScheduler easy;
  easy.schedule(ctx);
  EXPECT_EQ(ctx.started_, (std::vector<workload::JobId>{2}));
}

TEST(EasyBackfill, StartsEverythingWhenRoomy) {
  MockContext ctx(16);
  ctx.add_pending(1, 4, sim::kHour);
  ctx.add_pending(2, 4, sim::kHour);
  ctx.add_pending(3, 8, sim::kHour);
  EasyBackfillScheduler easy;
  easy.schedule(ctx);
  EXPECT_EQ(ctx.started_.size(), 3u);
}

TEST(EasyBackfill, DepthLimitsCandidates) {
  MockContext ctx(10);
  ctx.add_running(100, 9, sim::kHour);
  ctx.add_pending(1, 10, sim::kHour);       // blocked head
  ctx.add_pending(2, 1, 10 * sim::kHour);   // candidate 1 (too long:
                                            // delays head? 1 node free, head
                                            // needs all 10 at t=1h -> yes)
  ctx.add_pending(3, 1, 30 * sim::kMinute); // candidate 2 (fits)
  EasyBackfillScheduler limited(/*max_backfill_depth=*/1);
  limited.schedule(ctx);
  EXPECT_TRUE(ctx.started_.empty());  // only candidate 2 fit, never examined

  EasyBackfillScheduler unlimited;
  unlimited.schedule(ctx);
  EXPECT_EQ(ctx.started_, (std::vector<workload::JobId>{3}));
}

TEST(EasyBackfill, AdmissionHintMovesReservationOutOfTheWay) {
  MockContext ctx(10);
  // Head job is resource-feasible now but gated until t=2h by a policy
  // (e.g. a capability window). Its reservation must sit at 2h, leaving
  // the machine free for backfill until then.
  workload::Job* head = ctx.add_pending(1, 10, sim::kHour);
  ctx.admission_hints_[1] = 2 * sim::kHour;
  ctx.power_ok_ = true;
  // try_start must also refuse the gated head (the mock veto applies to
  // everyone, so instead make the head too big... simpler: flip power_ok_
  // per job is not supported; emulate by hint + a first pass where the
  // head fails for resources).
  ctx.add_running(100, 1, 3 * sim::kHour);  // 9 free: head (10) blocked
  workload::Job* filler = ctx.add_pending(2, 9, 90 * sim::kMinute);
  EasyBackfillScheduler easy;
  easy.schedule(ctx);
  // Without the hint the head would reserve at t=3h (when job 100 ends)
  // and the 90-min filler would fit anyway; with the hint at 2h the
  // filler (ending 1.5h) must still fit. Either way it starts — the
  // stronger check: a filler that ends after the hinted start must NOT.
  EXPECT_EQ(ctx.started_, (std::vector<workload::JobId>{2}));
  (void)head;
  (void)filler;
}

TEST(EasyBackfill, HintedHeadDoesNotBlockShortBackfill) {
  MockContext ctx(10);
  ctx.add_running(100, 10, 30 * sim::kMinute);  // machine full for 30 min
  workload::Job* head = ctx.add_pending(1, 10, sim::kHour);
  ctx.admission_hints_[1] = 6 * sim::kHour;  // gated far out
  // 2-hour filler: overlaps the un-hinted reservation (which would start
  // at 30 min) but fits comfortably before the hinted one at 6 h.
  ctx.add_pending(2, 10, 2 * sim::kHour);
  EasyBackfillScheduler easy;
  easy.schedule(ctx);
  EXPECT_TRUE(ctx.started_.empty());  // nothing fits *now* (machine full)

  // Free the machine and rerun the pass: the filler may start because the
  // head's reservation sits at 6 h.
  ctx.free_ = 10;
  ctx.running_.clear();
  EasyBackfillScheduler again;
  again.schedule(ctx);
  EXPECT_EQ(ctx.started_, (std::vector<workload::JobId>{2}));
  EXPECT_EQ(head->state(), workload::JobState::kQueued);
}

TEST(Conservative, EveryJobKeepsItsReservation) {
  MockContext ctx(10);
  ctx.add_running(100, 8, sim::kHour);
  ctx.add_pending(1, 10, 2 * sim::kHour);   // reservation at 1h
  ctx.add_pending(2, 2, 30 * sim::kMinute); // fits before the reservation
  // Job 3 wants 4 nodes; its earliest slot is after job 1 (t=3h). A
  // 2-node 4-hour job would delay nothing that is reserved after it...
  ctx.add_pending(3, 4, sim::kHour);
  ConservativeBackfillScheduler cons;
  cons.schedule(ctx);
  EXPECT_EQ(ctx.started_, (std::vector<workload::JobId>{2}));
}

TEST(Conservative, StartsInOrderWhenAllFit) {
  MockContext ctx(8);
  ctx.add_pending(1, 2, sim::kHour);
  ctx.add_pending(2, 2, sim::kHour);
  ctx.add_pending(3, 2, sim::kHour);
  ConservativeBackfillScheduler cons;
  cons.schedule(ctx);
  EXPECT_EQ(ctx.started_.size(), 3u);
}

TEST(Timeline, EarliestStartHonoursReleases) {
  MockContext ctx(10);
  ctx.add_running(100, 6, sim::kHour);
  ctx.add_running(101, 4, 2 * sim::kHour);
  AvailabilityTimeline timeline(0, ctx.running(), ctx);
  EXPECT_EQ(timeline.earliest_start(5, sim::kHour, 0), sim::kHour);
  EXPECT_EQ(timeline.earliest_start(10, sim::kHour, 0), 2 * sim::kHour);
  EXPECT_EQ(timeline.min_free(0, 30 * sim::kMinute), 0u);
}

TEST(Timeline, ReservationBlocksWindow) {
  MockContext ctx(10);
  AvailabilityTimeline timeline(10, ctx.running(), ctx);
  timeline.reserve(6, sim::kHour, sim::kHour);
  EXPECT_EQ(timeline.min_free(0, 30 * sim::kMinute), 10u);
  EXPECT_EQ(timeline.min_free(sim::kHour, sim::kHour), 4u);
  // 8 nodes for 30 min starting now would overlap the reservation only if
  // it runs past 1h — it doesn't.
  EXPECT_EQ(timeline.earliest_start(8, 30 * sim::kMinute, 0), 0);
  // 8 nodes for 2 h overlaps: must wait until the reservation ends.
  EXPECT_EQ(timeline.earliest_start(8, 2 * sim::kHour, 0), 2 * sim::kHour);
}

TEST(Timeline, ImpossibleRequestReturnsMax) {
  MockContext ctx(4);
  AvailabilityTimeline timeline(4, ctx.running(), ctx);
  EXPECT_EQ(timeline.earliest_start(5, sim::kHour, 0),
            std::numeric_limits<sim::SimTime>::max());
}

}  // namespace
}  // namespace epajsrm::sched
