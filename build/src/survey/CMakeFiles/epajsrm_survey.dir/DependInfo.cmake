
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/survey/activities.cpp" "src/survey/CMakeFiles/epajsrm_survey.dir/activities.cpp.o" "gcc" "src/survey/CMakeFiles/epajsrm_survey.dir/activities.cpp.o.d"
  "/root/repo/src/survey/centers.cpp" "src/survey/CMakeFiles/epajsrm_survey.dir/centers.cpp.o" "gcc" "src/survey/CMakeFiles/epajsrm_survey.dir/centers.cpp.o.d"
  "/root/repo/src/survey/questionnaire.cpp" "src/survey/CMakeFiles/epajsrm_survey.dir/questionnaire.cpp.o" "gcc" "src/survey/CMakeFiles/epajsrm_survey.dir/questionnaire.cpp.o.d"
  "/root/repo/src/survey/report.cpp" "src/survey/CMakeFiles/epajsrm_survey.dir/report.cpp.o" "gcc" "src/survey/CMakeFiles/epajsrm_survey.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
