// Decision-log replay: a recorded run's transcript re-derives the
// original schedule with the external component absent, and the replay
// transport's request assertion doubles as the determinism witness the
// svc result cache rests on — if re-running a config could emit different
// request bytes, replay throws instead of silently diverging.
#include "edc/replay.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario_builder.hpp"
#include "core/solution.hpp"
#include "edc/energy_budget_agent.hpp"
#include "edc/protocol.hpp"
#include "edc/transport.hpp"
#include "epa/energy_budget.hpp"
#include "sim/time.hpp"

namespace epajsrm {
namespace {

epa::EnergyBudgetConfig study_budget() {
  epa::EnergyBudgetConfig eb;
  eb.mode = epa::EnergyBudgetMode::kReducePowerCap;
  eb.window_budget_joules = 5.0e6;
  eb.window = sim::kHour;
  eb.initial_fraction = 0.0;
  eb.emergency_timeout = 20 * sim::kMinute;
  eb.cap_floor_fraction = 0.85;
  return eb;
}

core::ScenarioConfig study_config(std::uint64_t seed) {
  auto b = core::Scenario::builder()
               .label("edc-replay")
               .nodes(16)
               .job_count(16)
               .seed(seed)
               .horizon(sim::kDay)
               .energy_budget(study_budget())
               .configure([](core::ScenarioConfig& c) {
                 c.solution.enable_thermal = false;
               });
  return std::move(b).take_config();
}

// Runs the scenario once through a recording transport and hands back the
// result plus the captured transcript.
std::pair<core::RunResult, edc::Recording> record_run(std::uint64_t seed) {
  auto recorder = std::make_shared<edc::RecordingTransport>(
      std::make_shared<edc::LoopbackTransport>(
          std::make_shared<edc::EnergyBudgetAgent>(study_budget())));
  core::ScenarioConfig config = study_config(seed);
  config.external_transport = recorder;
  core::Scenario scenario(std::move(config));
  core::RunResult result = scenario.run();
  return {std::move(result), recorder->take_recording()};
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.scheduling_passes, b.scheduling_passes);
  EXPECT_EQ(a.report.jobs_completed, b.report.jobs_completed);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
  EXPECT_EQ(a.report.wait_minutes.mean, b.report.wait_minutes.mean);
  EXPECT_EQ(a.report.total_it_kwh, b.report.total_it_kwh);
  EXPECT_EQ(a.total_it_kwh_exact, b.total_it_kwh_exact);
  EXPECT_EQ(a.kills_by_reason, b.kills_by_reason);
}

TEST(EdcReplay, ReplayedRecordingReDerivesTheOriginalRun) {
  auto [original, recording] = record_run(42);
  ASSERT_GT(original.report.jobs_completed, 0u);
  ASSERT_FALSE(recording.empty());

  // Replay: no agent anywhere — the transcript is the component.
  auto replay = std::make_shared<edc::ReplayTransport>(recording);
  core::ScenarioConfig config = study_config(42);
  config.external_transport = replay;
  core::Scenario scenario(std::move(config));
  const core::RunResult replayed = scenario.run();

  expect_identical(original, replayed);
  EXPECT_TRUE(replay->exhausted());
  EXPECT_EQ(replay->exchanges_replayed(), recording.size());
}

TEST(EdcReplay, RecordingCapturesVerbatimExchanges) {
  auto [original, recording] = record_run(7);
  (void)original;
  ASSERT_FALSE(recording.empty());
  // Every exchange has at least one request line, and the transcript
  // round-trips through a loopback replay of itself at the line level.
  for (const edc::RecordedExchange& exchange : recording) {
    ASSERT_FALSE(exchange.request.empty());
  }
  edc::ReplayTransport replay(recording);
  for (const edc::RecordedExchange& exchange : recording) {
    EXPECT_EQ(replay.exchange(exchange.request), exchange.replies);
  }
  EXPECT_TRUE(replay.exhausted());
}

TEST(EdcReplay, DivergingRequestLineThrowsProtocolError) {
  auto [original, recording] = record_run(42);
  (void)original;
  ASSERT_FALSE(recording.empty());

  // Tamper with one recorded request line: the core re-derives the
  // original bytes, so the replay assertion must fire on that exchange.
  const std::size_t victim = recording.size() / 2;
  ASSERT_FALSE(recording[victim].request.empty());
  recording[victim].request[0] += " tampered";

  core::ScenarioConfig config = study_config(42);
  config.external_transport =
      std::make_shared<edc::ReplayTransport>(std::move(recording));
  core::Scenario scenario(std::move(config));
  try {
    scenario.run();
    FAIL() << "expected edc::ProtocolError";
  } catch (const edc::ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("diverges"), std::string::npos);
  }
}

TEST(EdcReplay, TruncatedRecordingFailsLoudlyNotSilently) {
  auto [original, recording] = record_run(42);
  (void)original;
  ASSERT_GT(recording.size(), 1u);
  recording.pop_back();

  core::ScenarioConfig config = study_config(42);
  config.external_transport =
      std::make_shared<edc::ReplayTransport>(std::move(recording));
  core::Scenario scenario(std::move(config));
  try {
    scenario.run();
    FAIL() << "expected edc::ProtocolError";
  } catch (const edc::ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("recording holds only"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace epajsrm
