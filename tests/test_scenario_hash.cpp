// The canonical scenario serializer + hash: the cache key the scenario
// service's soundness argument rests on (DESIGN.md §14). Pins the three
// properties the header sells — total (per-field sensitivity), exact
// (distinct double bit patterns never collide), ordered (same config =>
// same bytes) — and the live-handle rejection.
#include "core/scenario_hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario_builder.hpp"
#include "edc/transport.hpp"
#include "epa/energy_budget.hpp"
#include "power/tariff.hpp"
#include "sim/time.hpp"

namespace epajsrm {
namespace {

core::ScenarioConfig base_config() {
  auto b = core::Scenario::builder()
               .label("hash-base")
               .nodes(16)
               .job_count(8)
               .seed(11)
               .horizon(sim::kDay);
  return std::move(b).take_config();
}

TEST(ScenarioHash, SameConfigSameBytesSameHash) {
  const core::ScenarioConfig a = base_config();
  const core::ScenarioConfig b = base_config();
  EXPECT_EQ(core::canonical_serialize(a), core::canonical_serialize(b));
  EXPECT_EQ(core::scenario_hash(a), core::scenario_hash(b));
  // A copy is the same value.
  const core::ScenarioConfig c = a;
  EXPECT_EQ(core::scenario_hash(a), core::scenario_hash(c));
}

TEST(ScenarioHash, HashIsSixteenLowercaseHexDigits) {
  const std::string hash = core::scenario_hash(base_config());
  ASSERT_EQ(hash.size(), 16u);
  for (const char c : hash) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hash;
  }
}

TEST(ScenarioHash, SerializationIsVersionedAndLineOriented) {
  const std::string text = core::canonical_serialize(base_config());
  EXPECT_EQ(text.rfind("epajsrm.scenario=v1\n", 0), 0u) << text;
  EXPECT_NE(text.find("label=hash-base\n"), std::string::npos);
  EXPECT_NE(text.find("seed=11\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// Every semantic field must reach the canonical form: a mutation that
// does not move the hash would silently alias distinct scenarios.
TEST(ScenarioHash, EverySemanticFieldMovesTheHash) {
  struct Mutation {
    const char* name;
    std::function<void(core::ScenarioConfig&)> apply;
  };
  const std::vector<Mutation> mutations = {
      {"label", [](auto& c) { c.label = "other"; }},
      {"nodes", [](auto& c) { c.nodes = 32; }},
      {"node.idle_watts", [](auto& c) { c.node_config.idle_watts += 1.0; }},
      {"node.dynamic_watts",
       [](auto& c) { c.node_config.dynamic_watts += 1.0; }},
      {"variability_sigma", [](auto& c) { c.variability_sigma = 0.05; }},
      {"facility.base_pue", [](auto& c) { c.facility.base_pue += 0.01; }},
      {"ambient", [](auto& c) { c.ambient = platform::AmbientModel(30.0); }},
      {"pstate_steps", [](auto& c) { c.pstate_steps += 1; }},
      {"top_ghz", [](auto& c) { c.top_ghz += 0.1; }},
      {"bottom_ghz", [](auto& c) { c.bottom_ghz -= 0.1; }},
      {"nodes_per_rack", [](auto& c) { c.nodes_per_rack = 8; }},
      {"racks_per_pdu", [](auto& c) { c.racks_per_pdu = 4; }},
      {"racks_per_cooling_loop",
       [](auto& c) { c.racks_per_cooling_loop = 8; }},
      {"mix", [](auto& c) { c.mix = core::WorkloadMix::kCapability; }},
      {"job_count", [](auto& c) { c.job_count = 9; }},
      {"target_utilization", [](auto& c) { c.target_utilization = 0.5; }},
      {"arrival_rate_per_hour",
       [](auto& c) { c.arrival_rate_per_hour = 3.0; }},
      {"seed", [](auto& c) { c.seed = 12; }},
      {"horizon", [](auto& c) { c.horizon = 2 * sim::kDay; }},
      {"solution.control_period",
       [](auto& c) { c.solution.control_period += sim::kSecond; }},
      {"solution.enforce_walltime",
       [](auto& c) { c.solution.enforce_walltime = false; }},
      {"solution.power_alpha", [](auto& c) { c.solution.power_alpha += 0.1; }},
      {"solution.enable_thermal",
       [](auto& c) { c.solution.enable_thermal = !c.solution.enable_thermal; }},
      {"solution.tariff",
       [](auto& c) {
         c.solution.tariff = power::Tariff::peak_offpeak(0.25, 0.10);
       }},
      {"energy_budget",
       [](auto& c) {
         epa::EnergyBudgetConfig eb;
         eb.window_budget_joules = 1.0e6;
         c.energy_budget = eb;
       }},
  };

  const std::string base_hash = core::scenario_hash(base_config());
  for (const Mutation& mutation : mutations) {
    core::ScenarioConfig mutated = base_config();
    mutation.apply(mutated);
    EXPECT_NE(core::scenario_hash(mutated), base_hash)
        << "field not covered by canonical_serialize: " << mutation.name;
  }
}

TEST(ScenarioHash, PartitionExecutionKnobsAreExcluded) {
  // The lax-sync partition knobs are pure execution shape: the run is
  // bit-identical for any partition count / worker count / skew window
  // (DESIGN.md §15), so they must stay outside the cache key — differing
  // values hash (and serialize) identically.
  const core::ScenarioConfig classic = base_config();
  core::ScenarioConfig fanned = base_config();
  fanned.partitions = 8;
  fanned.partition_workers = 4;
  fanned.skew_window = 6 * sim::kHour;
  EXPECT_EQ(core::canonical_serialize(classic), core::canonical_serialize(fanned));
  EXPECT_EQ(core::scenario_hash(classic), core::scenario_hash(fanned));
}

TEST(ScenarioHash, EnergyBudgetFieldsAreCovered) {
  core::ScenarioConfig with_budget = base_config();
  epa::EnergyBudgetConfig eb;
  eb.mode = epa::EnergyBudgetMode::kReducePowerCap;
  eb.window_budget_joules = 5.0e6;
  with_budget.energy_budget = eb;
  const std::string base_hash = core::scenario_hash(with_budget);

  struct Mutation {
    const char* name;
    std::function<void(epa::EnergyBudgetConfig&)> apply;
  };
  const std::vector<Mutation> mutations = {
      {"mode", [](auto& b) { b.mode = epa::EnergyBudgetMode::kPowerCap; }},
      {"window_budget_joules",
       [](auto& b) { b.window_budget_joules += 1.0; }},
      {"window", [](auto& b) { b.window += sim::kSecond; }},
      {"accrual_rate_watts", [](auto& b) { b.accrual_rate_watts = 100.0; }},
      {"initial_fraction", [](auto& b) { b.initial_fraction = 0.5; }},
      {"emergency_timeout",
       [](auto& b) { b.emergency_timeout += sim::kMinute; }},
      {"power_cap_watts", [](auto& b) { b.power_cap_watts = 4000.0; }},
      {"cap_floor_fraction", [](auto& b) { b.cap_floor_fraction = 0.5; }},
      {"charge_idle_power", [](auto& b) { b.charge_idle_power = true; }},
  };
  for (const Mutation& mutation : mutations) {
    core::ScenarioConfig mutated = with_budget;
    mutation.apply(*mutated.energy_budget);
    EXPECT_NE(core::scenario_hash(mutated), base_hash)
        << "energy-budget field not covered: " << mutation.name;
  }
}

// Exactness: adjacent double bit patterns are distinct canonical values.
TEST(ScenarioHash, AdjacentDoubleBitPatternsDoNotCollide) {
  core::ScenarioConfig a = base_config();
  core::ScenarioConfig b = base_config();
  a.target_utilization = 0.75;
  b.target_utilization =
      std::nextafter(0.75, 1.0);  // one ulp away, prints differently
  EXPECT_NE(core::canonical_serialize(a), core::canonical_serialize(b));
  EXPECT_NE(core::scenario_hash(a), core::scenario_hash(b));
}

class InertAgent final : public edc::Agent {
 public:
  std::vector<std::string> on_messages(
      const std::vector<std::string>&) override {
    return {};
  }
  std::string name() const override { return "inert"; }
};

// A config holding a live transport handle is not a pure value and must
// be rejected, never silently hashed by pointer identity.
TEST(ScenarioHash, ExternalTransportIsRejected) {
  core::ScenarioConfig config = base_config();
  config.external_transport = std::make_shared<edc::LoopbackTransport>(
      std::make_shared<InertAgent>());
  EXPECT_THROW(core::canonical_serialize(config), std::invalid_argument);
  EXPECT_THROW(core::scenario_hash(config), std::invalid_argument);
}

}  // namespace
}  // namespace epajsrm
