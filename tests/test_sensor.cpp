#include "telemetry/sensor.hpp"

#include <gtest/gtest.h>

namespace epajsrm::telemetry {
namespace {

TEST(SensorRegistry, AddAndRead) {
  SensorRegistry reg;
  reg.add({"m.node0.power", SensorKind::kPowerWatts, [] { return 120.0; }});
  EXPECT_TRUE(reg.contains("m.node0.power"));
  EXPECT_DOUBLE_EQ(reg.read("m.node0.power"), 120.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(SensorRegistry, ReadUnknownThrows) {
  SensorRegistry reg;
  EXPECT_THROW(reg.read("nope"), std::out_of_range);
}

TEST(SensorRegistry, DuplicatePathRejected) {
  SensorRegistry reg;
  reg.add({"a.b", SensorKind::kCustom, [] { return 0.0; }});
  EXPECT_THROW(reg.add({"a.b", SensorKind::kCustom, [] { return 1.0; }}),
               std::invalid_argument);
}

TEST(SensorRegistry, InvalidSensorsRejected) {
  SensorRegistry reg;
  EXPECT_THROW(reg.add({"", SensorKind::kCustom, [] { return 0.0; }}),
               std::invalid_argument);
  EXPECT_THROW(reg.add({"x", SensorKind::kCustom, nullptr}),
               std::invalid_argument);
}

TEST(SensorRegistry, PrefixMatchesWholeComponents) {
  SensorRegistry reg;
  reg.add({"m.rack1.node0.power", SensorKind::kPowerWatts, [] { return 1.0; }});
  reg.add({"m.rack10.node0.power", SensorKind::kPowerWatts, [] { return 2.0; }});
  reg.add({"m.rack1.node1.power", SensorKind::kPowerWatts, [] { return 4.0; }});
  const auto paths = reg.list("m.rack1");
  EXPECT_EQ(paths.size(), 2u);  // rack10 must NOT match
  EXPECT_DOUBLE_EQ(reg.aggregate("m.rack1", SensorKind::kPowerWatts), 5.0);
  EXPECT_DOUBLE_EQ(reg.aggregate("m", SensorKind::kPowerWatts), 7.0);
}

TEST(SensorRegistry, AggregateFiltersByKind) {
  SensorRegistry reg;
  reg.add({"m.n0.power", SensorKind::kPowerWatts, [] { return 100.0; }});
  reg.add({"m.n0.temp", SensorKind::kTemperatureC, [] { return 60.0; }});
  EXPECT_DOUBLE_EQ(reg.aggregate("m", SensorKind::kPowerWatts), 100.0);
  EXPECT_DOUBLE_EQ(reg.aggregate("m", SensorKind::kTemperatureC), 60.0);
}

TEST(SensorRegistry, EmptyPrefixMatchesEverything) {
  SensorRegistry reg;
  reg.add({"a.x", SensorKind::kPowerWatts, [] { return 1.0; }});
  reg.add({"b.y", SensorKind::kPowerWatts, [] { return 2.0; }});
  EXPECT_EQ(reg.list("").size(), 2u);
  EXPECT_DOUBLE_EQ(reg.aggregate("", SensorKind::kPowerWatts), 3.0);
}

TEST(SensorRegistry, ExactPathIsItsOwnPrefix) {
  SensorRegistry reg;
  reg.add({"a.b.c", SensorKind::kUtilization, [] { return 0.5; }});
  EXPECT_EQ(reg.list("a.b.c").size(), 1u);
}

TEST(SensorRegistry, SensorsReadLive) {
  SensorRegistry reg;
  double value = 1.0;
  reg.add({"live", SensorKind::kCustom, [&value] { return value; }});
  EXPECT_DOUBLE_EQ(reg.read("live"), 1.0);
  value = 7.0;
  EXPECT_DOUBLE_EQ(reg.read("live"), 7.0);
}

}  // namespace
}  // namespace epajsrm::telemetry
