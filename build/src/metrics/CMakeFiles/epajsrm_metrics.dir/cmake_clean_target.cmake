file(REMOVE_RECURSE
  "libepajsrm_metrics.a"
)
