#include "epa/group_power_cap.hpp"

#include <algorithm>

namespace epajsrm::epa {

void GroupPowerCapPolicy::install(PolicyHost& host) {
  EpaPolicy::install(host);
  platform::Cluster& cluster = host.cluster();
  const auto& pdus = cluster.facility().pdus();

  budget_ = 0.0;
  for (const platform::Pdu& pdu : pdus) {
    // Per-PDU peak sums are static; the ledger keeps them precomputed.
    const double pdu_peak = host.ledger().pdu_peak_watts(pdu.id);
    double cap = 0.0;
    if (uniform_fraction_ > 0.0) {
      cap = pdu_peak * uniform_fraction_;
    } else if (pdu.id < group_caps_.size()) {
      cap = group_caps_[pdu.id];
    }
    if (cap > 0.0 && !pdu.nodes.empty()) {
      host.set_group_cap(pdu.nodes,
                         cap / static_cast<double>(pdu.nodes.size()));
      budget_ += cap;
    } else {
      budget_ += pdu_peak;
    }
  }
}

void GroupPowerCapPolicy::set_group_cap(PolicyHost& host,
                                        platform::PduId group, double watts) {
  const platform::Pdu& pdu = host.cluster().facility().pdu(group);
  if (pdu.nodes.empty()) return;
  host.set_group_cap(pdu.nodes,
                     watts > 0.0
                         ? watts / static_cast<double>(pdu.nodes.size())
                         : 0.0);
}

}  // namespace epajsrm::epa
