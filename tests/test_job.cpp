#include "workload/job.hpp"

#include <gtest/gtest.h>

namespace epajsrm::workload {
namespace {

JobSpec base_spec() {
  JobSpec spec;
  spec.id = 1;
  spec.nodes = 4;
  spec.runtime_ref = 100 * sim::kSecond;
  spec.walltime_estimate = 200 * sim::kSecond;
  spec.profile.freq_sensitive_fraction = 0.5;
  spec.profile.comm_fraction = 0.2;
  return spec;
}

TEST(Job, ValidatesSpec) {
  JobSpec bad = base_spec();
  bad.nodes = 0;
  EXPECT_THROW(Job{bad}, std::invalid_argument);
  bad = base_spec();
  bad.runtime_ref = 0;
  EXPECT_THROW(Job{bad}, std::invalid_argument);
}

TEST(Job, SpeedAtFullFrequencyIsOne) {
  Job job(base_spec());
  EXPECT_DOUBLE_EQ(job.speed_at(1.0), 1.0);
}

TEST(Job, SpeedFollowsEtinskiModel) {
  Job job(base_spec());  // beta = 0.5
  // T(f)/T(1) = 0.5/0.5 + 0.5 = 1.5 -> speed = 1/1.5.
  EXPECT_NEAR(job.speed_at(0.5), 1.0 / 1.5, 1e-12);
}

TEST(Job, FrequencyInsensitiveJobIgnoresFrequency) {
  JobSpec spec = base_spec();
  spec.profile.freq_sensitive_fraction = 0.0;
  Job job(spec);
  EXPECT_DOUBLE_EQ(job.speed_at(0.3), 1.0);
}

TEST(Job, BeginExecutionSetsWork) {
  Job job(base_spec());
  job.set_placement_spread(0.0);
  job.begin_execution(0, 1.0);
  EXPECT_EQ(job.state(), JobState::kRunning);
  EXPECT_DOUBLE_EQ(job.work_total(), 100.0);
  EXPECT_EQ(job.remaining_time(0), 100 * sim::kSecond);
}

TEST(Job, PlacementSpreadStretchesWork) {
  Job job(base_spec());
  job.set_placement_spread(1.0);  // comm fraction 0.2 -> 20 % stretch
  job.begin_execution(0, 1.0);
  EXPECT_NEAR(job.work_total(), 120.0, 1e-9);
}

TEST(Job, MoldableRuntimeScaleStretchesWork) {
  Job job(base_spec());
  job.set_runtime_scale(1.8);
  job.begin_execution(0, 1.0);
  EXPECT_NEAR(job.work_total(), 180.0, 1e-9);
}

TEST(Job, ProgressBanksAcrossSpeedChange) {
  Job job(base_spec());
  job.begin_execution(0, 1.0);
  // Run 40 s at full speed, then drop to half frequency (speed 2/3).
  const sim::SimTime remaining =
      job.update_speed(40 * sim::kSecond, 0.5);
  EXPECT_NEAR(job.work_done(), 40.0, 1e-9);
  // 60 s of work left at speed 1/1.5 -> 90 s wall clock.
  EXPECT_EQ(remaining, sim::from_seconds(90.0));
}

TEST(Job, RemainingTimeProjectsWithoutMutating) {
  Job job(base_spec());
  job.begin_execution(0, 1.0);
  EXPECT_EQ(job.remaining_time(30 * sim::kSecond), 70 * sim::kSecond);
  EXPECT_DOUBLE_EQ(job.work_done(), 0.0);  // projection did not bank
}

TEST(Job, SpeedUpShortensRemaining) {
  Job job(base_spec());
  job.begin_execution(0, 0.5);  // starts slow
  const sim::SimTime slow_remaining = job.remaining_time(0);
  job.update_speed(0, 1.0);
  EXPECT_LT(job.remaining_time(0), slow_remaining);
}

TEST(Job, WorkDoneSaturatesAtTotal) {
  Job job(base_spec());
  job.begin_execution(0, 1.0);
  job.update_speed(1000 * sim::kSecond, 1.0);  // way past completion
  EXPECT_DOUBLE_EQ(job.work_done(), job.work_total());
  EXPECT_EQ(job.remaining_time(1000 * sim::kSecond), 0);
}

TEST(Job, CompletionGenerationBumps) {
  Job job(base_spec());
  const std::uint64_t g0 = job.completion_generation();
  EXPECT_EQ(job.bump_completion_generation(), g0 + 1);
  EXPECT_EQ(job.completion_generation(), g0 + 1);
}

TEST(Job, WaitTimeFromSubmitToStart) {
  JobSpec spec = base_spec();
  spec.submit_time = 50 * sim::kSecond;
  Job job(spec);
  job.set_start_time(80 * sim::kSecond);
  EXPECT_EQ(job.wait_time(), 30 * sim::kSecond);
}

TEST(Job, TotalCoresUsesNodeSizeWhenWholeNode) {
  JobSpec spec = base_spec();
  spec.cores_per_node = 0;
  EXPECT_EQ(spec.total_cores(32), 4u * 32u);
  spec.cores_per_node = 8;
  EXPECT_EQ(spec.total_cores(32), 4u * 8u);
}

TEST(JobState, ToStringCoversAll) {
  EXPECT_STREQ(to_string(JobState::kQueued), "queued");
  EXPECT_STREQ(to_string(JobState::kStarting), "starting");
  EXPECT_STREQ(to_string(JobState::kRunning), "running");
  EXPECT_STREQ(to_string(JobState::kCompleted), "completed");
  EXPECT_STREQ(to_string(JobState::kKilled), "killed");
  EXPECT_STREQ(to_string(JobState::kCancelled), "cancelled");
}

}  // namespace
}  // namespace epajsrm::workload
