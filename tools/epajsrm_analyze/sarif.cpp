#include "epajsrm_analyze/sarif.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace epajsrm::analyze {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const std::map<std::string, std::string>& rule_descriptions() {
  static const std::map<std::string, std::string> kRules = {
      {"layer-violation",
       "Include edge not permitted by the declared layer DAG"},
      {"undeclared-layer", "Directory missing from layers.conf"},
      {"include-cycle", "Cyclic include chain"},
      {"unordered-iter",
       "Order-sensitive iteration over an unordered container"},
      {"float-accum-unordered",
       "Floating-point accumulation in hash order"},
      {"pointer-key-order", "Ordered container keyed by pointer"},
      {"mutable-global", "Mutable namespace-scope shared state"},
      {"local-static", "Mutable function-local static shared state"},
  };
  return kRules;
}

}  // namespace

std::string to_sarif(const Findings& findings, const std::string& root_label) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"epajsrm_analyze\",\n"
      << "      \"informationUri\": "
         "\"https://github.com/epajsrm/epajsrm\",\n"
      << "      \"rules\": [\n";
  const auto& rules = rule_descriptions();
  std::size_t ri = 0;
  for (const auto& [id, description] : rules) {
    out << "        {\"id\": \"" << id << "\", \"shortDescription\": "
        << "{\"text\": \"" << escape(description) << "\"}}"
        << (++ri < rules.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }},\n"
      << "    \"originalUriBaseIds\": {\"SRCROOT\": {\"description\": "
      << "{\"text\": \"" << escape(root_label) << "\"}}},\n"
      << "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << escape(f.file)
        << "\", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": "
        << f.line << "}}}]}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n"
      << "  }]\n"
      << "}\n";
  return out.str();
}

}  // namespace epajsrm::analyze
