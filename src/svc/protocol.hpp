// Wire protocol of the scenario service (DESIGN.md §14).
//
// Requests are single flat-JSON lines on the shared net carrier; every
// request gets one *envelope* line back, followed by exactly
// `payload_lines` payload lines. The envelope carries the request outcome
// (ok / queued / done / rejected / error / ...) so clients never have to
// sniff payload shapes, and `payload_lines` makes the response
// self-framing — a client reads the envelope, then that many lines, and
// the connection is ready for the next request.
//
// Result payloads are rendered with the same exact-double writer the EDC
// wire uses, so a result payload is a byte-stable pure function of the
// RunResult it renders — the property that lets the result cache store
// payload lines verbatim and still be indistinguishable from recompute.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/solution.hpp"

namespace epajsrm::svc {

/// One parsed client request.
struct Request {
  enum class Op : std::uint8_t {
    kSubmit,     ///< run one scenario (template + overrides)
    kSweep,      ///< expand one template across a seed list
    kPoll,       ///< query a request id
    kCancel,     ///< cancel a queued request id
    kStats,      ///< service counters snapshot
    kTemplates,  ///< list warm scenario templates
    kShutdown,   ///< stop the server
  };

  Op op = Op::kSubmit;
  std::string tenant = "anon";

  // submit / sweep.
  std::string template_name;
  std::string label;  ///< empty = keep the template's label
  bool has_seed = false;
  std::uint64_t seed = 0;
  bool has_nodes = false;
  std::uint32_t nodes = 0;
  bool has_job_count = false;
  std::uint64_t job_count = 0;
  /// Rack/PDU partitions driving the lax-sync core (DESIGN.md §15). An
  /// execution knob: results are bit-identical for any value, so it is
  /// excluded from the canonical scenario hash and two submits differing
  /// only here share one cache entry.
  bool has_partitions = false;
  std::uint32_t partitions = 0;
  /// submit: block until the result is ready (default). With wait=0 the
  /// reply is the queued id; the client polls.
  bool wait = true;
  /// Attach the run-report JSON document to the payload.
  bool want_report = false;

  // sweep.
  std::vector<std::uint64_t> seeds;

  // poll / cancel.
  std::uint64_t id = 0;
};

const char* to_string(Request::Op op);

/// Parses one request line. Throws net::LineError on malformed input or an
/// unknown op; the server turns that into a status="error" envelope.
Request parse_request(const std::string& line);

/// Serializes a request (the client-side counterpart of parse_request).
std::string serialize_request(const Request& request);

/// The envelope ahead of every response.
struct Envelope {
  std::string op;
  /// ok | queued | running | done | cancelled | too_late | rejected | error
  std::string status;
  std::uint64_t id = 0;
  bool cached = false;
  /// Backpressure hint; only emitted when status == "rejected".
  std::int64_t retry_after_ms = 0;
  std::string error;  ///< only emitted when non-empty
  std::vector<std::uint64_t> ids;  ///< sweep: admitted request ids
  std::uint64_t payload_lines = 0;
};

std::string serialize_envelope(const Envelope& envelope);

/// Parses an envelope line (client side). Throws net::LineError.
Envelope parse_envelope(const std::string& line, std::size_t line_number = 1);

/// Renders one RunResult as the deterministic single-line result payload.
/// Every field is either integral or an exact-round-trip double; the kill
/// histogram is flattened to a sorted `reason:count` list so unordered-map
/// iteration order can never leak into the bytes.
std::string serialize_result(const std::string& scenario_hash,
                             std::uint64_t seed, const core::RunResult& result);

/// Renders the run-report document (obs exposition layer) for a result.
/// Returns the report JSON split into lines, ready to append to a payload.
std::vector<std::string> serialize_report(const std::string& label,
                                          const std::string& scenario_hash,
                                          std::uint64_t seed,
                                          const core::RunResult& result);

}  // namespace epajsrm::svc
