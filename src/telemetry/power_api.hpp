// Power API facade — the measurement/control interface shape of Sandia's
// Power API (Laros et al.), which the survey's Trinity row ("Developed
// Power API implementation with Cray, utilized by MOAB/Torque") and STFC
// row ("Programmable interface (PowerAPI-based) for application power
// measurements") rely on.
//
// The API models the machine as a navigable object hierarchy
// (platform -> cabinet -> node) whose objects expose typed attributes
// that tools get (measurements) and set (control knobs). This facade maps
// that shape onto the framework's Cluster/CapmcController.
//
// Note: attribute *writes* go straight through the CAPMC controller; when
// a core::EpaJsrmSolution is running, prefer the PolicyHost mutation
// funnel so energy accounting and job re-planning stay exact. The facade
// is the right tool for external measurement agents and standalone
// tooling (the STFC use case).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/cluster.hpp"
#include "power/capmc.hpp"
#include "power/ledger.hpp"

namespace epajsrm::telemetry {

/// Object kinds of the hierarchy.
enum class PwrObjType { kPlatform, kCabinet, kNode };

const char* to_string(PwrObjType t);

/// Typed attributes (the PWR_ATTR_* subset the framework can serve).
enum class PwrAttr {
  kPower,          ///< instantaneous draw, watts (read)
  kPowerLimitMax,  ///< power cap, watts (read/write; 0 = uncapped)
  kTemp,           ///< temperature, Celsius (read; nodes only)
  kFreq,           ///< effective frequency, GHz (read; nodes only)
  kEnergy,         ///< accumulated energy, joules (read; needs meter hook)
};

const char* to_string(PwrAttr a);

/// Handle to one object in the hierarchy.
struct PwrObject {
  PwrObjType type = PwrObjType::kPlatform;
  /// kCabinet: rack id; kNode: node id; unused for kPlatform.
  std::uint32_t index = 0;
  std::string name;
};

/// Error for unsupported attribute/object combinations (the Power API's
/// PWR_RET_NOT_IMPLEMENTED, surfaced as an exception).
class PwrNotImplemented : public std::logic_error {
 public:
  PwrNotImplemented(const PwrObject& object, PwrAttr attr);
};

/// Navigation + attribute access over a cluster.
class PowerApiContext {
 public:
  /// `ledger` serves all power/cap/temperature reads in O(1); it must
  /// cover `cluster`. `capmc` may be null for a read-only context; writes
  /// then throw. `energy_meter` supplies kEnergy reads per node (e.g. the
  /// accountant's node_joules); null disables kEnergy.
  PowerApiContext(platform::Cluster& cluster,
                  const power::PowerLedger& ledger,
                  power::CapmcController* capmc = nullptr,
                  std::function<double(platform::NodeId)> energy_meter = {});

  /// The hierarchy root (PWR_CntxtGetEntryPoint).
  PwrObject entry_point() const;

  /// Children of an object (platform -> cabinets -> nodes); nodes have
  /// none.
  std::vector<PwrObject> children(const PwrObject& object) const;

  /// Parent of an object; the platform is its own parent.
  PwrObject parent(const PwrObject& object) const;

  /// Reads an attribute; aggregating reads (power/energy on platform or
  /// cabinet) sum over descendants. Throws PwrNotImplemented for
  /// unsupported pairs.
  double attr_get(const PwrObject& object, PwrAttr attr) const;

  /// Writes an attribute (only kPowerLimitMax is writable): node objects
  /// cap the node, cabinets cap each member node at value/size, the
  /// platform sets a system-wide cap. Requires a capmc controller.
  void attr_set(const PwrObject& object, PwrAttr attr, double value);

  /// Total objects in the hierarchy (1 + cabinets + nodes).
  std::size_t object_count() const;

 private:
  std::vector<platform::NodeId> nodes_of(const PwrObject& object) const;

  platform::Cluster* cluster_;
  const power::PowerLedger* ledger_;
  power::CapmcController* capmc_;
  std::function<double(platform::NodeId)> energy_meter_;
  std::uint32_t rack_count_ = 0;
};

}  // namespace epajsrm::telemetry
