#include "epa/energy_budget.hpp"

#include <algorithm>
#include <cmath>

#include "check/contract.hpp"

namespace epajsrm::epa {

const char* to_string(EnergyBudgetMode mode) {
  switch (mode) {
    case EnergyBudgetMode::kEnergyBudget:
      return "energy-budget";
    case EnergyBudgetMode::kReducePowerCap:
      return "reduce-power-cap";
    case EnergyBudgetMode::kPowerCap:
      return "power-cap";
  }
  return "?";
}

EnergyBudgetCore::EnergyBudgetCore(EnergyBudgetConfig config)
    : config_(config) {
  if (config_.mode != EnergyBudgetMode::kPowerCap) {
    EPAJSRM_REQUIRE(config_.window_budget_joules > 0.0,
                    "energy budget requires a positive joules-per-window");
    EPAJSRM_REQUIRE(config_.window > 0, "energy budget window must be > 0");
  }
  EPAJSRM_REQUIRE(config_.accrual_rate_watts >= 0.0,
                  "accrual rate must be >= 0");
  EPAJSRM_REQUIRE(
      config_.initial_fraction >= 0.0 && config_.initial_fraction <= 1.0,
      "initial fraction must be in [0,1]");
  EPAJSRM_REQUIRE(config_.power_cap_watts >= 0.0, "power cap must be >= 0");
  EPAJSRM_REQUIRE(config_.cap_floor_fraction >= 0.0 &&
                      config_.cap_floor_fraction <= 1.0,
                  "cap floor fraction must be in [0,1]");
}

void EnergyBudgetCore::begin(sim::SimTime now, std::uint32_t total_nodes,
                             double peak_node_watts,
                             double idle_node_watts) {
  begun_ = true;
  last_accrual_ = now;
  last_start_ = now;
  idle_node_watts_ = idle_node_watts;
  idle_nodes_ = total_nodes;
  accrual_rate_w_ =
      config_.accrual_rate_watts > 0.0
          ? config_.accrual_rate_watts
          : config_.window_budget_joules / sim::to_seconds(config_.window);
  cap_ceiling_watts_ = config_.power_cap_watts > 0.0
                           ? config_.power_cap_watts
                           : peak_node_watts * total_nodes;
  available_j_ = config_.initial_fraction * config_.window_budget_joules;
}

void EnergyBudgetCore::accrue(sim::SimTime now) {
  if (now <= last_accrual_) return;
  const double dt_s = sim::to_seconds(now - last_accrual_);
  double rate_w = accrual_rate_w_;
  if (config_.charge_idle_power) {
    // _IDLE parity: idle nodes burn static power against the allowance.
    // The count is the previous pass's post-admission free count, which
    // both sides of the EDC boundary derived from the same pass input.
    rate_w -= idle_node_watts_ * static_cast<double>(idle_nodes_);
  }
  available_j_ += rate_w * dt_s;
  // Upper clamp only: the window cannot bank more than its budget, but
  // emergency starts (and the idle debit) may legitimately leave the
  // allowance in debt.
  available_j_ = std::min(available_j_, config_.window_budget_joules);
  last_accrual_ = now;
}

void EnergyBudgetCore::job_ended(workload::JobId id,
                                 double actual_energy_joules) {
  auto it = charged_j_.find(id);
  if (it == charged_j_.end()) return;
  // Refund the difference between the charged estimate and the energy the
  // job actually drew (estimates are usually walltime-based overestimates).
  available_j_ += it->second - actual_energy_joules;
  available_j_ = std::min(available_j_, config_.window_budget_joules);
  charged_j_.erase(it);
}

double EnergyBudgetCore::rank_priority(double wait_seconds,
                                       double estimated_joules) {
  // batsim-prj JobPriorityCompare: waiting time per estimated joule, so a
  // long-waiting cheap job beats a fresh expensive one.
  return wait_seconds / std::max(estimated_joules, 1.0);
}

double EnergyBudgetCore::cap_for_allowance() const {
  const double floor_watts = cap_ceiling_watts_ * config_.cap_floor_fraction;
  const double fill = std::clamp(
      available_j_ / config_.window_budget_joules, 0.0, 1.0);
  return floor_watts + (cap_ceiling_watts_ - floor_watts) * fill;
}

std::vector<EnergyBudgetCore::Decision> EnergyBudgetCore::decide(
    const PassInput& input) {
  std::vector<Decision> decisions;
  if (!begun_) return decisions;

  if (uses_energy_accounting()) {
    accrue(input.now);
    // Reconcile: a job both pending and charged means an earlier start
    // decision could not be applied (e.g. power admission vetoed it).
    // Refund so the allowance does not leak; both sides of the EDC
    // boundary see the same pending list, so this stays in lockstep.
    for (const QueuedJob& job : input.pending) {
      auto it = charged_j_.find(job.id);
      if (it != charged_j_.end()) {
        available_j_ =
            std::min(available_j_ + it->second,
                     config_.window_budget_joules);
        charged_j_.erase(it);
      }
    }
  }

  // Rank: priority desc, id asc on ties (ids are unique, so the order is
  // total — no dependence on the incoming queue order).
  std::vector<const QueuedJob*> ranked;
  ranked.reserve(input.pending.size());
  for (const QueuedJob& job : input.pending) ranked.push_back(&job);
  std::sort(ranked.begin(), ranked.end(),
            [&](const QueuedJob* a, const QueuedJob* b) {
              const double pa = rank_priority(
                  sim::to_seconds(input.now - a->submit_time),
                  a->estimated_energy_joules);
              const double pb = rank_priority(
                  sim::to_seconds(input.now - b->submit_time),
                  b->estimated_energy_joules);
              if (pa != pb) return pa > pb;
              return a->id < b->id;
            });

  // Emergency anti-deadlock: the ranked head has seen no start anywhere in
  // the system for the whole timeout — admit it regardless of the
  // allowance (the allowance goes into debt and must re-accrue).
  emergency_ = false;
  if (uses_energy_accounting() && config_.emergency_timeout > 0 &&
      !ranked.empty()) {
    const sim::SimTime anchor =
        std::max(last_start_, ranked.front()->submit_time);
    emergency_ = input.now - anchor >= config_.emergency_timeout;
  }

  std::uint32_t free_nodes = input.free_nodes;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const QueuedJob& job = *ranked[i];
    if (job.nodes > free_nodes) continue;  // IDLE variants walk past holes
    const bool emergency_head = emergency_ && i == 0;
    if (uses_energy_accounting() && !emergency_head &&
        job.estimated_energy_joules > available_j_) {
      continue;
    }
    if (uses_energy_accounting()) {
      available_j_ -= job.estimated_energy_joules;
      charged_j_[job.id] = job.estimated_energy_joules;
    }
    if (emergency_head) ++emergency_starts_;
    free_nodes -= job.nodes;
    last_start_ = input.now;
    decisions.push_back({Decision::Type::kStartJob, job.id, 0.0});
  }

  // Cap move last: reducePC reads the post-admission allowance, so the cap
  // a pass leaves behind reflects the starts it just made.
  double cap_watts = -1.0;
  if (config_.mode == EnergyBudgetMode::kReducePowerCap) {
    cap_watts = cap_for_allowance();
  } else if (config_.mode == EnergyBudgetMode::kPowerCap) {
    cap_watts = cap_ceiling_watts_;
  }
  if (cap_watts >= 0.0 && cap_watts != last_cap_watts_) {
    last_cap_watts_ = cap_watts;
    decisions.push_back(
        {Decision::Type::kSetPowerCap, platform::kNoJob, cap_watts});
  }

  // The nodes left free after this pass's admissions idle until the next
  // one; they price the next accrual interval's idle debit.
  idle_nodes_ = free_nodes;
  return decisions;
}

// --- EnergyBudgetScheduler ---------------------------------------------------

std::string EnergyBudgetScheduler::name() const {
  return std::string("energy-budget-sched:") +
         epa::to_string(core_.config().mode);
}

bool EnergyBudgetScheduler::wants_pass(sched::DecisionPoint::Kind kind) const {
  // Budget accrual makes previously-infeasible jobs feasible, so ticks
  // schedule too (unlike the classic cadence).
  return kind == sched::DecisionPoint::Kind::kJobSubmitted ||
         kind == sched::DecisionPoint::Kind::kJobEnded ||
         kind == sched::DecisionPoint::Kind::kBudgetTick ||
         kind == sched::DecisionPoint::Kind::kPowerBudgetChanged;
}

void EnergyBudgetScheduler::on_decision_point(
    const sched::DecisionPoint& point, sched::SchedulingContext& ctx) {
  switch (point.kind) {
    case sched::DecisionPoint::Kind::kSimulationBegins: {
      const platform::Cluster& cluster = ctx.cluster();
      const platform::NodeConfig& node = cluster.node(0).config();
      core_.begin(point.time, cluster.node_count(),
                  node.idle_watts + node.dynamic_watts, node.idle_watts);
      break;
    }
    case sched::DecisionPoint::Kind::kJobEnded:
      core_.job_ended(point.job, point.energy_joules);
      break;
    default:
      break;
  }
}

EnergyBudgetCore::PassInput EnergyBudgetScheduler::snapshot(
    sched::SchedulingContext& ctx) {
  EnergyBudgetCore::PassInput input;
  input.now = ctx.now();
  input.free_nodes = ctx.allocatable_nodes();
  input.pending.reserve(ctx.pending().size());
  for (const workload::Job* job : ctx.pending()) {
    input.pending.push_back({job->id(), job->submit_time(),
                             job->spec().nodes,
                             job->estimated_energy_joules()});
  }
  return input;
}

void EnergyBudgetScheduler::schedule(sched::SchedulingContext& ctx) {
  const EnergyBudgetCore::PassInput input = snapshot(ctx);
  const std::vector<EnergyBudgetCore::Decision> decisions =
      core_.decide(input);
  for (const EnergyBudgetCore::Decision& decision : decisions) {
    switch (decision.type) {
      case EnergyBudgetCore::Decision::Type::kStartJob:
        for (workload::Job* job : ctx.pending()) {
          if (job->id() == decision.job) {
            ctx.try_start(*job, nullptr);
            break;
          }
        }
        break;
      case EnergyBudgetCore::Decision::Type::kSetPowerCap:
        ctx.apply_power_cap(decision.watts);
        break;
    }
  }
}

}  // namespace epajsrm::epa
